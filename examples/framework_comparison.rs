//! Case study 1 (paper §4.1): which RL framework should you pick?
//!
//! Profiles the same TD3 + Walker2D workload (identical hyperparameters)
//! under all four ⟨execution model, ML backend⟩ configurations of Table 1
//! and prints the corrected time breakdown plus transition counts — the
//! data behind findings F.1–F.3.
//!
//! Run with: `cargo run --release --example framework_comparison`

use rlscope::core::profiler::TransitionKind;
use rlscope::prelude::*;
use rlscope::workloads::run_framework_comparison;

fn main() {
    let steps = 150;
    let scale = ScaleConfig { hidden: 16, batch: 8, freq_div: 10, ppo: None };
    println!("== Framework comparison: TD3 on Walker2D, {steps} steps ==\n");

    let runs = run_framework_comparison(AlgoKind::Td3, steps, scale);
    let baseline =
        runs.iter().map(|r| r.profile.corrected_total).min().expect("at least one framework");

    for run in &runs {
        let total = run.profile.corrected_total;
        println!(
            "{:<22} corrected total {:>12}  ({:.2}x slowest-vs-best)  GPU {:>4.1}%",
            run.label,
            format!("{total}"),
            total.ratio(baseline),
            100.0 * run.profile.table.gpu_total().ratio(run.profile.table.total()),
        );
        for op in ["backpropagation", "inference"] {
            println!(
                "    {:<16} {:>7.1} backend transitions/iter",
                op,
                run.transitions.per_iteration(op, TransitionKind::Backend)
            );
        }
    }

    println!(
        "\nF.1 expectation: Eager configurations are slowest; Graph and \
         Autograph are close.\nF.3 expectation: TensorFlow Eager makes several \
         times more Python->Backend transitions than PyTorch Eager."
    );
}
