//! Regenerates the golden trace corpus under `tests/corpus/`.
//!
//! Run after any **deliberate** change to the chunk wire formats, the
//! overlap sweep's attribution semantics, or the fixture itself:
//!
//! ```text
//! cargo run --example gen_corpus
//! ```
//!
//! then review the corpus diff as part of the change. `tests/golden.rs`
//! fails on any drift between the checked-in files and the current
//! codec/sweep behavior.

use rlscope::core::analysis::{Analysis, Dim};
use rlscope::core::compute_overlap;
use rlscope::core::rollup::rollup_chunk_dir;
use rlscope::core::store::{encode_events, encode_events_v1, encode_events_v2, reorder_chunk_dir};
use std::path::Path;

include!(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/fixture.rs"));

/// Writes one corpus file, exiting with a message on I/O failure —
/// a half-written corpus must never look like a successful regen.
fn write(path: &Path, data: impl AsRef<[u8]>) {
    if let Err(e) = std::fs::write(path, data.as_ref()) {
        eprintln!("gen_corpus: writing {} failed: {e}", path.display());
        std::process::exit(2);
    }
}

/// Unwraps a fallible step, exiting with a message on failure — a
/// half-written corpus must never look like a successful regen.
fn run<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("gen_corpus: {what} failed: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let events = corpus_events();
    let extreme = corpus_extreme_events();

    let v3 = encode_events(&events);
    assert_eq!(&v3[..8], b"RLSCOPE3", "main corpus must encode as v3");
    let v2 = encode_events_v2(&events);
    assert_eq!(&v2[..8], b"RLSCOPE2", "legacy corpus must encode as v2");
    let v1 = encode_events_v1(&events);
    let extreme_chunk = encode_events(&extreme);
    assert_eq!(&extreme_chunk[..8], b"RLSCOPE1", "extreme corpus must fall back to v1");

    write(&dir.join("corpus_v3.rls"), &v3);
    write(&dir.join("corpus_v2.rls"), &v2);
    write(&dir.join("corpus_v1.rls"), &v1);
    write(&dir.join("corpus_extreme.rls"), &extreme_chunk);
    write(&dir.join("expected_overall.json"), compute_overlap(&events).canonical_json());
    write(&dir.join("expected_by_pid.json"), per_pid_canonical_json(&per_pid_tables(&events)));
    write(&dir.join("expected_extreme.json"), compute_overlap(&extreme).canonical_json());

    // The deterministic chunk directory's manifest: footers for every
    // chunk, byte-stable for the fixture + chunking parameters.
    let tmp = std::env::temp_dir().join(format!("rlscope_gen_corpus_{}", std::process::id()));
    let manifest = write_corpus_chunk_dir(&tmp);
    if let Err(e) = std::fs::remove_dir_all(&tmp) {
        eprintln!("gen_corpus: cleaning {} failed: {e}", tmp.display());
        std::process::exit(2);
    }
    write(&dir.join("corpus_manifest.bin"), &manifest);

    // The tiered-storage golden: the corpus rolled up into segment
    // summaries — sorted first, exactly as the compaction ladder does —
    // byte-frozen under `corpus_rollup/`, plus the coarse query answers
    // the rollup tier must serve (generated from the sorted batch sweep,
    // so the harness cross-checks the rollup reader against the batch
    // engine, not against itself).
    let raw = std::env::temp_dir().join(format!("rlscope_gen_rollup_raw_{}", std::process::id()));
    let sorted =
        std::env::temp_dir().join(format!("rlscope_gen_rollup_sorted_{}", std::process::id()));
    write_corpus_chunk_dir(&raw);
    let _ = std::fs::remove_dir_all(&sorted);
    run(reorder_chunk_dir(&raw, &sorted, CORPUS_DIR_CHUNK_BYTES), "sorting the corpus dir");
    let rollup_stats = run(
        rollup_chunk_dir(&sorted, &dir.join("corpus_rollup"), CORPUS_ROLLUP_SEGMENT_NS),
        "rolling up the corpus dir",
    );
    write(
        &dir.join("expected_rollup_overall.json"),
        run(Analysis::from_chunk_dir(&sorted).canonical_json(), "overall rollup reference"),
    );
    write(
        &dir.join("expected_rollup_by_phase_op.json"),
        run(
            Analysis::from_chunk_dir(&sorted)
                .group_by([Dim::Phase, Dim::Operation])
                .canonical_json(),
            "phase/op rollup reference",
        ),
    );
    for d in [&raw, &sorted] {
        if let Err(e) = std::fs::remove_dir_all(d) {
            eprintln!("gen_corpus: cleaning {} failed: {e}", d.display());
            std::process::exit(2);
        }
    }

    // The Minigo phase-report golden (regenerate after any deliberate
    // change to the simulation stack's cost models or the workload).
    write(&dir.join("minigo_phase.json"), minigo_phase_canonical_json());

    println!(
        "wrote {} events (v1 {} B, v2 {} B, v3 {} B, manifest {} B, {} rollup segments) \
         + {} extreme events to {}",
        events.len(),
        v1.len(),
        v2.len(),
        v3.len(),
        manifest.len(),
        rollup_stats.segments,
        extreme.len(),
        dir.display()
    );
}
