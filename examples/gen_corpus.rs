//! Regenerates the golden trace corpus under `tests/corpus/`.
//!
//! Run after any **deliberate** change to the chunk wire formats, the
//! overlap sweep's attribution semantics, or the fixture itself:
//!
//! ```text
//! cargo run --example gen_corpus
//! ```
//!
//! then review the corpus diff as part of the change. `tests/golden.rs`
//! fails on any drift between the checked-in files and the current
//! codec/sweep behavior.

use rlscope::core::compute_overlap;
use rlscope::core::store::{encode_events, encode_events_v1};
use std::path::Path;

include!(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/corpus/fixture.rs"));

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let events = corpus_events();
    let extreme = corpus_extreme_events();

    let v2 = encode_events(&events);
    assert_eq!(&v2[..8], b"RLSCOPE2", "main corpus must encode as v2");
    let v1 = encode_events_v1(&events);
    let extreme_chunk = encode_events(&extreme);
    assert_eq!(&extreme_chunk[..8], b"RLSCOPE1", "extreme corpus must fall back to v1");

    std::fs::write(dir.join("corpus_v2.rls"), &v2).unwrap();
    std::fs::write(dir.join("corpus_v1.rls"), &v1).unwrap();
    std::fs::write(dir.join("corpus_extreme.rls"), &extreme_chunk).unwrap();
    std::fs::write(dir.join("expected_overall.json"), compute_overlap(&events).canonical_json())
        .unwrap();
    std::fs::write(
        dir.join("expected_by_pid.json"),
        per_pid_canonical_json(&per_pid_tables(&events)),
    )
    .unwrap();
    std::fs::write(dir.join("expected_extreme.json"), compute_overlap(&extreme).canonical_json())
        .unwrap();

    println!(
        "wrote {} events (v1 {} B, v2 {} B) + {} extreme events to {}",
        events.len(),
        v1.len(),
        v2.len(),
        extreme.len(),
        dir.display()
    );
}
