//! Using the profiler API directly on custom code — the paper's Figure 2
//! scenario: a Go-playing training script annotated with nested
//! `mcts_tree_search` / `expand_leaf` operations, then calibrated and
//! corrected.
//!
//! Run with: `cargo run --release --example custom_annotations`

use rlscope::core::prelude::*;
use rlscope::prelude::*;
use rlscope::sim::ids::ProcessId;
use rlscope::sim::time::DurationNs;
use rlscope::workloads::Stack;
use rlscope_backend::{Activation, Mlp, Params, RunKind, Tensor};
use rlscope_sim::rng::SimRng;

/// The user's training script: traverse a move tree in Python, expand
/// leaves with neural-network inference (Figure 2 of the paper).
fn train_script(stack: &Stack, rls: &Profiler, timesteps: usize) {
    let mut rng = SimRng::seed_from_u64(1);
    let mut params = Params::new();
    let net = Mlp::new(
        &mut params,
        &mut rng,
        "value",
        &[32, 64, 1],
        Activation::Relu,
        Activation::Linear,
    );

    rls.set_phase("data_collection");
    for _t in 0..timesteps {
        let _op = rls.operation("mcts_tree_search");
        // Pure-Python tree traversal.
        stack.exec.python(DurationNs::from_micros(400));
        for _minibatch in 0..4 {
            let _inner = rls.operation("expand_leaf");
            let x = Tensor::full(8, 32, 0.1);
            let out = stack.exec.run(RunKind::Inference, |tape| {
                let xv = tape.constant(x.clone());
                let y = net.forward(tape, &params, xv);
                tape.value(y).clone()
            });
            stack.exec.fetch(&out);
        }
    }
}

fn main() {
    println!("== Custom annotations: the paper's Figure 2 script ==\n");

    // Calibrate once: five deterministic re-runs under different
    // book-keeping toggles (paper Appendix C).
    let run_once = |toggles: Toggles| {
        let stack = Stack::new(BackendKind::TensorFlow, ExecModel::Graph);
        let rls = stack.profile(ProcessId(0), toggles);
        train_script(&stack, &rls, 50);
        RunStats::from_trace(&rls.finish())
    };
    let cal = calibrate(&mut |t| run_once(t));
    println!(
        "calibrated means: annotation {}, transition {}, CUDA API {}",
        cal.annotation_mean, cal.py_interception_mean, cal.cuda_interception_mean
    );

    // Full profiled run + correction.
    let stack = Stack::new(BackendKind::TensorFlow, ExecModel::Graph);
    let rls = stack.profile(ProcessId(0), Toggles::all());
    train_script(&stack, &rls, 50);
    let trace = rls.finish();
    let profile = correct(&trace, &cal);

    println!(
        "\ninstrumented {} -> corrected {} (profiling inflated the run {:.2}x)\n",
        profile.instrumented_total,
        profile.corrected_total,
        profile.inflation()
    );
    println!("{}", BreakdownReport::from_table(&profile.table).render());
    println!(
        "nesting works as in Figure 3: expand_leaf owns its inference time,\n\
         mcts_tree_search keeps only the pure-Python traversal."
    );
}
