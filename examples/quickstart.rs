//! Quickstart: profile a DQN agent learning Atari-style Pong.
//!
//! Mirrors the paper's §2.1 walkthrough — the training loop alternates
//! inference, simulation, and backpropagation, and RL-Scope's breakdown
//! shows where the time actually goes.
//!
//! Run with: `cargo run --release --example quickstart`

use rlscope::core::analysis::{Analysis, Dim};
use rlscope::core::report::BreakdownReport;
use rlscope::prelude::*;

fn main() {
    // A reproducible workload spec: DQN on Pong under stable-baselines
    // (TensorFlow Graph execution).
    let spec = TrainSpec {
        scale: ScaleConfig { hidden: 16, batch: 8, freq_div: 10, ppo: None },
        ..TrainSpec::new(AlgoKind::Dqn, "Pong", STABLE_BASELINES, 400)
    };

    // Run fully instrumented (annotations, Python<->C interception, CUDA
    // API interception, CUPTI activity collection).
    let outcome = spec.run(Some(Toggles::all()));
    let trace = outcome.trace.expect("profiled run produces a trace");

    println!("== RL-Scope quickstart: DQN on Pong ==\n");
    println!(
        "trained {} steps ({} episodes) in {} of virtual time\n",
        400,
        outcome.episodes,
        trace.wall_time()
    );

    // Cross-stack overlap via the unified query API: every instant
    // attributed to (operation, resources, stack level).
    let breakdown = Analysis::of(&trace).table().expect("in-memory analysis");
    println!("{}", BreakdownReport::from_table(&breakdown).render());

    // The same pipeline scoped per operation: one single-operation table
    // per annotation, conserving the overall total exactly.
    for (key, table) in Analysis::of(&trace).group_by([Dim::Operation]).tables().unwrap() {
        println!(
            "{:<18} {:>12}  ({:.1}% of total)",
            key.label(),
            table.total().to_string(),
            100.0 * table.total().ratio(breakdown.total())
        );
    }
    println!();

    // The paper's headline observation, visible even in a quickstart: the
    // CPU side of the CUDA API costs more than the GPU kernels it feeds.
    let cuda = breakdown.cpu_category_total(CpuCategory::CudaApi);
    let gpu = breakdown.gpu_total();
    println!(
        "CUDA API CPU time {} vs GPU-busy time {} ({:.1}x) — RL is CPU-bound.",
        cuda,
        gpu,
        cuda.ratio(gpu)
    );
}
