//! Case study 3 (paper §4.3): the scale-up Minigo workload.
//!
//! Sixteen self-play workers collect Go games in parallel to "keep the GPU
//! busy". `nvidia-smi` dutifully reports near-100% utilization — while
//! RL-Scope's per-process breakdown shows each worker spends almost no
//! time actually executing GPU kernels (finding F.11).
//!
//! Run with: `cargo run --release --example minigo_scaleup`

use rlscope::workloads::{run_minigo, MinigoConfig};

fn main() {
    let cfg = MinigoConfig {
        workers: 8, // scaled from the paper's 16 for a quick example run
        board: 7,
        max_moves: 24,
        sims_per_move: 6,
        ..MinigoConfig::default()
    };
    println!(
        "== Minigo scale-up: {} self-play workers, {}x{} board ==\n",
        cfg.workers, cfg.board, cfg.board
    );

    let result = run_minigo(&cfg);
    println!("{}", result.report.render());

    println!("fork/join dependency edges:");
    for (from, to) in &result.report.dependencies {
        println!("  {from} -> {to}");
    }

    let worst = result
        .worker_walls
        .iter()
        .zip(&result.worker_gpu)
        .map(|(w, g)| (w, g, g.ratio(*w)))
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .expect("at least one worker");
    println!(
        "\nbusiest worker: {} wall, {} on the GPU ({:.2}% GPU-bound) — \
         yet nvidia-smi reported {:.0}% utilization.",
        worst.0,
        worst.1,
        100.0 * worst.2,
        result.report.smi_reported_percent
    );
}
