//! # rlscope — cross-stack profiling for deep reinforcement learning
//! workloads
//!
//! A from-scratch Rust reproduction of **"RL-Scope: Cross-stack Profiling
//! for Deep Reinforcement Learning Workloads"** (Gleeson et al., MLSys
//! 2021). This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the profiler itself: annotations, transparent
//!   interception, cross-stack event overlap, calibration, overhead
//!   correction, async trace storage, reports;
//! * [`sim`] — the virtual-time CPU/GPU substrate (clock, streams, CUDA
//!   API layer, CUPTI-style hooks, `nvidia-smi` model, process graph);
//! * [`backend`] — the tensor/autograd engine with Graph, Eager, and
//!   Autograph execution models;
//! * [`envs`] — Pong, the locomotion family, the AirLearning drone, and a
//!   Go engine with MCTS;
//! * [`rl`] — DQN, DDPG, TD3, SAC, A2C, PPO2;
//! * [`workloads`] — the paper's profiled experiments, Minigo scale-up
//!   workload, and calibration validation suite.
//!
//! ## Quickstart
//!
//! ```
//! use rlscope::prelude::*;
//!
//! // Profile 50 steps of DDPG on Walker2D under stable-baselines
//! // (TensorFlow Graph), with full instrumentation.
//! let spec = TrainSpec {
//!     scale: ScaleConfig { hidden: 8, batch: 4, freq_div: 25, ppo: None },
//!     ..TrainSpec::new(AlgoKind::Ddpg, "Walker2D", STABLE_BASELINES, 50)
//! };
//! let outcome = spec.run(Some(Toggles::all()));
//! let trace = outcome.trace.unwrap();
//! let breakdown = trace.breakdown();
//! assert!(breakdown.total() > rlscope::sim::time::DurationNs::ZERO);
//! ```

#![forbid(unsafe_code)]

pub use rlscope_backend as backend;
pub use rlscope_collector as collector;
pub use rlscope_core as core;
pub use rlscope_envs as envs;
pub use rlscope_rl as rl;
pub use rlscope_sim as sim;
pub use rlscope_workloads as workloads;

/// The most common imports for profiling an RL workload.
pub mod prelude {
    pub use rlscope_backend::prelude::*;
    pub use rlscope_core::prelude::*;
    pub use rlscope_envs::{Action, ActionSpace, Environment, StepResult};
    pub use rlscope_rl::{Agent, AlgoKind, Transition};
    pub use rlscope_workloads::frameworks::{
        REAGENT, STABLE_BASELINES, TF_AGENTS_AUTOGRAPH, TF_AGENTS_EAGER,
    };
    pub use rlscope_workloads::{ScaleConfig, Stack, TrainSpec};
}
