//! Multi-process model: fork/join relationships between simulated processes.
//!
//! Scale-up RL workloads (paper §4.3, Appendix B.2) run many worker
//! processes in parallel — Minigo forks 16 self-play workers, joins them,
//! then runs SGD-update and evaluation phases. RL-Scope's multi-process view
//! (Figure 8) renders each process as a node in a "computational graph" with
//! dependencies generated from fork/join relationships.

use crate::ids::ProcessId;
use crate::time::TimeNs;
use serde::{Deserialize, Serialize};

/// One simulated process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessNode {
    /// The process id.
    pub id: ProcessId,
    /// Human-readable name, e.g. `"selfplay_worker_3"`.
    pub name: String,
    /// Parent process, if forked.
    pub parent: Option<ProcessId>,
    /// Fork instant on the parent's timeline (`ZERO` for the root).
    pub forked_at: TimeNs,
    /// Join instant, once the process has been joined.
    pub joined_at: Option<TimeNs>,
}

/// The fork/join graph of a multi-process workload.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessGraph {
    nodes: Vec<ProcessNode>,
}

impl ProcessGraph {
    /// Creates a graph containing a single root process named `root_name`.
    pub fn new(root_name: impl Into<String>) -> Self {
        ProcessGraph {
            nodes: vec![ProcessNode {
                id: ProcessId(0),
                name: root_name.into(),
                parent: None,
                forked_at: TimeNs::ZERO,
                joined_at: None,
            }],
        }
    }

    /// The root process id.
    pub fn root(&self) -> ProcessId {
        ProcessId(0)
    }

    /// Forks a child of `parent` at `t`; returns the child's id.
    ///
    /// # Panics
    ///
    /// Panics if `parent` does not exist.
    pub fn fork(&mut self, parent: ProcessId, name: impl Into<String>, t: TimeNs) -> ProcessId {
        assert!(
            (parent.as_u32() as usize) < self.nodes.len(),
            "fork from unknown process {parent}"
        );
        let id = ProcessId(self.nodes.len() as u32);
        self.nodes.push(ProcessNode {
            id,
            name: name.into(),
            parent: Some(parent),
            forked_at: t,
            joined_at: None,
        });
        id
    }

    /// Marks `child` joined at `t`.
    ///
    /// # Panics
    ///
    /// Panics if `child` does not exist or was already joined.
    pub fn join(&mut self, child: ProcessId, t: TimeNs) {
        let node = &mut self.nodes[child.as_u32() as usize];
        assert!(node.joined_at.is_none(), "{child} joined twice");
        node.joined_at = Some(t);
    }

    /// Looks up a process node.
    pub fn get(&self, id: ProcessId) -> Option<&ProcessNode> {
        self.nodes.get(id.as_u32() as usize)
    }

    /// Iterates over all nodes in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ProcessNode> {
        self.nodes.iter()
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists... never: the root always exists, so
    /// this returns false; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Children of `id`, in fork order.
    pub fn children(&self, id: ProcessId) -> Vec<ProcessId> {
        self.nodes.iter().filter(|n| n.parent == Some(id)).map(|n| n.id).collect()
    }

    /// Dependency edges `(from, to)`: one fork edge per parent→child, and
    /// one join edge child→parent for joined children — the "dependency"
    /// arrows of Figure 8.
    pub fn dependency_edges(&self) -> Vec<(ProcessId, ProcessId)> {
        let mut edges = Vec::new();
        for n in &self.nodes {
            if let Some(p) = n.parent {
                edges.push((p, n.id));
                if n.joined_at.is_some() {
                    edges.push((n.id, p));
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_join_lifecycle() {
        let mut g = ProcessGraph::new("loader");
        let w0 = g.fork(g.root(), "selfplay_worker_0", TimeNs::from_nanos(10));
        let w1 = g.fork(g.root(), "selfplay_worker_1", TimeNs::from_nanos(10));
        assert_eq!(g.len(), 3);
        assert_eq!(g.children(g.root()), vec![w0, w1]);
        g.join(w0, TimeNs::from_nanos(100));
        assert_eq!(g.get(w0).unwrap().joined_at, Some(TimeNs::from_nanos(100)));
        assert_eq!(g.get(w1).unwrap().joined_at, None);
    }

    #[test]
    fn dependency_edges_include_joins() {
        let mut g = ProcessGraph::new("root");
        let c = g.fork(g.root(), "child", TimeNs::ZERO);
        assert_eq!(g.dependency_edges(), vec![(g.root(), c)]);
        g.join(c, TimeNs::from_nanos(5));
        assert_eq!(g.dependency_edges(), vec![(g.root(), c), (c, g.root())]);
    }

    #[test]
    #[should_panic(expected = "joined twice")]
    fn double_join_panics() {
        let mut g = ProcessGraph::new("root");
        let c = g.fork(g.root(), "child", TimeNs::ZERO);
        g.join(c, TimeNs::ZERO);
        g.join(c, TimeNs::ZERO);
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn fork_from_unknown_panics() {
        let mut g = ProcessGraph::new("root");
        g.fork(ProcessId(9), "child", TimeNs::ZERO);
    }
}
