//! Nanosecond-resolution virtual time primitives.
//!
//! All timestamps in the substrate and the profiler are [`TimeNs`] instants
//! on a virtual timeline, and all costs are [`DurationNs`] spans. Keeping
//! them as distinct newtypes (rather than bare `u64`s) prevents the classic
//! instant-vs-span confusion bugs in interval arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline, in nanoseconds since process start.
///
/// ```
/// use rlscope_sim::time::{DurationNs, TimeNs};
/// let t = TimeNs::ZERO + DurationNs::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimeNs(u64);

/// A span of virtual time, in nanoseconds.
///
/// ```
/// use rlscope_sim::time::DurationNs;
/// let d = DurationNs::from_millis(2) + DurationNs::from_micros(500);
/// assert_eq!(d.as_nanos(), 2_500_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DurationNs(u64);

impl TimeNs {
    /// The origin of the virtual timeline.
    pub const ZERO: TimeNs = TimeNs(0);

    /// Creates an instant at `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        TimeNs(ns)
    }

    /// Creates an instant at `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        TimeNs(us * 1_000)
    }

    /// Creates an instant at `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        TimeNs(ms * 1_000_000)
    }

    /// Creates an instant at `s` whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        TimeNs(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: TimeNs) -> DurationNs {
        debug_assert!(earlier.0 <= self.0, "duration_since: {earlier:?} > {self:?}");
        DurationNs(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: DurationNs) -> TimeNs {
        TimeNs(self.0.saturating_sub(d.0))
    }

    /// The later of two instants.
    pub fn max(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: TimeNs) -> TimeNs {
        TimeNs(self.0.min(other.0))
    }
}

impl DurationNs {
    /// A zero-length span.
    pub const ZERO: DurationNs = DurationNs(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        DurationNs(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        DurationNs(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        DurationNs(ms * 1_000_000)
    }

    /// Creates a duration of `s` whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        DurationNs(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative values saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        DurationNs(if s <= 0.0 { 0 } else { (s * 1e9).round() as u64 })
    }

    /// Returns the raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the span is zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: DurationNs) -> DurationNs {
        DurationNs(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: DurationNs) -> DurationNs {
        DurationNs(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: DurationNs) -> DurationNs {
        DurationNs(self.0.min(other.0))
    }

    /// Multiplies the span by a non-negative float, rounding to nanoseconds.
    pub fn mul_f64(self, k: f64) -> DurationNs {
        debug_assert!(k >= 0.0, "mul_f64 with negative factor {k}");
        DurationNs((self.0 as f64 * k).round() as u64)
    }

    /// Ratio of two spans, `self / other`, as a float.
    ///
    /// Returns 0.0 when `other` is zero.
    pub fn ratio(self, other: DurationNs) -> f64 {
        if other.0 == 0 {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add<DurationNs> for TimeNs {
    type Output = TimeNs;
    fn add(self, rhs: DurationNs) -> TimeNs {
        TimeNs(self.0 + rhs.0)
    }
}

impl AddAssign<DurationNs> for TimeNs {
    fn add_assign(&mut self, rhs: DurationNs) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeNs> for TimeNs {
    type Output = DurationNs;
    fn sub(self, rhs: TimeNs) -> DurationNs {
        self.duration_since(rhs)
    }
}

impl Add for DurationNs {
    type Output = DurationNs;
    fn add(self, rhs: DurationNs) -> DurationNs {
        DurationNs(self.0 + rhs.0)
    }
}

impl AddAssign for DurationNs {
    fn add_assign(&mut self, rhs: DurationNs) {
        self.0 += rhs.0;
    }
}

impl Sub for DurationNs {
    type Output = DurationNs;
    fn sub(self, rhs: DurationNs) -> DurationNs {
        debug_assert!(rhs.0 <= self.0, "DurationNs underflow: {self:?} - {rhs:?}");
        DurationNs(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for DurationNs {
    fn sub_assign(&mut self, rhs: DurationNs) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for DurationNs {
    type Output = DurationNs;
    fn mul(self, rhs: u64) -> DurationNs {
        DurationNs(self.0 * rhs)
    }
}

impl Div<u64> for DurationNs {
    type Output = DurationNs;
    fn div(self, rhs: u64) -> DurationNs {
        DurationNs(self.0 / rhs)
    }
}

impl Sum for DurationNs {
    fn sum<I: Iterator<Item = DurationNs>>(iter: I) -> DurationNs {
        DurationNs(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for TimeNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for DurationNs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_plus_duration() {
        let t = TimeNs::from_nanos(100) + DurationNs::from_nanos(50);
        assert_eq!(t, TimeNs::from_nanos(150));
    }

    #[test]
    fn instant_difference_is_duration() {
        let a = TimeNs::from_nanos(100);
        let b = TimeNs::from_nanos(350);
        assert_eq!(b - a, DurationNs::from_nanos(250));
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(DurationNs::from_micros(1), DurationNs::from_nanos(1_000));
        assert_eq!(DurationNs::from_millis(1), DurationNs::from_micros(1_000));
        assert_eq!(DurationNs::from_secs(1), DurationNs::from_millis(1_000));
    }

    #[test]
    fn from_secs_f64_rounds_and_saturates() {
        assert_eq!(DurationNs::from_secs_f64(1.5e-9), DurationNs::from_nanos(2));
        assert_eq!(DurationNs::from_secs_f64(-1.0), DurationNs::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: DurationNs = (1..=4).map(DurationNs::from_nanos).sum();
        assert_eq!(total, DurationNs::from_nanos(10));
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(DurationNs::from_nanos(5).ratio(DurationNs::ZERO), 0.0);
        assert!((DurationNs::from_nanos(6).ratio(DurationNs::from_nanos(3)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(DurationNs::from_nanos(5).to_string(), "5ns");
        assert_eq!(DurationNs::from_micros(5).to_string(), "5.000us");
        assert_eq!(DurationNs::from_millis(5).to_string(), "5.000ms");
        assert_eq!(DurationNs::from_secs(5).to_string(), "5.000s");
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(DurationNs::from_nanos(10).mul_f64(0.25), DurationNs::from_nanos(3));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(TimeNs::from_nanos(5).saturating_sub(DurationNs::from_nanos(10)), TimeNs::ZERO);
        assert_eq!(
            DurationNs::from_nanos(5).saturating_sub(DurationNs::from_nanos(10)),
            DurationNs::ZERO
        );
    }
}
