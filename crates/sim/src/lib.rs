//! # rlscope-sim — virtual-time CPU/GPU execution substrate
//!
//! The RL-Scope paper profiles real Python/TensorFlow/PyTorch/CUDA stacks on
//! physical GPUs. This crate is the substitution that makes the reproduction
//! possible on commodity hardware: a **deterministic, nanosecond-resolution
//! virtual-time model** of the same execution stack.
//!
//! The substrate models:
//!
//! * a [`clock::VirtualClock`] shared by every layer of one simulated process;
//! * a [`gpu::GpuDevice`] with FIFO streams ([`ids::StreamId`]) on which kernels and
//!   memory copies execute *asynchronously* with respect to the CPU timeline,
//!   exactly the asynchrony that makes CPU/GPU overlap analysis non-trivial;
//! * a [`cuda::CudaContext`] exposing `cudaLaunchKernel` /
//!   `cudaMemcpyAsync` / `cudaDeviceSynchronize`-shaped calls, with
//!   CUPTI-style [`hooks::CudaHooks`] callbacks and configurable
//!   *closed-source profiling inflation* per API (the quantity RL-Scope's
//!   difference-of-average calibration exists to correct);
//! * a [`python::PyRuntime`] modelling high-level-language execution and the
//!   Python↔C boundary, with [`hooks::StackHooks`] transition callbacks and
//!   configurable interception book-keeping cost (the quantity delta
//!   calibration corrects);
//! * an [`smi::UtilizationSampler`] reproducing the documented `nvidia-smi`
//!   coarse-sampling semantics;
//! * a [`process::ProcessGraph`] of fork/join relationships for
//!   multi-process workloads (Minigo).
//!
//! Everything is deterministic: two runs with the same configuration produce
//! byte-identical event streams, which is what makes the paper's ±16%
//! overhead-correction validation an exact, unit-testable property here.
//!
//! ## Example
//!
//! ```
//! use rlscope_sim::clock::VirtualClock;
//! use rlscope_sim::cuda::{CudaContext, CudaCostConfig};
//! use rlscope_sim::gpu::{GpuDevice, KernelDesc};
//! use rlscope_sim::time::DurationNs;
//!
//! let clock = VirtualClock::new();
//! let mut cuda = CudaContext::new(clock.clone(), GpuDevice::new(1), CudaCostConfig::default());
//! let stream = cuda.default_stream();
//! cuda.launch_kernel(stream, KernelDesc::new("gemm", DurationNs::from_micros(40)));
//! cuda.device_synchronize();
//! assert!(clock.now().as_nanos() > 40_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod cost;
pub mod cuda;
pub mod gpu;
pub mod hooks;
pub mod ids;
pub mod process;
pub mod python;
pub mod rng;
pub mod smi;
pub mod time;

pub use clock::VirtualClock;
pub use cuda::{CudaApiKind, CudaContext, CudaCostConfig};
pub use gpu::{GpuDevice, KernelDesc, KernelRecord, MemcpyDir, MemcpyRecord};
pub use hooks::{CudaHooks, NativeLib, StackHooks};
pub use ids::{ProcessId, StreamId, ThreadId};
pub use python::{PyCostConfig, PyRuntime};
pub use smi::UtilizationSampler;
pub use time::{DurationNs, TimeNs};
