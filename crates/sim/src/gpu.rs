//! The virtual GPU: streams, kernels, memory copies, busy intervals.
//!
//! The essential property reproduced from real hardware is *asynchrony*:
//! `cudaLaunchKernel` costs CPU time and returns immediately; the kernel
//! itself executes later, on the GPU timeline, after every previously
//! enqueued operation on the same stream has finished. This is what creates
//! the CPU/GPU overlap regions that RL-Scope's sweep (paper Figure 3)
//! attributes.

use crate::ids::StreamId;
use crate::time::{DurationNs, TimeNs};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Direction of a memory copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemcpyDir {
    /// Host (CPU) to device (GPU).
    HostToDevice,
    /// Device (GPU) to host (CPU).
    DeviceToHost,
    /// Device to device.
    DeviceToDevice,
}

/// A kernel launch request: a name (for attribution) and a modelled GPU
/// execution duration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Kernel name, e.g. `"gemm_f32_64x64"`.
    pub name: Arc<str>,
    /// Modelled execution time on the GPU.
    pub duration: DurationNs,
}

impl KernelDesc {
    /// Creates a kernel descriptor.
    pub fn new(name: impl Into<Arc<str>>, duration: DurationNs) -> Self {
        KernelDesc { name: name.into(), duration }
    }
}

/// A completed kernel execution on the GPU timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Kernel name.
    pub name: Arc<str>,
    /// Stream the kernel ran on.
    pub stream: StreamId,
    /// CPU-side instant the kernel was enqueued (API exit time).
    pub queued: TimeNs,
    /// GPU-side execution start.
    pub start: TimeNs,
    /// GPU-side execution end.
    pub end: TimeNs,
}

/// A completed memory copy on the GPU timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemcpyRecord {
    /// Copy direction.
    pub dir: MemcpyDir,
    /// Bytes copied.
    pub bytes: u64,
    /// Stream the copy ran on.
    pub stream: StreamId,
    /// CPU-side instant the copy was enqueued.
    pub queued: TimeNs,
    /// GPU-side start.
    pub start: TimeNs,
    /// GPU-side end.
    pub end: TimeNs,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Stream {
    available_at: TimeNs,
}

/// A virtual GPU device.
///
/// Streams are FIFO queues: work enqueued on a stream starts at
/// `max(enqueue_time, stream_available_at)`. Distinct streams execute
/// concurrently (the device models enough SM capacity for the small kernels
/// typical of RL workloads — the paper's central observation is precisely
/// that RL kernels underutilize the device).
///
/// The device records every busy interval so that the `nvidia-smi` model
/// ([`crate::smi`]) can sample coarse utilization over them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuDevice {
    streams: Vec<Stream>,
    busy: Vec<(TimeNs, TimeNs)>,
    memcpy_bandwidth_bytes_per_sec: f64,
    memcpy_latency: DurationNs,
}

impl GpuDevice {
    /// PCIe-class default copy bandwidth (12 GB/s).
    pub const DEFAULT_BANDWIDTH: f64 = 12.0e9;

    /// Creates a device with `n_streams` streams (at least 1).
    pub fn new(n_streams: usize) -> Self {
        GpuDevice {
            streams: vec![Stream::default(); n_streams.max(1)],
            busy: Vec::new(),
            memcpy_bandwidth_bytes_per_sec: Self::DEFAULT_BANDWIDTH,
            memcpy_latency: DurationNs::from_micros(2),
        }
    }

    /// The default stream (stream 0).
    pub fn default_stream(&self) -> StreamId {
        StreamId(0)
    }

    /// Adds a stream and returns its id (used per worker process in
    /// scale-up workloads).
    pub fn add_stream(&mut self) -> StreamId {
        self.streams.push(Stream::default());
        StreamId((self.streams.len() - 1) as u32)
    }

    /// Number of streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Enqueues a kernel at CPU instant `queued`; returns the completed
    /// execution record.
    ///
    /// # Panics
    ///
    /// Panics if `stream` does not exist on this device.
    pub fn enqueue_kernel(
        &mut self,
        stream: StreamId,
        desc: &KernelDesc,
        queued: TimeNs,
    ) -> KernelRecord {
        let (start, end) = self.schedule(stream, queued, desc.duration);
        KernelRecord { name: desc.name.clone(), stream, queued, start, end }
    }

    /// Enqueues a memory copy of `bytes` at CPU instant `queued`.
    ///
    /// Copy duration is `latency + bytes / bandwidth`.
    ///
    /// # Panics
    ///
    /// Panics if `stream` does not exist on this device.
    pub fn enqueue_memcpy(
        &mut self,
        stream: StreamId,
        dir: MemcpyDir,
        bytes: u64,
        queued: TimeNs,
    ) -> MemcpyRecord {
        let dur = self.memcpy_duration(bytes);
        let (start, end) = self.schedule(stream, queued, dur);
        MemcpyRecord { dir, bytes, stream, queued, start, end }
    }

    /// Modelled duration of a copy of `bytes` bytes.
    pub fn memcpy_duration(&self, bytes: u64) -> DurationNs {
        self.memcpy_latency
            + DurationNs::from_secs_f64(bytes as f64 / self.memcpy_bandwidth_bytes_per_sec)
    }

    /// The instant at which `stream` will have drained all enqueued work.
    ///
    /// # Panics
    ///
    /// Panics if `stream` does not exist on this device.
    pub fn stream_available_at(&self, stream: StreamId) -> TimeNs {
        self.streams[stream.as_u32() as usize].available_at
    }

    /// The instant at which every stream has drained.
    pub fn device_idle_at(&self) -> TimeNs {
        self.streams.iter().map(|s| s.available_at).max().unwrap_or(TimeNs::ZERO)
    }

    /// All busy intervals recorded so far, in enqueue order (not globally
    /// sorted across streams).
    pub fn busy_intervals(&self) -> &[(TimeNs, TimeNs)] {
        &self.busy
    }

    /// Total GPU-busy time, counting overlap across streams once.
    pub fn busy_union(&self) -> DurationNs {
        let mut ivs = self.busy.clone();
        ivs.sort();
        let mut total = DurationNs::ZERO;
        let mut cur: Option<(TimeNs, TimeNs)> = None;
        for (s, e) in ivs {
            match cur {
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    total += ce - cs;
                    cur = Some((s, e));
                    let _ = cs;
                }
                None => cur = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = cur {
            total += ce - cs;
        }
        total
    }

    fn schedule(&mut self, stream: StreamId, queued: TimeNs, dur: DurationNs) -> (TimeNs, TimeNs) {
        let s = &mut self.streams[stream.as_u32() as usize];
        let start = queued.max(s.available_at);
        let end = start + dur;
        s.available_at = end;
        if !dur.is_zero() {
            self.busy.push((start, end));
        }
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kd(name: &str, us: u64) -> KernelDesc {
        KernelDesc::new(name, DurationNs::from_micros(us))
    }

    #[test]
    fn fifo_within_stream() {
        let mut gpu = GpuDevice::new(1);
        let s = gpu.default_stream();
        let a = gpu.enqueue_kernel(s, &kd("a", 10), TimeNs::from_nanos(0));
        let b = gpu.enqueue_kernel(s, &kd("b", 10), TimeNs::from_nanos(100));
        assert_eq!(a.start, TimeNs::ZERO);
        assert_eq!(a.end, TimeNs::from_nanos(10_000));
        // b was queued at t=100ns but must wait for a.
        assert_eq!(b.start, TimeNs::from_nanos(10_000));
        assert_eq!(b.end, TimeNs::from_nanos(20_000));
    }

    #[test]
    fn streams_run_concurrently() {
        let mut gpu = GpuDevice::new(2);
        let a = gpu.enqueue_kernel(StreamId(0), &kd("a", 10), TimeNs::ZERO);
        let b = gpu.enqueue_kernel(StreamId(1), &kd("b", 10), TimeNs::ZERO);
        assert_eq!(a.start, TimeNs::ZERO);
        assert_eq!(b.start, TimeNs::ZERO);
        // Overlapping intervals are unioned once.
        assert_eq!(gpu.busy_union(), DurationNs::from_micros(10));
    }

    #[test]
    fn idle_gap_delays_start_to_queue_time() {
        let mut gpu = GpuDevice::new(1);
        let s = gpu.default_stream();
        let a = gpu.enqueue_kernel(s, &kd("a", 5), TimeNs::from_micros(100));
        assert_eq!(a.start, TimeNs::from_micros(100));
    }

    #[test]
    fn memcpy_duration_scales_with_bytes() {
        let gpu = GpuDevice::new(1);
        let small = gpu.memcpy_duration(1_000);
        let large = gpu.memcpy_duration(1_000_000);
        assert!(large > small);
        // 1 MB at 12 GB/s is ~83 us plus 2 us latency.
        let expect = 2_000.0 + 1.0e6 / 12.0e9 * 1e9;
        assert!((large.as_nanos() as f64 - expect).abs() < 500.0);
    }

    #[test]
    fn busy_union_merges_disjoint_and_overlapping() {
        let mut gpu = GpuDevice::new(2);
        gpu.enqueue_kernel(StreamId(0), &kd("a", 10), TimeNs::ZERO);
        gpu.enqueue_kernel(StreamId(1), &kd("b", 10), TimeNs::from_micros(5));
        gpu.enqueue_kernel(StreamId(0), &kd("c", 10), TimeNs::from_micros(100));
        // [0,10] ∪ [5,15] = 15us, plus disjoint [100,110] = 25us.
        assert_eq!(gpu.busy_union(), DurationNs::from_micros(25));
    }

    #[test]
    fn device_idle_at_is_max_over_streams() {
        let mut gpu = GpuDevice::new(2);
        gpu.enqueue_kernel(StreamId(0), &kd("a", 10), TimeNs::ZERO);
        gpu.enqueue_kernel(StreamId(1), &kd("b", 30), TimeNs::ZERO);
        assert_eq!(gpu.device_idle_at(), TimeNs::from_micros(30));
    }

    #[test]
    fn add_stream_returns_fresh_id() {
        let mut gpu = GpuDevice::new(1);
        let s = gpu.add_stream();
        assert_eq!(s, StreamId(1));
        assert_eq!(gpu.stream_count(), 2);
    }

    #[test]
    fn zero_duration_kernels_do_not_pollute_busy_list() {
        let mut gpu = GpuDevice::new(1);
        gpu.enqueue_kernel(StreamId(0), &kd("noop", 0), TimeNs::ZERO);
        assert!(gpu.busy_intervals().is_empty());
    }
}
