//! The per-process virtual clock.

use crate::time::{DurationNs, TimeNs};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotonically advancing virtual clock.
///
/// Every layer of one simulated process (Python runtime, ML backend, CUDA
/// context, profiler book-keeping) holds a clone of the same clock and
/// advances it as modelled work "executes". Cloning is cheap — clones share
/// the underlying counter.
///
/// The clock is thread-safe so that the profiler's asynchronous trace-dump
/// thread can read timestamps, but the simulated workload itself advances it
/// from a single thread per simulated process.
///
/// ```
/// use rlscope_sim::clock::VirtualClock;
/// use rlscope_sim::time::DurationNs;
///
/// let clock = VirtualClock::new();
/// let alias = clock.clone();
/// clock.advance(DurationNs::from_micros(7));
/// assert_eq!(alias.now().as_nanos(), 7_000);
/// ```
#[derive(Clone, Default)]
pub struct VirtualClock {
    now_ns: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a clock at the origin of its timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock whose timeline starts at `start` (used for worker
    /// processes forked partway through a parent's run).
    pub fn starting_at(start: TimeNs) -> Self {
        let clock = Self::new();
        clock.now_ns.store(start.as_nanos(), Ordering::Relaxed);
        clock
    }

    /// The current virtual instant.
    pub fn now(&self) -> TimeNs {
        TimeNs::from_nanos(self.now_ns.load(Ordering::Relaxed))
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: DurationNs) -> TimeNs {
        let new = self.now_ns.fetch_add(d.as_nanos(), Ordering::Relaxed) + d.as_nanos();
        TimeNs::from_nanos(new)
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise leaves it
    /// unchanged. Returns the (possibly unchanged) current instant.
    ///
    /// This is how a CPU thread "blocks" until an asynchronous GPU timeline
    /// catches up (e.g. `cudaDeviceSynchronize`).
    pub fn advance_to(&self, t: TimeNs) -> TimeNs {
        self.now_ns.fetch_max(t.as_nanos(), Ordering::Relaxed);
        self.now()
    }

    /// Runs `f`, returning its result together with the span of virtual time
    /// it consumed.
    pub fn timed<R>(&self, f: impl FnOnce() -> R) -> (R, DurationNs) {
        let start = self.now();
        let out = f();
        (out, self.now() - start)
    }
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualClock").field("now", &self.now()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), TimeNs::ZERO);
    }

    #[test]
    fn clones_share_state() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(DurationNs::from_nanos(10));
        b.advance(DurationNs::from_nanos(5));
        assert_eq!(a.now(), TimeNs::from_nanos(15));
        assert_eq!(b.now(), TimeNs::from_nanos(15));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let c = VirtualClock::new();
        c.advance(DurationNs::from_nanos(100));
        // Advancing to the past is a no-op.
        assert_eq!(c.advance_to(TimeNs::from_nanos(50)), TimeNs::from_nanos(100));
        assert_eq!(c.advance_to(TimeNs::from_nanos(150)), TimeNs::from_nanos(150));
    }

    #[test]
    fn starting_at_offsets_timeline() {
        let c = VirtualClock::starting_at(TimeNs::from_nanos(42));
        assert_eq!(c.now(), TimeNs::from_nanos(42));
    }

    #[test]
    fn timed_measures_closure() {
        let c = VirtualClock::new();
        let (val, took) = c.timed(|| {
            c.advance(DurationNs::from_micros(3));
            "done"
        });
        assert_eq!(val, "done");
        assert_eq!(took, DurationNs::from_micros(3));
    }
}
