//! The `nvidia-smi` GPU-utilization model.
//!
//! The paper quotes the official `nvidia-smi` documentation: utilization is
//! measured "by looking to see if one or more kernels are executing over the
//! sample period", with the sample period "between 1/6 seconds and 1
//! second". A sample period that contains *any* kernel activity — however
//! brief — counts as 100% utilized. This is the mechanism behind finding
//! F.11: many tiny inference kernels spread across time drive the reported
//! utilization to 100% while the true GPU-busy time is negligible.

use crate::time::{DurationNs, TimeNs};
use serde::{Deserialize, Serialize};

/// A coarse utilization sampler with `nvidia-smi` semantics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilizationSampler {
    period: DurationNs,
}

/// Output of a sampling pass over a window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// One flag per sample period: did any kernel overlap the period?
    pub samples: Vec<bool>,
    /// Percentage of periods reported "utilized" (0–100).
    pub reported_percent: f64,
    /// True busy time within the window (union of kernel intervals).
    pub true_busy: DurationNs,
    /// The window length.
    pub window: DurationNs,
}

impl UtilizationReport {
    /// True utilization: busy-union time over window time, as a percentage.
    pub fn true_percent(&self) -> f64 {
        100.0 * self.true_busy.ratio(self.window)
    }
}

impl Default for UtilizationSampler {
    /// The fastest documented `nvidia-smi` sample period (1/6 s).
    fn default() -> Self {
        UtilizationSampler { period: DurationNs::from_nanos(1_000_000_000 / 6) }
    }
}

impl UtilizationSampler {
    /// Creates a sampler with the given sample period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: DurationNs) -> Self {
        assert!(!period.is_zero(), "sample period must be non-zero");
        UtilizationSampler { period }
    }

    /// The sample period.
    pub fn period(&self) -> DurationNs {
        self.period
    }

    /// Samples `busy` intervals over `[window_start, window_end)`.
    ///
    /// Intervals need not be sorted and may overlap (multiple streams).
    pub fn sample(
        &self,
        busy: &[(TimeNs, TimeNs)],
        window_start: TimeNs,
        window_end: TimeNs,
    ) -> UtilizationReport {
        let window =
            if window_end > window_start { window_end - window_start } else { DurationNs::ZERO };
        let mut ivs: Vec<(TimeNs, TimeNs)> = busy
            .iter()
            .copied()
            .filter(|&(s, e)| e > window_start && s < window_end)
            .map(|(s, e)| (s.max(window_start), e.min(window_end)))
            .collect();
        ivs.sort();

        // Union for true busy time.
        let mut true_busy = DurationNs::ZERO;
        let mut cur: Option<(TimeNs, TimeNs)> = None;
        for &(s, e) in &ivs {
            match cur {
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    true_busy += ce - cs;
                    let _ = cs;
                    cur = Some((s, e));
                }
                None => cur = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = cur {
            true_busy += ce - cs;
        }

        // Coarse sampling: a period is "utilized" if any interval intersects.
        let mut samples = Vec::new();
        let mut idx = 0;
        let mut t = window_start;
        while t < window_end {
            let pe = (t + self.period).min(window_end);
            while idx < ivs.len() && ivs[idx].1 <= t {
                idx += 1;
            }
            // ivs is sorted by start; scan forward from idx for any overlap.
            let mut hit = false;
            let mut j = idx;
            while j < ivs.len() && ivs[j].0 < pe {
                if ivs[j].1 > t {
                    hit = true;
                    break;
                }
                j += 1;
            }
            samples.push(hit);
            t = pe;
        }

        let reported_percent = if samples.is_empty() {
            0.0
        } else {
            100.0 * samples.iter().filter(|&&b| b).count() as f64 / samples.len() as f64
        };
        UtilizationReport { samples, reported_percent, true_busy, window }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> TimeNs {
        TimeNs::from_nanos(v)
    }

    #[test]
    fn tiny_kernels_inflate_reported_utilization() {
        // One 1us kernel per 100ms period over 1s: true usage ~0.001%,
        // reported 100%.
        let sampler = UtilizationSampler::new(DurationNs::from_millis(100));
        let busy: Vec<_> = (0..10)
            .map(|i| {
                let s = ns(i * 100_000_000 + 50_000_000);
                (s, s + DurationNs::from_micros(1))
            })
            .collect();
        let rep = sampler.sample(&busy, ns(0), ns(1_000_000_000));
        assert_eq!(rep.reported_percent, 100.0);
        assert!(rep.true_percent() < 0.01);
        assert_eq!(rep.true_busy, DurationNs::from_micros(10));
    }

    #[test]
    fn idle_window_reports_zero() {
        let sampler = UtilizationSampler::default();
        let rep = sampler.sample(&[], ns(0), ns(1_000_000_000));
        assert_eq!(rep.reported_percent, 0.0);
        assert_eq!(rep.true_busy, DurationNs::ZERO);
        // 1/6s periods over 1s: six full periods plus a 4ns remainder.
        assert_eq!(rep.samples.len(), 7);
    }

    #[test]
    fn fully_busy_window_reports_hundred_both_ways() {
        let sampler = UtilizationSampler::new(DurationNs::from_millis(100));
        let rep = sampler.sample(&[(ns(0), ns(1_000_000_000))], ns(0), ns(1_000_000_000));
        assert_eq!(rep.reported_percent, 100.0);
        assert!((rep.true_percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn intervals_outside_window_are_clipped() {
        let sampler = UtilizationSampler::new(DurationNs::from_millis(100));
        let rep = sampler.sample(&[(ns(0), ns(50_000_000))], ns(40_000_000), ns(240_000_000));
        // Only [40ms, 50ms) falls in window; first of two periods busy.
        assert_eq!(rep.samples, vec![true, false]);
        assert_eq!(rep.true_busy, DurationNs::from_millis(10));
    }

    #[test]
    fn unsorted_overlapping_streams_handled() {
        let sampler = UtilizationSampler::new(DurationNs::from_millis(100));
        let busy = vec![
            (ns(150_000_000), ns(160_000_000)),
            (ns(0), ns(20_000_000)),
            (ns(10_000_000), ns(30_000_000)),
        ];
        let rep = sampler.sample(&busy, ns(0), ns(200_000_000));
        assert_eq!(rep.samples, vec![true, true]);
        // Union: [0,30ms) + [150,160ms) = 40ms.
        assert_eq!(rep.true_busy, DurationNs::from_millis(40));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        UtilizationSampler::new(DurationNs::ZERO);
    }
}
