//! Cost-model primitives shared by the backend and environment crates.

use crate::time::DurationNs;
use serde::{Deserialize, Serialize};

/// An affine cost model: `base + per_unit * units`.
///
/// Used for modelled CPU execution time of tensor ops (units = FLOPs or
/// elements), GPU kernel durations, and environment step costs.
///
/// ```
/// use rlscope_sim::cost::LinearCost;
/// use rlscope_sim::time::DurationNs;
///
/// let gemm = LinearCost::new(DurationNs::from_micros(4), 0.05);
/// assert_eq!(gemm.eval(1000.0), DurationNs::from_nanos(4_050));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearCost {
    /// Fixed cost independent of problem size.
    pub base: DurationNs,
    /// Nanoseconds per unit of work.
    pub per_unit_ns: f64,
}

impl LinearCost {
    /// Creates a cost model.
    pub fn new(base: DurationNs, per_unit_ns: f64) -> Self {
        LinearCost { base, per_unit_ns }
    }

    /// A purely fixed cost.
    pub fn fixed(base: DurationNs) -> Self {
        LinearCost { base, per_unit_ns: 0.0 }
    }

    /// Evaluates the model at `units` units of work.
    pub fn eval(&self, units: f64) -> DurationNs {
        self.base + DurationNs::from_secs_f64(self.per_unit_ns.max(0.0) * units.max(0.0) / 1e9)
    }

    /// Returns this model scaled by `k` (both base and slope).
    pub fn scaled(&self, k: f64) -> LinearCost {
        LinearCost { base: self.base.mul_f64(k), per_unit_ns: self.per_unit_ns * k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_affine() {
        let c = LinearCost::new(DurationNs::from_nanos(100), 2.0);
        assert_eq!(c.eval(0.0), DurationNs::from_nanos(100));
        assert_eq!(c.eval(50.0), DurationNs::from_nanos(200));
    }

    #[test]
    fn fixed_ignores_units() {
        let c = LinearCost::fixed(DurationNs::from_micros(1));
        assert_eq!(c.eval(1e9), DurationNs::from_micros(1));
    }

    #[test]
    fn negative_units_clamp_to_zero() {
        let c = LinearCost::new(DurationNs::from_nanos(10), 1.0);
        assert_eq!(c.eval(-5.0), DurationNs::from_nanos(10));
    }

    #[test]
    fn scaled_scales_both_terms() {
        let c = LinearCost::new(DurationNs::from_nanos(100), 2.0).scaled(0.5);
        assert_eq!(c.base, DurationNs::from_nanos(50));
        assert!((c.per_unit_ns - 1.0).abs() < 1e-12);
    }
}
