//! Deterministic random-number helpers.
//!
//! Everything in the reproduction is seeded: the paper's calibration
//! methodology relies on runs being repeatable ("ML code is designed to be
//! deterministic given the same random seed", Appendix C.1), and our tests
//! assert exact bias numbers that only hold under determinism.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG with the distribution helpers the workloads need.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates an RNG from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives a child RNG for a named component, so that adding a consumer
    /// does not perturb the streams of others.
    pub fn derive(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with a draw-free hash of our seed
        // state via a fresh sample.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut me = self.clone();
        let salt: u64 = me.inner.gen();
        SimRng::seed_from_u64(h ^ salt.rotate_left(17))
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.uniform().max(1e-12);
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Fills `out` with standard-normal samples scaled by `scale`.
    pub fn fill_normal(&mut self, out: &mut [f32], scale: f32) {
        for v in out {
            *v = self.normal() as f32 * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn derive_is_label_sensitive() {
        let root = SimRng::seed_from_u64(1);
        let mut x = root.derive("x");
        let mut y = root.derive("y");
        assert_ne!(x.uniform().to_bits(), y.uniform().to_bits());
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(4);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
