//! The CUDA API layer: CPU-side calls that drive the asynchronous GPU.
//!
//! Each API call costs CPU time on the virtual clock. When CUPTI activity
//! collection is enabled, each call is additionally inflated by a per-API
//! amount — modelling the *closed-source profiling code inside the CUDA
//! library* that the paper's difference-of-average calibration (Appendix
//! C.2) measures and corrects. When RL-Scope's own API interception is
//! enabled, each call is further inflated by a type-uniform book-keeping
//! cost — the quantity delta calibration (Appendix C.1) corrects.

use crate::clock::VirtualClock;
use crate::gpu::{GpuDevice, KernelDesc, KernelRecord, MemcpyDir, MemcpyRecord};
use crate::hooks::CudaHooks;
use crate::ids::StreamId;
use crate::time::{DurationNs, TimeNs};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The CUDA APIs the substrate models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CudaApiKind {
    /// `cudaLaunchKernel`.
    LaunchKernel,
    /// `cudaMemcpyAsync`.
    MemcpyAsync,
    /// `cudaDeviceSynchronize`.
    DeviceSynchronize,
    /// `cudaStreamSynchronize`.
    StreamSynchronize,
}

impl CudaApiKind {
    /// All modelled API kinds, for iteration in calibration code.
    pub const ALL: [CudaApiKind; 4] = [
        CudaApiKind::LaunchKernel,
        CudaApiKind::MemcpyAsync,
        CudaApiKind::DeviceSynchronize,
        CudaApiKind::StreamSynchronize,
    ];
}

impl fmt::Display for CudaApiKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CudaApiKind::LaunchKernel => "cudaLaunchKernel",
            CudaApiKind::MemcpyAsync => "cudaMemcpyAsync",
            CudaApiKind::DeviceSynchronize => "cudaDeviceSynchronize",
            CudaApiKind::StreamSynchronize => "cudaStreamSynchronize",
        };
        f.write_str(s)
    }
}

/// CPU-side cost model for CUDA API calls.
///
/// Defaults are in the range the paper's Figure 10 uses for illustration
/// (`cudaMemcpyAsync` ≈ 4.5 µs, `cudaLaunchKernel` ≈ 6.5 µs base; +1 µs and
/// +3 µs respectively under CUPTI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CudaCostConfig {
    /// Base CPU cost of `cudaLaunchKernel`.
    pub launch_cpu: DurationNs,
    /// Base CPU cost of `cudaMemcpyAsync`.
    pub memcpy_cpu: DurationNs,
    /// Base CPU cost of a synchronize call, excluding wait time.
    pub sync_cpu: DurationNs,
    /// CUPTI-internal inflation of `cudaLaunchKernel` when activity
    /// collection is enabled.
    pub cupti_launch_inflation: DurationNs,
    /// CUPTI-internal inflation of `cudaMemcpyAsync`.
    pub cupti_memcpy_inflation: DurationNs,
    /// CUPTI-internal inflation of synchronize calls.
    pub cupti_sync_inflation: DurationNs,
    /// RL-Scope's own per-call API-interception book-keeping cost
    /// (type-uniform across APIs, per the paper §3.4).
    pub interception_cost: DurationNs,
}

impl Default for CudaCostConfig {
    fn default() -> Self {
        CudaCostConfig {
            launch_cpu: DurationNs::from_nanos(6_500),
            memcpy_cpu: DurationNs::from_nanos(4_500),
            sync_cpu: DurationNs::from_nanos(1_800),
            cupti_launch_inflation: DurationNs::from_nanos(3_000),
            cupti_memcpy_inflation: DurationNs::from_nanos(1_000),
            cupti_sync_inflation: DurationNs::from_nanos(400),
            interception_cost: DurationNs::from_nanos(900),
        }
    }
}

impl CudaCostConfig {
    /// Base CPU cost of `api` (no profiling enabled).
    pub fn base_cost(&self, api: CudaApiKind) -> DurationNs {
        match api {
            CudaApiKind::LaunchKernel => self.launch_cpu,
            CudaApiKind::MemcpyAsync => self.memcpy_cpu,
            CudaApiKind::DeviceSynchronize | CudaApiKind::StreamSynchronize => self.sync_cpu,
        }
    }

    /// CUPTI-internal inflation of `api` when activity collection is on.
    pub fn cupti_inflation(&self, api: CudaApiKind) -> DurationNs {
        match api {
            CudaApiKind::LaunchKernel => self.cupti_launch_inflation,
            CudaApiKind::MemcpyAsync => self.cupti_memcpy_inflation,
            CudaApiKind::DeviceSynchronize | CudaApiKind::StreamSynchronize => {
                self.cupti_sync_inflation
            }
        }
    }
}

/// Per-API call counters, useful for transition reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiCounts {
    /// Number of `cudaLaunchKernel` calls.
    pub launches: u64,
    /// Number of `cudaMemcpyAsync` calls.
    pub memcpys: u64,
    /// Number of synchronize calls.
    pub syncs: u64,
}

impl ApiCounts {
    /// Total CUDA API calls.
    pub fn total(&self) -> u64 {
        self.launches + self.memcpys + self.syncs
    }
}

/// A CUDA context: the CPU-side entry point to the virtual GPU.
///
/// One context per simulated process; multiple contexts may share a
/// [`GpuDevice`] through interior ownership by cloning the device out and
/// back (scale-up workloads instead use one context with one stream per
/// worker timeline).
pub struct CudaContext {
    clock: VirtualClock,
    device: GpuDevice,
    config: CudaCostConfig,
    hooks: Option<Arc<dyn CudaHooks>>,
    cupti_enabled: bool,
    interception_enabled: bool,
    counts: ApiCounts,
}

impl fmt::Debug for CudaContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CudaContext")
            .field("now", &self.clock.now())
            .field("cupti_enabled", &self.cupti_enabled)
            .field("interception_enabled", &self.interception_enabled)
            .field("counts", &self.counts)
            .finish_non_exhaustive()
    }
}

impl CudaContext {
    /// Creates a context over `device`, advancing `clock` on each API call.
    pub fn new(clock: VirtualClock, device: GpuDevice, config: CudaCostConfig) -> Self {
        CudaContext {
            clock,
            device,
            config,
            hooks: None,
            cupti_enabled: false,
            interception_enabled: false,
            counts: ApiCounts::default(),
        }
    }

    /// Registers CUPTI-style hooks (the profiler).
    pub fn set_hooks(&mut self, hooks: Arc<dyn CudaHooks>) {
        self.hooks = Some(hooks);
    }

    /// Removes any registered hooks.
    pub fn clear_hooks(&mut self) {
        self.hooks = None;
    }

    /// Enables/disables CUPTI activity collection. Enabling it injects the
    /// closed-source per-API inflation into every subsequent call.
    pub fn set_cupti_enabled(&mut self, on: bool) {
        self.cupti_enabled = on;
    }

    /// Enables/disables RL-Scope's own API-interception book-keeping cost.
    pub fn set_interception_enabled(&mut self, on: bool) {
        self.interception_enabled = on;
    }

    /// Whether CUPTI activity collection is on.
    pub fn cupti_enabled(&self) -> bool {
        self.cupti_enabled
    }

    /// The device's default stream.
    pub fn default_stream(&self) -> StreamId {
        self.device.default_stream()
    }

    /// Adds a stream on the underlying device.
    pub fn add_stream(&mut self) -> StreamId {
        self.device.add_stream()
    }

    /// Immutable access to the underlying device.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Cost configuration in effect.
    pub fn config(&self) -> &CudaCostConfig {
        &self.config
    }

    /// API call counters accumulated so far.
    pub fn counts(&self) -> ApiCounts {
        self.counts
    }

    /// Resets API call counters (e.g. between training iterations when
    /// measuring per-iteration transitions).
    pub fn reset_counts(&mut self) {
        self.counts = ApiCounts::default();
    }

    fn api_cpu_cost(&self, api: CudaApiKind) -> DurationNs {
        let mut c = self.config.base_cost(api);
        if self.cupti_enabled {
            c += self.config.cupti_inflation(api);
        }
        if self.interception_enabled {
            c += self.config.interception_cost;
        }
        c
    }

    /// Launches `desc` on `stream`: costs CPU time, then enqueues the kernel
    /// on the GPU timeline. Returns the completed execution record.
    pub fn launch_kernel(&mut self, stream: StreamId, desc: KernelDesc) -> KernelRecord {
        self.counts.launches += 1;
        let enter = self.clock.now();
        if let Some(h) = &self.hooks {
            h.on_api_enter(CudaApiKind::LaunchKernel, enter);
        }
        let exit = self.clock.advance(self.api_cpu_cost(CudaApiKind::LaunchKernel));
        if let Some(h) = &self.hooks {
            h.on_api_exit(CudaApiKind::LaunchKernel, enter, exit);
        }
        let rec = self.device.enqueue_kernel(stream, &desc, exit);
        if self.cupti_enabled {
            if let Some(h) = &self.hooks {
                h.on_kernel(&rec);
            }
        }
        rec
    }

    /// Enqueues an asynchronous copy of `bytes` in direction `dir`.
    pub fn memcpy_async(&mut self, stream: StreamId, dir: MemcpyDir, bytes: u64) -> MemcpyRecord {
        self.counts.memcpys += 1;
        let enter = self.clock.now();
        if let Some(h) = &self.hooks {
            h.on_api_enter(CudaApiKind::MemcpyAsync, enter);
        }
        let exit = self.clock.advance(self.api_cpu_cost(CudaApiKind::MemcpyAsync));
        if let Some(h) = &self.hooks {
            h.on_api_exit(CudaApiKind::MemcpyAsync, enter, exit);
        }
        let rec = self.device.enqueue_memcpy(stream, dir, bytes, exit);
        if self.cupti_enabled {
            if let Some(h) = &self.hooks {
                h.on_memcpy(&rec);
            }
        }
        rec
    }

    /// Blocks the CPU until every stream has drained.
    ///
    /// The API interval covers both the fixed CPU cost and the wait.
    pub fn device_synchronize(&mut self) {
        self.sync_until(CudaApiKind::DeviceSynchronize, self.device.device_idle_at());
    }

    /// Blocks the CPU until `stream` has drained.
    ///
    /// # Panics
    ///
    /// Panics if `stream` does not exist on the device.
    pub fn stream_synchronize(&mut self, stream: StreamId) {
        self.sync_until(CudaApiKind::StreamSynchronize, self.device.stream_available_at(stream));
    }

    fn sync_until(&mut self, api: CudaApiKind, target: TimeNs) {
        self.counts.syncs += 1;
        let enter = self.clock.now();
        if let Some(h) = &self.hooks {
            h.on_api_enter(api, enter);
        }
        self.clock.advance(self.api_cpu_cost(api));
        self.clock.advance_to(target);
        let exit = self.clock.now();
        if let Some(h) = &self.hooks {
            h.on_api_exit(api, enter, exit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    #[derive(Default)]
    struct Recorder {
        apis: Mutex<Vec<(CudaApiKind, TimeNs, TimeNs)>>,
        kernels: Mutex<Vec<KernelRecord>>,
    }

    impl CudaHooks for Recorder {
        fn on_api_enter(&self, _: CudaApiKind, _: TimeNs) {}
        fn on_api_exit(&self, api: CudaApiKind, enter: TimeNs, exit: TimeNs) {
            self.apis.lock().push((api, enter, exit));
        }
        fn on_kernel(&self, rec: &KernelRecord) {
            self.kernels.lock().push(rec.clone());
        }
        fn on_memcpy(&self, _: &MemcpyRecord) {}
    }

    fn ctx() -> CudaContext {
        CudaContext::new(VirtualClock::new(), GpuDevice::new(1), CudaCostConfig::default())
    }

    #[test]
    fn launch_costs_cpu_and_queues_gpu_work() {
        let mut cuda = ctx();
        let s = cuda.default_stream();
        let rec = cuda.launch_kernel(s, KernelDesc::new("k", DurationNs::from_micros(50)));
        // CPU advanced by the base launch cost only (no profiling enabled).
        assert_eq!(cuda.clock().now(), TimeNs::from_nanos(6_500));
        // Kernel starts when the API exits.
        assert_eq!(rec.start, TimeNs::from_nanos(6_500));
        assert_eq!(rec.end, TimeNs::from_nanos(56_500));
    }

    #[test]
    fn cupti_inflates_launch_by_configured_amount() {
        let mut plain = ctx();
        let mut cupti = ctx();
        cupti.set_cupti_enabled(true);
        let s = plain.default_stream();
        plain.launch_kernel(s, KernelDesc::new("k", DurationNs::ZERO));
        cupti.launch_kernel(s, KernelDesc::new("k", DurationNs::ZERO));
        let delta = cupti.clock().now() - TimeNs::ZERO;
        let base = plain.clock().now() - TimeNs::ZERO;
        assert_eq!(delta - base, CudaCostConfig::default().cupti_launch_inflation);
    }

    #[test]
    fn interception_adds_uniform_cost_per_api() {
        let cfg = CudaCostConfig::default();
        let mut c = ctx();
        c.set_interception_enabled(true);
        let s = c.default_stream();
        c.launch_kernel(s, KernelDesc::new("k", DurationNs::ZERO));
        assert_eq!(c.clock().now(), TimeNs::ZERO + cfg.launch_cpu + cfg.interception_cost);
    }

    #[test]
    fn device_synchronize_waits_for_gpu() {
        let mut c = ctx();
        let s = c.default_stream();
        c.launch_kernel(s, KernelDesc::new("k", DurationNs::from_millis(1)));
        c.device_synchronize();
        // 6.5us launch + 1ms kernel (which started at 6.5us).
        assert_eq!(c.clock().now(), TimeNs::from_nanos(6_500 + 1_000_000));
    }

    #[test]
    fn sync_with_idle_gpu_costs_only_base() {
        let mut c = ctx();
        c.device_synchronize();
        assert_eq!(c.clock().now(), TimeNs::from_nanos(1_800));
    }

    #[test]
    fn hooks_see_api_intervals_and_kernel_records() {
        let mut c = ctx();
        c.set_cupti_enabled(true);
        let rec = Arc::new(Recorder::default());
        c.set_hooks(rec.clone());
        let s = c.default_stream();
        c.launch_kernel(s, KernelDesc::new("k", DurationNs::from_micros(10)));
        c.device_synchronize();
        let apis = rec.apis.lock();
        assert_eq!(apis.len(), 2);
        assert_eq!(apis[0].0, CudaApiKind::LaunchKernel);
        assert_eq!(apis[1].0, CudaApiKind::DeviceSynchronize);
        assert_eq!(rec.kernels.lock().len(), 1);
    }

    #[test]
    fn kernel_activity_records_require_cupti() {
        let mut c = ctx();
        let rec = Arc::new(Recorder::default());
        c.set_hooks(rec.clone());
        let s = c.default_stream();
        c.launch_kernel(s, KernelDesc::new("k", DurationNs::from_micros(10)));
        // API callbacks fire, but no activity records without CUPTI.
        assert_eq!(rec.apis.lock().len(), 1);
        assert!(rec.kernels.lock().is_empty());
    }

    #[test]
    fn counts_accumulate_and_reset() {
        let mut c = ctx();
        let s = c.default_stream();
        c.launch_kernel(s, KernelDesc::new("k", DurationNs::ZERO));
        c.memcpy_async(s, MemcpyDir::HostToDevice, 128);
        c.device_synchronize();
        assert_eq!(c.counts(), ApiCounts { launches: 1, memcpys: 1, syncs: 1 });
        assert_eq!(c.counts().total(), 3);
        c.reset_counts();
        assert_eq!(c.counts().total(), 0);
    }
}
