//! The high-level-language (Python) runtime model and the Python↔C boundary.
//!
//! RL workloads run high-level code *inside* the training loop (paper §2.2).
//! [`PyRuntime`] models that: explicit high-level execution segments, and
//! wrapped calls into native libraries (ML backend or simulator) that record
//! transitions through [`StackHooks`] — the analogue of RL-Scope's
//! dynamically generated wrappers around native bindings (§3.2).
//!
//! When interception book-keeping is enabled, each transition injects a
//! type-uniform wrapper cost on the Python side of the boundary; this is the
//! overhead delta calibration (Appendix C.1) measures.

use crate::clock::VirtualClock;
use crate::hooks::{NativeLib, StackHooks};
use crate::time::DurationNs;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Cost model for the Python runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PyCostConfig {
    /// Book-keeping cost injected on *each side* (call and return) of a
    /// Python↔C transition when interception is enabled.
    pub interception_cost: DurationNs,
}

impl Default for PyCostConfig {
    fn default() -> Self {
        PyCostConfig { interception_cost: DurationNs::from_nanos(700) }
    }
}

/// The simulated Python interpreter for one process.
pub struct PyRuntime {
    clock: VirtualClock,
    config: PyCostConfig,
    hooks: Option<Arc<dyn StackHooks>>,
    interception_enabled: bool,
    transitions: [u64; 2],
}

impl fmt::Debug for PyRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PyRuntime")
            .field("now", &self.clock.now())
            .field("interception_enabled", &self.interception_enabled)
            .field("transitions", &self.transitions)
            .finish_non_exhaustive()
    }
}

impl PyRuntime {
    /// Creates a runtime over `clock`.
    pub fn new(clock: VirtualClock, config: PyCostConfig) -> Self {
        PyRuntime { clock, config, hooks: None, interception_enabled: false, transitions: [0, 0] }
    }

    /// Registers transition hooks (the profiler).
    pub fn set_hooks(&mut self, hooks: Arc<dyn StackHooks>) {
        self.hooks = Some(hooks);
    }

    /// Removes any registered hooks.
    pub fn clear_hooks(&mut self) {
        self.hooks = None;
    }

    /// Enables/disables interception wrapper book-keeping cost.
    pub fn set_interception_enabled(&mut self, on: bool) {
        self.interception_enabled = on;
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The cost configuration in effect.
    pub fn config(&self) -> &PyCostConfig {
        &self.config
    }

    /// Number of Python→native transitions made into `lib` so far.
    pub fn transition_count(&self, lib: NativeLib) -> u64 {
        self.transitions[lib as usize]
    }

    /// Resets transition counters.
    pub fn reset_transition_counts(&mut self) {
        self.transitions = [0, 0];
    }

    /// Executes `cost` worth of pure high-level (Python) work.
    pub fn exec(&self, cost: DurationNs) {
        if cost.is_zero() {
            return;
        }
        let start = self.clock.now();
        let end = self.clock.advance(cost);
        if let Some(h) = &self.hooks {
            h.on_python_span(start, end);
        }
    }

    /// Calls into native library `lib`, running `f` as the native body.
    ///
    /// Records the native interval through the hooks, and injects the
    /// interception wrapper cost (as Python time) on both sides of the
    /// boundary when interception is enabled.
    pub fn call_native<R>(&mut self, lib: NativeLib, f: impl FnOnce() -> R) -> R {
        self.transitions[lib as usize] += 1;
        self.wrapper_cost();
        let enter = self.clock.now();
        if let Some(h) = &self.hooks {
            h.on_native_enter(lib, enter);
        }
        let out = f();
        let exit = self.clock.now();
        if let Some(h) = &self.hooks {
            h.on_native_exit(lib, enter, exit);
        }
        self.wrapper_cost();
        out
    }

    fn wrapper_cost(&self) {
        if self.interception_enabled && !self.config.interception_cost.is_zero() {
            let start = self.clock.now();
            let end = self.clock.advance(self.config.interception_cost);
            if let Some(h) = &self.hooks {
                h.on_python_span(start, end);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeNs;
    use parking_lot::Mutex;

    #[derive(Default)]
    struct Recorder {
        python: Mutex<Vec<(TimeNs, TimeNs)>>,
        native: Mutex<Vec<(NativeLib, TimeNs, TimeNs)>>,
    }

    impl StackHooks for Recorder {
        fn on_python_span(&self, start: TimeNs, end: TimeNs) {
            self.python.lock().push((start, end));
        }
        fn on_native_enter(&self, _: NativeLib, _: TimeNs) {}
        fn on_native_exit(&self, lib: NativeLib, enter: TimeNs, exit: TimeNs) {
            self.native.lock().push((lib, enter, exit));
        }
    }

    #[test]
    fn exec_advances_clock_and_records_span() {
        let clock = VirtualClock::new();
        let mut py = PyRuntime::new(clock.clone(), PyCostConfig::default());
        let rec = Arc::new(Recorder::default());
        py.set_hooks(rec.clone());
        py.exec(DurationNs::from_micros(5));
        assert_eq!(clock.now(), TimeNs::from_micros(5));
        assert_eq!(rec.python.lock().as_slice(), &[(TimeNs::ZERO, TimeNs::from_micros(5))]);
    }

    #[test]
    fn exec_zero_cost_records_nothing() {
        let clock = VirtualClock::new();
        let mut py = PyRuntime::new(clock, PyCostConfig::default());
        let rec = Arc::new(Recorder::default());
        py.set_hooks(rec.clone());
        py.exec(DurationNs::ZERO);
        assert!(rec.python.lock().is_empty());
    }

    #[test]
    fn call_native_records_interval_and_counts_transition() {
        let clock = VirtualClock::new();
        let mut py = PyRuntime::new(clock.clone(), PyCostConfig::default());
        let rec = Arc::new(Recorder::default());
        py.set_hooks(rec.clone());
        let out = py.call_native(NativeLib::Simulator, || {
            clock.advance(DurationNs::from_micros(10));
            42
        });
        assert_eq!(out, 42);
        assert_eq!(py.transition_count(NativeLib::Simulator), 1);
        assert_eq!(py.transition_count(NativeLib::Backend), 0);
        let native = rec.native.lock();
        assert_eq!(native.len(), 1);
        assert_eq!(native[0], (NativeLib::Simulator, TimeNs::ZERO, TimeNs::from_micros(10)));
        // No interception enabled: no wrapper python spans.
        assert!(rec.python.lock().is_empty());
    }

    #[test]
    fn interception_injects_wrapper_cost_both_sides() {
        let clock = VirtualClock::new();
        let cfg = PyCostConfig { interception_cost: DurationNs::from_nanos(500) };
        let mut py = PyRuntime::new(clock.clone(), cfg);
        let rec = Arc::new(Recorder::default());
        py.set_hooks(rec.clone());
        py.set_interception_enabled(true);
        py.call_native(NativeLib::Backend, || {
            clock.advance(DurationNs::from_micros(1));
        });
        // 500ns wrapper + 1us native + 500ns wrapper.
        assert_eq!(clock.now(), TimeNs::from_nanos(2_000));
        assert_eq!(rec.python.lock().len(), 2);
        let native = rec.native.lock();
        assert_eq!(native[0].1, TimeNs::from_nanos(500));
        assert_eq!(native[0].2, TimeNs::from_nanos(1_500));
    }

    #[test]
    fn reset_transition_counts() {
        let clock = VirtualClock::new();
        let mut py = PyRuntime::new(clock, PyCostConfig::default());
        py.call_native(NativeLib::Backend, || {});
        py.reset_transition_counts();
        assert_eq!(py.transition_count(NativeLib::Backend), 0);
    }
}
