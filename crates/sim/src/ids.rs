//! Identifier newtypes for processes, threads and GPU streams.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw numeric id.
            pub const fn as_u32(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// A simulated OS process.
    ProcessId,
    "pid"
);
id_newtype!(
    /// A simulated OS thread within a process.
    ThreadId,
    "tid"
);
id_newtype!(
    /// A CUDA stream on a simulated GPU.
    StreamId,
    "stream"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(ProcessId(3).to_string(), "pid3");
        assert_eq!(ThreadId(1).to_string(), "tid1");
        assert_eq!(StreamId(0).to_string(), "stream0");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(ProcessId(1) < ProcessId(2));
        assert_eq!(StreamId::from(7).as_u32(), 7);
    }
}
