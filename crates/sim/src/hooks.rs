//! Transparent interception hook traits.
//!
//! RL-Scope collects cross-stack events *transparently*: CUPTI callbacks for
//! CUDA API calls and GPU activities, and dynamically generated wrappers
//! around native-library bindings for Python↔C transitions (paper §3.2). The
//! substrate exposes the same two hook surfaces. A profiler (rlscope-core)
//! implements these traits and registers itself; the workload code never
//! references the profiler directly.

use crate::cuda::CudaApiKind;
use crate::gpu::{KernelRecord, MemcpyRecord};
use crate::time::TimeNs;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which native library a Python↔C transition enters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NativeLib {
    /// The ML backend (TensorFlow / PyTorch stand-in).
    Backend,
    /// The simulator (Atari / MuJoCo / Unreal stand-in).
    Simulator,
}

impl fmt::Display for NativeLib {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NativeLib::Backend => write!(f, "Backend"),
            NativeLib::Simulator => write!(f, "Simulator"),
        }
    }
}

/// CUPTI-style callbacks delivered by the CUDA layer.
///
/// `on_api_*` mirror CUPTI's callback API (driver/runtime API enter/exit);
/// `on_kernel` / `on_memcpy` mirror CUPTI's activity API, which delivers GPU
/// activity records asynchronously after the work completes. The virtual
/// GPU schedules deterministically, so records are delivered as soon as the
/// completion time is known.
pub trait CudaHooks: Send + Sync {
    /// A CUDA API call is entered at `t`.
    fn on_api_enter(&self, api: CudaApiKind, t: TimeNs);
    /// A CUDA API call entered at `enter` returned at `exit`.
    fn on_api_exit(&self, api: CudaApiKind, enter: TimeNs, exit: TimeNs);
    /// A GPU kernel completed.
    fn on_kernel(&self, rec: &KernelRecord);
    /// A GPU memory copy completed.
    fn on_memcpy(&self, rec: &MemcpyRecord);
}

/// Hooks for high-level-language execution and Python↔C transitions.
///
/// Implemented by the profiler; invoked by [`crate::python::PyRuntime`].
pub trait StackHooks: Send + Sync {
    /// A contiguous span of pure high-level-language (Python) execution.
    fn on_python_span(&self, start: TimeNs, end: TimeNs);
    /// Control transferred from Python into a native library at `t`.
    fn on_native_enter(&self, lib: NativeLib, t: TimeNs);
    /// Control returned from the native library entered at `enter`.
    fn on_native_exit(&self, lib: NativeLib, enter: TimeNs, exit: TimeNs);
}

/// A no-op hook implementation, used when profiling is disabled
/// (the "uninstrumented" configuration of the calibration experiments).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHooks;

impl CudaHooks for NullHooks {
    fn on_api_enter(&self, _: CudaApiKind, _: TimeNs) {}
    fn on_api_exit(&self, _: CudaApiKind, _: TimeNs, _: TimeNs) {}
    fn on_kernel(&self, _: &KernelRecord) {}
    fn on_memcpy(&self, _: &MemcpyRecord) {}
}

impl StackHooks for NullHooks {
    fn on_python_span(&self, _: TimeNs, _: TimeNs) {}
    fn on_native_enter(&self, _: NativeLib, _: TimeNs) {}
    fn on_native_exit(&self, _: NativeLib, _: TimeNs, _: TimeNs) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_lib_display() {
        assert_eq!(NativeLib::Backend.to_string(), "Backend");
        assert_eq!(NativeLib::Simulator.to_string(), "Simulator");
    }

    #[test]
    fn null_hooks_are_callable() {
        let h = NullHooks;
        h.on_python_span(TimeNs::ZERO, TimeNs::from_nanos(1));
        h.on_native_enter(NativeLib::Simulator, TimeNs::ZERO);
        h.on_api_enter(CudaApiKind::LaunchKernel, TimeNs::ZERO);
    }
}
