//! Dense f32 tensors and the math kernels the backend executes.
//!
//! The numerics are real — matrix multiplies, elementwise transforms,
//! reductions — so the RL algorithms built on top genuinely learn. Virtual
//! time is charged separately by the executor ([`crate::exec`]); this module
//! is pure math.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major f32 tensor of rank 1 or 2.
///
/// Rank-1 tensors are represented as `[1, n]` row vectors internally; shape
/// queries preserve the distinction via [`Tensor::rank`].
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    rank: u8,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{:?}, ...]", &self.data[..4])
        }
    }
}

impl Tensor {
    /// Creates a `rows × cols` tensor from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape {rows}x{cols} != data len {}", data.len());
        Tensor { rows, cols, rank: 2, data }
    }

    /// Creates a rank-1 tensor (a vector) from data.
    pub fn vector(data: Vec<f32>) -> Self {
        Tensor { rows: 1, cols: data.len(), rank: 1, data }
    }

    /// A scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor { rows: 1, cols: 1, rank: 1, data: vec![v] }
    }

    /// A `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, rank: 2, data: vec![0.0; rows * cols] }
    }

    /// A `rows × cols` tensor filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Tensor { rows, cols, rank: 2, data: vec![v; rows * cols] }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Logical rank (1 or 2).
    pub fn rank(&self) -> u8 {
        self.rank
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes occupied by the element data (for memcpy modelling).
    pub fn byte_size(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// The single element of a scalar tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 1×1.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on non-scalar {}x{}", self.rows, self.cols);
        self.data[0]
    }

    /// Matrix product `self @ rhs`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} @ {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = vec![0.0f32; m * n];
        // ikj loop order with `chunks_exact` row views: the inner
        // accumulation is a branch-free slice zip the compiler can
        // autovectorize (no sparsity test — the branch cost more than the
        // multiplies it occasionally skipped, and it blocked SIMD). The
        // zero-dimension guard keeps `chunks_exact(0)` unreachable; the
        // product is all zeros then anyway.
        if k > 0 && n > 0 {
            for (orow, arow) in out.chunks_exact_mut(n).zip(self.data.chunks_exact(k)) {
                for (&a, rrow) in arow.iter().zip(rhs.data.chunks_exact(n)) {
                    for (o, &b) in orow.iter_mut().zip(rrow) {
                        *o += a * b;
                    }
                }
            }
        }
        Tensor::from_vec(m, n, out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        Tensor::from_vec(self.cols, self.rows, out)
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            rank: self.rank,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(rhs, "zip");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            rank: self.rank,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Adds a row vector `bias` to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.len(), self.cols, "bias len {} != cols {}", bias.len(), self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Column sums collapsed to a row vector (gradient of row broadcast).
    pub fn sum_rows(&self) -> Tensor {
        let mut out = vec![0.0f32; self.cols];
        if self.cols > 0 {
            for row in self.data.chunks_exact(self.cols) {
                for (o, &v) in out.iter_mut().zip(row) {
                    *o += v;
                }
            }
        }
        Tensor::vector(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element of a vector.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap()
    }

    /// A view of row `r` as a new rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> Tensor {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        Tensor::vector(self.data[r * self.cols..(r + 1) * self.cols].to_vec())
    }

    /// Stacks rank-1 rows into a matrix.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths or `rows` is empty.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows of nothing");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged stack_rows");
            data.extend_from_slice(r.data());
        }
        Tensor::from_vec(rows.len(), cols, data)
    }

    /// Concatenates two tensors with equal row counts along columns.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows, rhs.rows, "concat_cols rows {} != {}", self.rows, rhs.rows);
        let cols = self.cols + rhs.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(&self.data[r * self.cols..(r + 1) * self.cols]);
            data.extend_from_slice(&rhs.data[r * rhs.cols..(r + 1) * rhs.cols]);
        }
        Tensor::from_vec(self.rows, cols, data)
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    fn assert_same_shape(&self, rhs: &Tensor, what: &str) {
        assert!(
            self.rows == rhs.rows && self.cols == rhs.cols,
            "{what}: shape {}x{} vs {}x{}",
            self.rows,
            self.cols,
            rhs.rows,
            rhs.cols
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(data: [[f32; 2]; 2]) -> Tensor {
        Tensor::from_vec(2, 2, data.concat())
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn zero_dimension_matmul_and_sum_rows() {
        // k == 0: inner dimension empty, product is the zero matrix.
        let c = Tensor::from_vec(2, 0, vec![]).matmul(&Tensor::from_vec(0, 3, vec![]));
        assert_eq!((c.rows(), c.cols()), (2, 3));
        assert!(c.data().iter().all(|&v| v == 0.0));
        // n == 0: empty output shape.
        let d = Tensor::zeros(2, 3).matmul(&Tensor::from_vec(3, 0, vec![]));
        assert_eq!((d.rows(), d.cols()), (2, 0));
        assert!(Tensor::from_vec(3, 0, vec![]).sum_rows().is_empty());
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(2, 1), 6.0);
    }

    #[test]
    fn broadcast_and_sum_rows_are_adjoint_shapes() {
        let x = t2([[1., 2.], [3., 4.]]);
        let b = Tensor::vector(vec![10., 20.]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[11., 22., 13., 24.]);
        assert_eq!(y.sum_rows().data(), &[24., 46.]);
    }

    #[test]
    fn reductions() {
        let x = t2([[1., 2.], [3., 4.]]);
        assert_eq!(x.sum(), 10.0);
        assert_eq!(x.mean(), 2.5);
        assert_eq!(x.argmax(), 3);
        assert!((x.norm() - 30.0_f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn stack_and_row_round_trip() {
        let rows = vec![Tensor::vector(vec![1., 2.]), Tensor::vector(vec![3., 4.])];
        let m = Tensor::stack_rows(&rows);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1).data(), &[3., 4.]);
    }

    #[test]
    fn concat_cols_interleaves_rows() {
        let a = t2([[1., 2.], [3., 4.]]);
        let b = Tensor::from_vec(2, 1, vec![9., 8.]);
        let c = a.concat_cols(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.data(), &[1., 2., 9., 3., 4., 8.]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(5.0).item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn item_on_matrix_panics() {
        Tensor::zeros(2, 2).item();
    }

    #[test]
    fn map_zip() {
        let x = t2([[1., -2.], [0., 3.]]);
        assert_eq!(x.map(|v| v.max(0.0)).data(), &[1., 0., 0., 3.]);
        let y = x.zip(&x, |a, b| a + b);
        assert_eq!(y.data(), &[2., -4., 0., 6.]);
    }

    #[test]
    fn byte_size_counts_f32s() {
        assert_eq!(Tensor::zeros(4, 4).byte_size(), 64);
    }
}
