//! Reverse-mode automatic differentiation on a tape.
//!
//! All execution models (Graph, Eager, Autograph) share this engine; what
//! differs between them is *dispatch* — who pays which CPU costs, and how
//! many Python↔backend transitions occur — which is charged through the
//! [`OpSink`] the executor installs. The math itself is identical, exactly
//! as TensorFlow Graph and Eager share kernels in the real stack.

use crate::tensor::Tensor;
use std::fmt;

/// Identifies a value recorded on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(usize);

/// Receives one callback per executed primitive op, with an estimated FLOP
/// count — the executor uses this to charge backend CPU time and launch a
/// GPU kernel on the virtual device.
pub trait OpSink {
    /// Called after each primitive op executes.
    fn on_op(&self, name: &'static str, flops: f64);
}

/// Primitive operations the tape can record.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    Leaf { param: Option<usize> },
    MatMul,
    AddBias,
    Add,
    Sub,
    Mul,
    Relu,
    Tanh,
    Sigmoid,
    Exp,
    Scale(f32),
    AddScalar(f32),
    Clamp(f32, f32),
    Min,
    Sum,
    Mean,
}

impl Op {
    fn name(&self) -> &'static str {
        match self {
            Op::Leaf { .. } => "leaf",
            Op::MatMul => "matmul",
            Op::AddBias => "add_bias",
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Relu => "relu",
            Op::Tanh => "tanh",
            Op::Sigmoid => "sigmoid",
            Op::Exp => "exp",
            Op::Scale(_) => "scale",
            Op::AddScalar(_) => "add_scalar",
            Op::Clamp(_, _) => "clamp",
            Op::Min => "minimum",
            Op::Sum => "reduce_sum",
            Op::Mean => "reduce_mean",
        }
    }
}

struct Node {
    op: Op,
    inputs: Vec<VarId>,
    value: Tensor,
}

/// A tape of executed ops, supporting reverse-mode gradients.
///
/// ```
/// use rlscope_backend::tape::Tape;
/// use rlscope_backend::tensor::Tensor;
///
/// let mut tape = Tape::new();
/// let x = tape.param(0, Tensor::vector(vec![3.0]));
/// let y = tape.mul(x, x); // y = x^2
/// let grads = tape.backward(y);
/// assert_eq!(grads.wrt(x).unwrap().data(), &[6.0]); // dy/dx = 2x
/// ```
pub struct Tape<'s> {
    nodes: Vec<Node>,
    sink: Option<&'s dyn OpSink>,
}

impl fmt::Debug for Tape<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tape").field("ops", &self.nodes.len()).finish()
    }
}

/// Gradients produced by [`Tape::backward`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
    params: Vec<(usize, usize)>, // (param store index, node index)
}

impl Gradients {
    /// The gradient with respect to `v`, if any path reached it.
    pub fn wrt(&self, v: VarId) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Iterates `(param_store_index, gradient)` for every parameter leaf
    /// that received a gradient.
    pub fn params(&self) -> impl Iterator<Item = (usize, &Tensor)> {
        self.params
            .iter()
            .filter_map(move |&(pid, node)| self.grads[node].as_ref().map(|g| (pid, g)))
    }
}

impl Default for Tape<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'s> Tape<'s> {
    /// An unobserved tape (no cost accounting) — for tests and pure math.
    pub fn new() -> Self {
        Tape { nodes: Vec::new(), sink: None }
    }

    /// A tape whose ops are reported to `sink`.
    pub fn with_sink(sink: &'s dyn OpSink) -> Self {
        Tape { nodes: Vec::new(), sink: Some(sink) }
    }

    /// Number of recorded ops (including leaves).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value of `v`.
    pub fn value(&self, v: VarId) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Records a constant leaf (no gradient flows to it).
    pub fn constant(&mut self, t: Tensor) -> VarId {
        self.push(Op::Leaf { param: None }, vec![], t)
    }

    /// Records a parameter leaf tagged with its parameter-store index, so
    /// that [`Gradients::params`] can route gradients back to the optimizer.
    pub fn param(&mut self, store_index: usize, t: Tensor) -> VarId {
        self.push(Op::Leaf { param: Some(store_index) }, vec![], t)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let flops = 2.0
            * self.nodes[a.0].value.rows() as f64
            * self.nodes[a.0].value.cols() as f64
            * self.nodes[b.0].value.cols() as f64;
        self.charged(Op::MatMul, vec![a, b], v, flops)
    }

    /// Adds a row-vector bias to every row of `x`.
    pub fn add_bias(&mut self, x: VarId, bias: VarId) -> VarId {
        let v = self.nodes[x.0].value.add_row_broadcast(&self.nodes[bias.0].value);
        let flops = v.len() as f64;
        self.charged(Op::AddBias, vec![x, bias], v, flops)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, |x, y| x + y);
        let flops = v.len() as f64;
        self.charged(Op::Add, vec![a, b], v, flops)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, |x, y| x - y);
        let flops = v.len() as f64;
        self.charged(Op::Sub, vec![a, b], v, flops)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, |x, y| x * y);
        let flops = v.len() as f64;
        self.charged(Op::Mul, vec![a, b], v, flops)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: VarId) -> VarId {
        let v = self.nodes[x.0].value.map(|a| a.max(0.0));
        let flops = v.len() as f64;
        self.charged(Op::Relu, vec![x], v, flops)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, x: VarId) -> VarId {
        let v = self.nodes[x.0].value.map(f32::tanh);
        let flops = 4.0 * v.len() as f64;
        self.charged(Op::Tanh, vec![x], v, flops)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: VarId) -> VarId {
        let v = self.nodes[x.0].value.map(|a| 1.0 / (1.0 + (-a).exp()));
        let flops = 4.0 * v.len() as f64;
        self.charged(Op::Sigmoid, vec![x], v, flops)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, x: VarId) -> VarId {
        let v = self.nodes[x.0].value.map(f32::exp);
        let flops = 4.0 * v.len() as f64;
        self.charged(Op::Exp, vec![x], v, flops)
    }

    /// Multiplication by a compile-time scalar.
    pub fn scale(&mut self, x: VarId, k: f32) -> VarId {
        let v = self.nodes[x.0].value.map(|a| a * k);
        let flops = v.len() as f64;
        self.charged(Op::Scale(k), vec![x], v, flops)
    }

    /// Addition of a compile-time scalar.
    pub fn add_scalar(&mut self, x: VarId, k: f32) -> VarId {
        let v = self.nodes[x.0].value.map(|a| a + k);
        let flops = v.len() as f64;
        self.charged(Op::AddScalar(k), vec![x], v, flops)
    }

    /// Elementwise clamp into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&mut self, x: VarId, lo: f32, hi: f32) -> VarId {
        assert!(lo <= hi, "clamp lo {lo} > hi {hi}");
        let v = self.nodes[x.0].value.map(|a| a.clamp(lo, hi));
        let flops = v.len() as f64;
        self.charged(Op::Clamp(lo, hi), vec![x], v, flops)
    }

    /// Elementwise minimum of two tensors (PPO's clipped objective).
    pub fn minimum(&mut self, a: VarId, b: VarId) -> VarId {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, f32::min);
        let flops = v.len() as f64;
        self.charged(Op::Min, vec![a, b], v, flops)
    }

    /// Sum of all elements, as a scalar.
    pub fn sum(&mut self, x: VarId) -> VarId {
        let v = Tensor::scalar(self.nodes[x.0].value.sum());
        let flops = self.nodes[x.0].value.len() as f64;
        self.charged(Op::Sum, vec![x], v, flops)
    }

    /// Mean of all elements, as a scalar.
    pub fn mean(&mut self, x: VarId) -> VarId {
        let v = Tensor::scalar(self.nodes[x.0].value.mean());
        let flops = self.nodes[x.0].value.len() as f64;
        self.charged(Op::Mean, vec![x], v, flops)
    }

    /// Convenience: mean squared error between `pred` and `target`.
    pub fn mse(&mut self, pred: VarId, target: VarId) -> VarId {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean(sq)
    }

    /// Runs reverse-mode differentiation from scalar `loss`.
    ///
    /// Charges one backward op per forward op on the path (real frameworks
    /// launch distinct gradient kernels).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a scalar.
    pub fn backward(&mut self, loss: VarId) -> Gradients {
        assert_eq!(self.nodes[loss.0].value.len(), 1, "backward from non-scalar");
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            let Some(gout) = grads[i].clone() else { continue };
            let (op, inputs) = (self.nodes[i].op.clone(), self.nodes[i].inputs.clone());
            if matches!(op, Op::Leaf { .. }) {
                continue;
            }
            self.report(grad_name(&op), self.nodes[i].value.len() as f64 * 2.0);
            match op {
                Op::Leaf { .. } => {}
                Op::MatMul => {
                    let a = self.nodes[inputs[0].0].value.clone();
                    let b = self.nodes[inputs[1].0].value.clone();
                    let da = gout.matmul(&b.transpose());
                    let db = a.transpose().matmul(&gout);
                    accumulate(&mut grads, inputs[0], da);
                    accumulate(&mut grads, inputs[1], db);
                }
                Op::AddBias => {
                    accumulate(&mut grads, inputs[0], gout.clone());
                    accumulate(&mut grads, inputs[1], gout.sum_rows());
                }
                Op::Add => {
                    accumulate(&mut grads, inputs[0], gout.clone());
                    accumulate(&mut grads, inputs[1], gout);
                }
                Op::Sub => {
                    accumulate(&mut grads, inputs[0], gout.clone());
                    accumulate(&mut grads, inputs[1], gout.map(|v| -v));
                }
                Op::Mul => {
                    let a = self.nodes[inputs[0].0].value.clone();
                    let b = self.nodes[inputs[1].0].value.clone();
                    accumulate(&mut grads, inputs[0], gout.zip(&b, |g, y| g * y));
                    accumulate(&mut grads, inputs[1], gout.zip(&a, |g, x| g * x));
                }
                Op::Relu => {
                    let x = &self.nodes[inputs[0].0].value;
                    let g = gout.zip(x, |g, x| if x > 0.0 { g } else { 0.0 });
                    accumulate(&mut grads, inputs[0], g);
                }
                Op::Tanh => {
                    let y = &self.nodes[i].value;
                    let g = gout.zip(y, |g, y| g * (1.0 - y * y));
                    accumulate(&mut grads, inputs[0], g);
                }
                Op::Sigmoid => {
                    let y = &self.nodes[i].value;
                    let g = gout.zip(y, |g, y| g * y * (1.0 - y));
                    accumulate(&mut grads, inputs[0], g);
                }
                Op::Exp => {
                    let y = &self.nodes[i].value;
                    let g = gout.zip(y, |g, y| g * y);
                    accumulate(&mut grads, inputs[0], g);
                }
                Op::Scale(k) => {
                    accumulate(&mut grads, inputs[0], gout.map(|g| g * k));
                }
                Op::AddScalar(_) => {
                    accumulate(&mut grads, inputs[0], gout);
                }
                Op::Clamp(lo, hi) => {
                    let x = &self.nodes[inputs[0].0].value;
                    let g = gout.zip(x, |g, x| if x > lo && x < hi { g } else { 0.0 });
                    accumulate(&mut grads, inputs[0], g);
                }
                Op::Min => {
                    let a = self.nodes[inputs[0].0].value.clone();
                    let b = self.nodes[inputs[1].0].value.clone();
                    // Subgradient: route to the smaller input (ties to `a`).
                    let ga =
                        gout.zip(&a.zip(&b, |x, y| if x <= y { 1.0 } else { 0.0 }), |g, m| g * m);
                    let gb =
                        gout.zip(&a.zip(&b, |x, y| if x > y { 1.0 } else { 0.0 }), |g, m| g * m);
                    accumulate(&mut grads, inputs[0], ga);
                    accumulate(&mut grads, inputs[1], gb);
                }
                Op::Sum => {
                    let x = &self.nodes[inputs[0].0].value;
                    let g = Tensor::full(x.rows(), x.cols(), gout.item());
                    accumulate(&mut grads, inputs[0], g);
                }
                Op::Mean => {
                    let x = &self.nodes[inputs[0].0].value;
                    let g = Tensor::full(x.rows(), x.cols(), gout.item() / x.len() as f32);
                    accumulate(&mut grads, inputs[0], g);
                }
            }
        }

        let params = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n.op {
                Op::Leaf { param: Some(p) } => Some((p, i)),
                _ => None,
            })
            .collect();
        Gradients { grads, params }
    }

    fn push(&mut self, op: Op, inputs: Vec<VarId>, value: Tensor) -> VarId {
        self.nodes.push(Node { op, inputs, value });
        VarId(self.nodes.len() - 1)
    }

    fn charged(&mut self, op: Op, inputs: Vec<VarId>, value: Tensor, flops: f64) -> VarId {
        self.report(op.name(), flops);
        self.push(op, inputs, value)
    }

    fn report(&self, name: &'static str, flops: f64) {
        if let Some(s) = self.sink {
            s.on_op(name, flops);
        }
    }
}

fn grad_name(op: &Op) -> &'static str {
    match op {
        Op::Leaf { .. } => "leaf",
        Op::MatMul => "grad_matmul",
        Op::AddBias => "grad_add_bias",
        Op::Add => "grad_add",
        Op::Sub => "grad_sub",
        Op::Mul => "grad_mul",
        Op::Relu => "grad_relu",
        Op::Tanh => "grad_tanh",
        Op::Sigmoid => "grad_sigmoid",
        Op::Exp => "grad_exp",
        Op::Scale(_) => "grad_scale",
        Op::AddScalar(_) => "grad_add_scalar",
        Op::Clamp(_, _) => "grad_clamp",
        Op::Min => "grad_minimum",
        Op::Sum => "grad_reduce_sum",
        Op::Mean => "grad_reduce_mean",
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: VarId, g: Tensor) {
    match &mut grads[v.0] {
        Some(existing) => *existing = existing.zip(&g, |a, b| a + b),
        slot @ None => *slot = Some(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn square_gradient() {
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::vector(vec![3.0]));
        let y = tape.mul(x, x);
        let g = tape.backward(y);
        assert_eq!(g.wrt(x).unwrap().data(), &[6.0]);
    }

    #[test]
    fn matmul_gradients_match_formula() {
        let mut tape = Tape::new();
        let a = tape.param(0, Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = tape.param(1, Tensor::from_vec(2, 1, vec![3.0, 4.0]));
        let y = tape.matmul(a, b); // scalar 11
        assert_eq!(tape.value(y).item(), 11.0);
        let g = tape.backward(y);
        assert_eq!(g.wrt(a).unwrap().data(), &[3.0, 4.0]);
        assert_eq!(g.wrt(b).unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // y = x*x + x  =>  dy/dx = 2x + 1
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::vector(vec![5.0]));
        let sq = tape.mul(x, x);
        let y = tape.add(sq, x);
        let g = tape.backward(y);
        assert_eq!(g.wrt(x).unwrap().data(), &[11.0]);
    }

    #[test]
    fn constants_receive_no_param_grads() {
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::vector(vec![2.0]));
        let y = tape.mul(x, x);
        let g = tape.backward(y);
        assert_eq!(g.params().count(), 0);
        // Gradient still computed wrt the var itself.
        assert_eq!(g.wrt(x).unwrap().data(), &[4.0]);
    }

    #[test]
    fn mse_gradient() {
        let mut tape = Tape::new();
        let p = tape.param(0, Tensor::vector(vec![2.0, 4.0]));
        let t = tape.constant(Tensor::vector(vec![1.0, 1.0]));
        let loss = tape.mse(p, t);
        assert!((tape.value(loss).item() - 5.0).abs() < 1e-6); // (1 + 9)/2
        let g = tape.backward(loss);
        // d/dp mean((p-t)^2) = 2(p-t)/n
        assert_eq!(g.wrt(p).unwrap().data(), &[1.0, 3.0]);
    }

    /// Finite-difference validation of a two-layer network's gradients.
    #[test]
    fn finite_difference_agreement() {
        let w1v = Tensor::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);
        let b1v = Tensor::vector(vec![0.01, -0.02, 0.03]);
        let w2v = Tensor::from_vec(3, 1, vec![0.7, -0.8, 0.9]);
        let xv = Tensor::from_vec(2, 2, vec![1.0, 2.0, -1.0, 0.5]);
        let tv = Tensor::from_vec(2, 1, vec![0.3, -0.3]);

        let loss_fn = |w1: &Tensor, b1: &Tensor, w2: &Tensor| -> f32 {
            let mut tape = Tape::new();
            let x = tape.constant(xv.clone());
            let w1 = tape.param(0, w1.clone());
            let b1 = tape.param(1, b1.clone());
            let w2 = tape.param(2, w2.clone());
            let t = tape.constant(tv.clone());
            let h = tape.matmul(x, w1);
            let h = tape.add_bias(h, b1);
            let h = tape.tanh(h);
            let y = tape.matmul(h, w2);
            let loss = tape.mse(y, t);
            tape.value(loss).item()
        };

        // Analytic grads.
        let mut tape = Tape::new();
        let x = tape.constant(xv.clone());
        let w1 = tape.param(0, w1v.clone());
        let b1 = tape.param(1, b1v.clone());
        let w2 = tape.param(2, w2v.clone());
        let t = tape.constant(tv.clone());
        let h = tape.matmul(x, w1);
        let h = tape.add_bias(h, b1);
        let h = tape.tanh(h);
        let y = tape.matmul(h, w2);
        let loss = tape.mse(y, t);
        let g = tape.backward(loss);

        let eps = 1e-3f32;
        // Check a few coordinates of each parameter.
        for (pid, tensor) in [(0usize, &w1v), (1, &b1v), (2, &w2v)] {
            let analytic = match pid {
                0 => g.wrt(w1).unwrap(),
                1 => g.wrt(b1).unwrap(),
                _ => g.wrt(w2).unwrap(),
            };
            for idx in 0..tensor.len().min(4) {
                let mut plus = tensor.clone();
                plus.data_mut()[idx] += eps;
                let mut minus = tensor.clone();
                minus.data_mut()[idx] -= eps;
                let (lp, lm) = match pid {
                    0 => (loss_fn(&plus, &b1v, &w2v), loss_fn(&minus, &b1v, &w2v)),
                    1 => (loss_fn(&w1v, &plus, &w2v), loss_fn(&w1v, &minus, &w2v)),
                    _ => (loss_fn(&w1v, &b1v, &plus), loss_fn(&w1v, &b1v, &minus)),
                };
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic.data()[idx];
                assert!(
                    (numeric - a).abs() < 2e-2 * (1.0 + a.abs()),
                    "param {pid}[{idx}]: numeric {numeric} vs analytic {a}"
                );
            }
        }
    }

    #[test]
    fn clamp_blocks_gradient_outside_range() {
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::vector(vec![-2.0, 0.5, 2.0]));
        let y = tape.clamp(x, -1.0, 1.0);
        let s = tape.sum(y);
        let g = tape.backward(s);
        assert_eq!(g.wrt(x).unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn exp_and_sigmoid_grads() {
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::vector(vec![0.0]));
        let e = tape.exp(x);
        let s = tape.sum(e);
        let g = tape.backward(s);
        assert_eq!(g.wrt(x).unwrap().data(), &[1.0]);

        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::vector(vec![0.0]));
        let y = tape.sigmoid(x);
        let s = tape.sum(y);
        let g = tape.backward(s);
        assert!((g.wrt(x).unwrap().data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn minimum_routes_gradient_to_smaller_side() {
        let mut tape = Tape::new();
        let a = tape.param(0, Tensor::vector(vec![1.0, 5.0]));
        let b = tape.param(1, Tensor::vector(vec![2.0, 3.0]));
        let m = tape.minimum(a, b);
        assert_eq!(tape.value(m).data(), &[1.0, 3.0]);
        let s = tape.sum(m);
        let g = tape.backward(s);
        assert_eq!(g.wrt(a).unwrap().data(), &[1.0, 0.0]);
        assert_eq!(g.wrt(b).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn backward_from_matrix_panics() {
        let mut tape = Tape::new();
        let x = tape.param(0, Tensor::zeros(2, 2));
        tape.backward(x);
    }

    struct Counter(RefCell<Vec<&'static str>>);
    impl OpSink for Counter {
        fn on_op(&self, name: &'static str, _flops: f64) {
            self.0.borrow_mut().push(name);
        }
    }

    #[test]
    fn sink_sees_forward_and_backward_ops() {
        let counter = Counter(RefCell::new(Vec::new()));
        let mut tape = Tape::with_sink(&counter);
        let x = tape.param(0, Tensor::vector(vec![1.0]));
        let y = tape.mul(x, x);
        let _ = tape.backward(y);
        let seen = counter.0.borrow();
        assert_eq!(seen.as_slice(), &["mul", "grad_mul"]);
    }

    #[test]
    fn params_iterator_routes_store_indices() {
        let mut tape = Tape::new();
        let a = tape.param(7, Tensor::vector(vec![1.0]));
        let b = tape.param(9, Tensor::vector(vec![2.0]));
        let y = tape.mul(a, b);
        let g = tape.backward(y);
        let mut got: Vec<(usize, f32)> = g.params().map(|(pid, t)| (pid, t.data()[0])).collect();
        got.sort_by_key(|&(pid, _)| pid);
        assert_eq!(got, vec![(7, 2.0), (9, 1.0)]);
    }
}
