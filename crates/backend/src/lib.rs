//! # rlscope-backend — tensor engine, autograd, and execution models
//!
//! A stand-in for the TensorFlow / PyTorch backends the RL-Scope paper
//! profiles. The numerics are real (dense f32 tensors, reverse-mode
//! autodiff, Adam); the *dispatch* is modelled on the virtual-time
//! substrate of [`rlscope_sim`], reproducing the structural differences
//! between the Graph, Eager, and Autograph execution models that the
//! paper's framework case study (§4.1) measures:
//!
//! * per-op vs per-step Python→Backend transitions,
//! * backend scheduling cost differences,
//! * TensorFlow-Eager's extra administrative calls (F.3),
//! * the Autograph inference anomaly (F.6),
//! * the MPI-friendly, GPU-unfriendly Adam of stable-baselines DDPG (F.4).
//!
//! ```
//! use rlscope_backend::prelude::*;
//! use rlscope_sim::{VirtualClock, CudaContext, CudaCostConfig, GpuDevice};
//! use rlscope_sim::python::{PyCostConfig, PyRuntime};
//! use std::cell::RefCell;
//! use std::rc::Rc;
//!
//! let clock = VirtualClock::new();
//! let py = Rc::new(RefCell::new(PyRuntime::new(clock.clone(), PyCostConfig::default())));
//! let cuda = Rc::new(RefCell::new(CudaContext::new(
//!     clock, GpuDevice::new(1), CudaCostConfig::default())));
//! let stream = cuda.borrow().default_stream();
//! let exec = Executor::new(
//!     BackendKind::PyTorch, ExecModel::Eager, py, cuda.clone(),
//!     OpCostModel::for_config(BackendKind::PyTorch, ExecModel::Eager), stream);
//!
//! let out = exec.run(RunKind::Inference, |tape| {
//!     let x = tape.constant(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
//!     let w = tape.param(0, Tensor::from_vec(2, 1, vec![0.5, 0.25]));
//!     let y = tape.matmul(x, w);
//!     tape.value(y).item()
//! });
//! assert_eq!(out, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
pub mod nn;
pub mod optim;
pub mod tape;
pub mod tensor;

/// Convenient glob-import of the most-used types.
pub mod prelude {
    pub use crate::exec::{BackendKind, ExecModel, Executor, OpCostModel, RunKind};
    pub use crate::nn::{Activation, Mlp, Params};
    pub use crate::optim::{Adam, MpiAdam, Optimizer, Sgd};
    pub use crate::tape::{Gradients, OpSink, Tape, VarId};
    pub use crate::tensor::Tensor;
}

pub use exec::{BackendKind, ExecModel, Executor, OpCostModel, RunKind};
pub use nn::{Activation, Mlp, Params};
pub use optim::{Adam, MpiAdam, Optimizer, Sgd};
pub use tape::{Gradients, Tape, VarId};
pub use tensor::Tensor;
