//! Optimizers: SGD, Adam, and the MPI-friendly-but-GPU-unfriendly Adam.
//!
//! `MpiAdam` reproduces the stable-baselines DDPG quirk the paper isolates
//! in finding F.4: an optimizer written for MPI-parallel training that
//! round-trips parameters and gradients through the CPU (device→host copy,
//! NumPy update in Python, host→device copy) on *every* step — even during
//! single-node training — inflating backpropagation 3.7× relative to an
//! in-graph optimizer.

use crate::exec::Executor;
use crate::nn::Params;
use crate::tape::Gradients;
use crate::tensor::Tensor;
use rlscope_sim::gpu::MemcpyDir;
use rlscope_sim::time::DurationNs;
use std::collections::HashMap;
use std::fmt;

/// A gradient-based parameter optimizer.
pub trait Optimizer {
    /// Applies `grads` to `params`. When `exec` is provided, the step
    /// charges its execution costs (kernels, copies) through it.
    fn step(&mut self, params: &mut Params, grads: &Gradients, exec: Option<&Executor>);

    /// Optimizer name, for reports.
    fn name(&self) -> &'static str;
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, grads: &Gradients, exec: Option<&Executor>) {
        for (pid, grad) in grads.params() {
            let t = params.get_mut(pid);
            for (w, &g) in t.data_mut().iter_mut().zip(grad.data()) {
                *w -= self.lr * g;
            }
            if let Some(ex) = exec {
                ex.kernel("sgd_apply", t.len() as f64 * 2.0);
            }
        }
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Adam (Kingma & Ba) with in-backend (GPU-resident) state.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: HashMap<usize, Tensor>,
    v: HashMap<usize, Tensor>,
}

impl fmt::Debug for Adam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Adam").field("lr", &self.lr).field("t", &self.t).finish_non_exhaustive()
    }
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999) and eps 1e-8.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: HashMap::new(), v: HashMap::new() }
    }

    fn apply_math(&mut self, params: &mut Params, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (pid, grad) in grads.params() {
            let tensor = params.get_mut(pid);
            let m = self
                .m
                .entry(pid)
                .or_insert_with(|| Tensor::full(tensor.rows(), tensor.cols(), 0.0));
            let v = self
                .v
                .entry(pid)
                .or_insert_with(|| Tensor::full(tensor.rows(), tensor.cols(), 0.0));
            for i in 0..tensor.len() {
                let g = grad.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * g;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * g * g;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                tensor.data_mut()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, grads: &Gradients, exec: Option<&Executor>) {
        // Kernel charges first (they only need shapes), then the math.
        if let Some(ex) = exec {
            let updated: Vec<(usize, usize)> =
                grads.params().map(|(pid, g)| (pid, g.len())).collect();
            ex.backend_call(|ex| {
                for (_pid, len) in &updated {
                    // Fused m/v/apply updates: three kernels per tensor.
                    ex.kernel("adam_m", *len as f64 * 2.0);
                    ex.kernel("adam_v", *len as f64 * 3.0);
                    ex.kernel("adam_apply", *len as f64 * 5.0);
                }
            });
        }
        self.apply_math(params, grads);
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

/// The MPI-friendly Adam of stable-baselines DDPG (finding F.4).
///
/// Identical math to [`Adam`], but executed the way the original Python
/// implementation does it: fetch flat gradients and parameters to the host
/// (device→host copies + stream sync), run the update in Python/NumPy
/// (pure Python time), then write parameters back (host→device copy plus
/// one assign kernel per tensor) — each side in its own backend call.
pub struct MpiAdam {
    inner: Adam,
    /// Python/NumPy cost per parameter element for the host-side update.
    pub python_ns_per_elem: f64,
    /// Fixed Python orchestration cost per step.
    pub python_base: DurationNs,
}

impl fmt::Debug for MpiAdam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MpiAdam").field("inner", &self.inner).finish_non_exhaustive()
    }
}

impl MpiAdam {
    /// Creates an MPI-style Adam with the given learning rate.
    pub fn new(lr: f32) -> Self {
        MpiAdam {
            inner: Adam::new(lr),
            python_ns_per_elem: 2.0,
            python_base: DurationNs::from_micros(100),
        }
    }
}

impl Optimizer for MpiAdam {
    fn step(&mut self, params: &mut Params, grads: &Gradients, exec: Option<&Executor>) {
        if let Some(ex) = exec {
            // The stable-baselines implementation keeps one MpiAdam *per
            // parameter group* and round-trips each tensor through the CPU
            // in its own pair of backend calls — the "overly abstracted"
            // pattern finding F.4 pins the 3.7x backprop inflation on.
            let updated: Vec<(usize, u64, usize)> =
                grads.params().map(|(pid, g)| (pid, g.byte_size(), g.len())).collect();
            for (_pid, bytes, len) in &updated {
                // (1) getflat: fetch this tensor's gradient and value.
                ex.backend_call(|ex| {
                    ex.memcpy(MemcpyDir::DeviceToHost, *bytes); // grad
                    ex.memcpy(MemcpyDir::DeviceToHost, *bytes); // param
                    ex.sync();
                });
                // (2) NumPy Adam update on the CPU, in Python.
                ex.python(
                    self.python_base
                        + DurationNs::from_secs_f64(self.python_ns_per_elem * *len as f64 / 1e9),
                );
                // (3) setfromflat: write the tensor back and assign.
                ex.backend_call(|ex| {
                    ex.memcpy(MemcpyDir::HostToDevice, *bytes);
                    ex.kernel("assign", *len as f64);
                });
            }
        }
        self.inner.apply_math(params, grads);
    }

    fn name(&self) -> &'static str {
        "mpi_adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{BackendKind, ExecModel, OpCostModel, RunKind};
    use crate::nn::{Activation, Mlp};
    use crate::tape::Tape;
    use rlscope_sim::cuda::{CudaContext, CudaCostConfig};
    use rlscope_sim::gpu::GpuDevice;
    use rlscope_sim::hooks::NativeLib;
    use rlscope_sim::python::{PyCostConfig, PyRuntime};
    use rlscope_sim::rng::SimRng;
    use rlscope_sim::VirtualClock;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn quadratic_grads(params: &Params) -> (Tape<'static>, Gradients) {
        // loss = mean((w - 3)^2), so optimum at w = 3.
        let mut tape = Tape::new();
        let w = tape.param(0, params.get(0).clone());
        let t = tape.constant(Tensor::full(1, 4, 3.0));
        let loss = tape.mse(w, t);
        let g = tape.backward(loss);
        (tape, g)
    }

    #[test]
    fn sgd_moves_toward_target() {
        let mut p = Params::new();
        p.add("w", Tensor::full(1, 4, 0.0));
        let mut opt = Sgd::new(0.5);
        for _ in 0..50 {
            let (_t, g) = quadratic_grads(&p);
            opt.step(&mut p, &g, None);
        }
        assert!(p.get(0).data().iter().all(|w| (w - 3.0).abs() < 1e-3));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Params::new();
        p.add("w", Tensor::full(1, 4, 0.0));
        let mut opt = Adam::new(0.2);
        for _ in 0..200 {
            let (_t, g) = quadratic_grads(&p);
            opt.step(&mut p, &g, None);
        }
        assert!(p.get(0).data().iter().all(|w| (w - 3.0).abs() < 1e-2), "{:?}", p.get(0));
    }

    #[test]
    fn adam_and_mpi_adam_compute_identical_updates() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut pa = Params::new();
        let mlp =
            Mlp::new(&mut pa, &mut rng, "f", &[2, 4, 1], Activation::Tanh, Activation::Linear);
        let mut pb = pa.clone();
        let mut a = Adam::new(0.01);
        let mut b = MpiAdam::new(0.01);
        for _ in 0..5 {
            let grads_of = |params: &Params| {
                let mut tape = Tape::new();
                let x = tape.constant(Tensor::from_vec(3, 2, vec![0.5; 6]));
                let t = tape.constant(Tensor::from_vec(3, 1, vec![1.0; 3]));
                let y = mlp.forward(&mut tape, params, x);
                let loss = tape.mse(y, t);
                tape.backward(loss)
            };
            let ga = grads_of(&pa);
            let gb = grads_of(&pb);
            a.step(&mut pa, &ga, None);
            b.step(&mut pb, &gb, None);
        }
        assert_eq!(pa, pb);
    }

    fn executor() -> (Executor, Rc<RefCell<PyRuntime>>, Rc<RefCell<CudaContext>>) {
        let clock = VirtualClock::new();
        let py = Rc::new(RefCell::new(PyRuntime::new(clock.clone(), PyCostConfig::default())));
        let cuda = Rc::new(RefCell::new(CudaContext::new(
            clock,
            GpuDevice::new(1),
            CudaCostConfig::default(),
        )));
        let stream = cuda.borrow().default_stream();
        let exec = Executor::new(
            BackendKind::TensorFlow,
            ExecModel::Graph,
            py.clone(),
            cuda.clone(),
            OpCostModel::for_config(BackendKind::TensorFlow, ExecModel::Graph),
            stream,
        );
        (exec, py, cuda)
    }

    #[test]
    fn mpi_adam_round_trips_through_cpu() {
        let (exec, py, cuda) = executor();
        let mut p = Params::new();
        p.add("w", Tensor::full(8, 8, 0.0));
        let g = {
            let mut tape = Tape::new();
            let w = tape.param(0, p.get(0).clone());
            let t = tape.constant(Tensor::full(8, 8, 1.0));
            let loss = tape.mse(w, t);
            tape.backward(loss)
        };

        let before = cuda.borrow().counts();
        let tr_before = py.borrow().transition_count(NativeLib::Backend);
        let mut opt = MpiAdam::new(0.01);
        opt.step(&mut p, &g, Some(&exec));
        let after = cuda.borrow().counts();
        let tr_after = py.borrow().transition_count(NativeLib::Backend);

        // Two D2H + one H2D copies, a sync, an assign kernel, and two extra
        // backend transitions: the GPU-unfriendly signature of F.4.
        assert_eq!(after.memcpys - before.memcpys, 3);
        assert!(after.syncs > before.syncs);
        assert!(after.launches > before.launches);
        assert_eq!(tr_after - tr_before, 2);
    }

    #[test]
    fn gpu_adam_stays_on_device() {
        let (exec, _py, cuda) = executor();
        let mut p = Params::new();
        p.add("w", Tensor::full(8, 8, 0.0));
        let g = {
            let mut tape = Tape::new();
            let w = tape.param(0, p.get(0).clone());
            let t = tape.constant(Tensor::full(8, 8, 1.0));
            let loss = tape.mse(w, t);
            tape.backward(loss)
        };
        let before = cuda.borrow().counts();
        let mut opt = Adam::new(0.01);
        opt.step(&mut p, &g, Some(&exec));
        let after = cuda.borrow().counts();
        assert_eq!(after.memcpys, before.memcpys);
        assert_eq!(after.launches - before.launches, 3);
    }

    #[test]
    fn optimizer_inside_graph_run_does_not_retransition() {
        let (exec, py, _cuda) = executor();
        let mut p = Params::new();
        p.add("w", Tensor::full(2, 2, 0.0));
        exec.run(RunKind::Backprop, |tape| {
            let w = tape.param(0, p.get(0).clone());
            let t = tape.constant(Tensor::full(2, 2, 1.0));
            let loss = tape.mse(w, t);
            let g = tape.backward(loss);
            let mut opt = Adam::new(0.01);
            opt.step(&mut p, &g, Some(&exec));
        });
        // Everything happened inside one session.run transition.
        assert_eq!(py.borrow().transition_count(NativeLib::Backend), 1);
    }

    #[test]
    fn names() {
        assert_eq!(Sgd::new(0.1).name(), "sgd");
        assert_eq!(Adam::new(0.1).name(), "adam");
        assert_eq!(MpiAdam::new(0.1).name(), "mpi_adam");
    }
}
