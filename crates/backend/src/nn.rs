//! Neural-network building blocks: the parameter store and MLPs.
//!
//! RL networks are small (the paper contrasts AlphaGoZero's 39 layers with
//! ResNet-152); the workloads here use the same 2–3 hidden-layer MLPs that
//! stable-baselines' tuned hyperparameters prescribe for continuous-control
//! tasks.

use crate::tape::{Tape, VarId};
use crate::tensor::Tensor;
use rlscope_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A flat store of named parameter tensors, indexed by stable ids.
///
/// The tape records parameter leaves by store index; gradients route back
/// through [`crate::tape::Gradients::params`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Params {
    tensors: Vec<Tensor>,
    names: Vec<String>,
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a parameter; returns its id.
    pub fn add(&mut self, name: impl Into<String>, t: Tensor) -> usize {
        self.tensors.push(t);
        self.names.push(name.into());
        self.tensors.len() - 1
    }

    /// The tensor for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: usize) -> &Tensor {
        &self.tensors[id]
    }

    /// Mutable tensor access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get_mut(&mut self, id: usize) -> &mut Tensor {
        &mut self.tensors[id]
    }

    /// The name of parameter `id`.
    pub fn name(&self, id: usize) -> &str {
        &self.names[id]
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True if the store holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total scalar element count across all tensors.
    pub fn total_elems(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Total bytes across all tensors (for memcpy modelling).
    pub fn byte_size(&self) -> u64 {
        self.tensors.iter().map(Tensor::byte_size).sum()
    }

    /// Copies every tensor of `src` into this store (hard target-network
    /// update).
    ///
    /// # Panics
    ///
    /// Panics if the stores have different layouts.
    pub fn copy_from(&mut self, src: &Params) {
        assert_eq!(self.tensors.len(), src.tensors.len(), "param store layout mismatch");
        for (dst, s) in self.tensors.iter_mut().zip(&src.tensors) {
            assert_eq!(dst.len(), s.len(), "param tensor shape mismatch");
            dst.data_mut().copy_from_slice(s.data());
        }
    }

    /// Polyak (soft) target update: `dst = (1 - tau) * dst + tau * src`.
    ///
    /// # Panics
    ///
    /// Panics if the stores have different layouts or `tau ∉ [0, 1]`.
    pub fn soft_update_from(&mut self, src: &Params, tau: f32) {
        assert!((0.0..=1.0).contains(&tau), "tau {tau} outside [0,1]");
        assert_eq!(self.tensors.len(), src.tensors.len(), "param store layout mismatch");
        for (dst, s) in self.tensors.iter_mut().zip(&src.tensors) {
            for (d, &sv) in dst.data_mut().iter_mut().zip(s.data()) {
                *d = (1.0 - tau) * *d + tau * sv;
            }
        }
    }
}

/// Activation functions the MLP supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No activation (identity).
    Linear,
}

/// A multi-layer perceptron whose weights live in a [`Params`] store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    sizes: Vec<usize>,
    layers: Vec<(usize, usize)>, // (weight id, bias id)
    hidden: Activation,
    output: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer `sizes` (input first, output
    /// last), registering Xavier-initialized weights in `params`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new(
        params: &mut Params,
        rng: &mut SimRng,
        name: &str,
        sizes: &[usize],
        hidden: Activation,
        output: Activation,
    ) -> Self {
        assert!(sizes.len() >= 2, "MLP needs at least input and output sizes");
        let mut layers = Vec::new();
        for (i, w) in sizes.windows(2).enumerate() {
            let (fan_in, fan_out) = (w[0], w[1]);
            let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
            let data: Vec<f32> =
                (0..fan_in * fan_out).map(|_| rng.uniform_range(-bound, bound) as f32).collect();
            let wid = params.add(format!("{name}/w{i}"), Tensor::from_vec(fan_in, fan_out, data));
            let bid = params.add(format!("{name}/b{i}"), Tensor::vector(vec![0.0; fan_out]));
            layers.push((wid, bid));
        }
        Mlp { sizes: sizes.to_vec(), layers, hidden, output }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.sizes[0]
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        *self.sizes.last().unwrap()
    }

    /// Parameter ids (weights and biases) of this network.
    pub fn param_ids(&self) -> Vec<usize> {
        self.layers.iter().flat_map(|&(w, b)| [w, b]).collect()
    }

    /// Number of layers (weight matrices).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Records the forward pass on `tape`; weights enter as parameter
    /// leaves so gradients flow back to the store.
    pub fn forward(&self, tape: &mut Tape<'_>, params: &Params, x: VarId) -> VarId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, &(wid, bid)) in self.layers.iter().enumerate() {
            let w = tape.param(wid, params.get(wid).clone());
            let b = tape.param(bid, params.get(bid).clone());
            h = tape.matmul(h, w);
            h = tape.add_bias(h, b);
            let act = if i == last { self.output } else { self.hidden };
            h = match act {
                Activation::Relu => tape.relu(h),
                Activation::Tanh => tape.tanh(h),
                Activation::Linear => h,
            };
        }
        h
    }

    /// Convenience: forward on a throwaway tape, returning the output value
    /// (used for cheap action selection in tests).
    pub fn predict(&self, params: &Params, x: &Tensor) -> Tensor {
        let mut tape = Tape::new();
        let xin = tape.constant(x.clone());
        let out = self.forward(&mut tape, params, xin);
        tape.value(out).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(11)
    }

    #[test]
    fn mlp_registers_params_and_shapes() {
        let mut p = Params::new();
        let mlp =
            Mlp::new(&mut p, &mut rng(), "pi", &[4, 8, 2], Activation::Relu, Activation::Tanh);
        assert_eq!(p.len(), 4); // 2 weights + 2 biases
        assert_eq!(mlp.param_ids().len(), 4);
        assert_eq!(p.get(0).rows(), 4);
        assert_eq!(p.get(0).cols(), 8);
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 2);
        assert_eq!(mlp.layer_count(), 2);
    }

    #[test]
    fn forward_output_shape_and_bounds() {
        let mut p = Params::new();
        let mlp =
            Mlp::new(&mut p, &mut rng(), "pi", &[3, 16, 2], Activation::Relu, Activation::Tanh);
        let y = mlp.predict(&p, &Tensor::from_vec(5, 3, vec![0.1; 15]));
        assert_eq!(y.rows(), 5);
        assert_eq!(y.cols(), 2);
        // Tanh output head keeps values in (-1, 1).
        assert!(y.data().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        // Regression: fit y = 2x on a tiny MLP; loss must strictly drop.
        let mut p = Params::new();
        let mlp =
            Mlp::new(&mut p, &mut rng(), "f", &[1, 8, 1], Activation::Tanh, Activation::Linear);
        let x = Tensor::from_vec(4, 1, vec![-1.0, -0.5, 0.5, 1.0]);
        let t = x.map(|v| 2.0 * v);
        let mut losses = Vec::new();
        for _ in 0..200 {
            let mut tape = Tape::new();
            let xv = tape.constant(x.clone());
            let tv = tape.constant(t.clone());
            let y = mlp.forward(&mut tape, &p, xv);
            let loss = tape.mse(y, tv);
            losses.push(tape.value(loss).item());
            let g = tape.backward(loss);
            for (pid, grad) in g.params() {
                let lr = 0.1;
                let tensor = p.get_mut(pid);
                for (w, &gv) in tensor.data_mut().iter_mut().zip(grad.data()) {
                    *w -= lr * gv;
                }
            }
        }
        assert!(losses[199] < 0.05 * losses[0], "loss did not converge: {losses:?}");
    }

    #[test]
    fn soft_update_interpolates() {
        let mut a = Params::new();
        a.add("w", Tensor::vector(vec![0.0, 0.0]));
        let mut b = Params::new();
        b.add("w", Tensor::vector(vec![1.0, 2.0]));
        a.soft_update_from(&b, 0.25);
        assert_eq!(a.get(0).data(), &[0.25, 0.5]);
        a.copy_from(&b);
        assert_eq!(a.get(0).data(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn copy_from_layout_mismatch_panics() {
        let mut a = Params::new();
        a.add("w", Tensor::vector(vec![0.0]));
        let b = Params::new();
        a.copy_from(&b);
    }

    #[test]
    fn byte_size_and_elems() {
        let mut p = Params::new();
        p.add("w", Tensor::zeros(2, 3));
        p.add("b", Tensor::vector(vec![0.0; 3]));
        assert_eq!(p.total_elems(), 9);
        assert_eq!(p.byte_size(), 36);
        assert_eq!(p.name(1), "b");
    }
}
