//! Execution models: how ops are dispatched through the stack.
//!
//! The paper's framework case study (§4.1) compares four ⟨execution model,
//! ML backend⟩ configurations. The *math* is identical; what differs is
//! dispatch:
//!
//! * **Graph** — the training step is declared once and executed by a
//!   single `session.run`: one Python→Backend transition per step, cheap
//!   per-op backend scheduling, one CUDA launch per op.
//! * **Eager** — every op is dispatched from Python: one Python→Backend
//!   transition *per op*, plus Python dispatch overhead per op, plus
//!   (TensorFlow only) extra administrative backend calls per op, which is
//!   what makes TF Eager slower than PyTorch Eager (F.3).
//! * **Autograph** — like Graph, with high-level control flow compiled
//!   in-graph; also carries the inference-time backend anomaly the paper
//!   isolates in F.6.
//!
//! The [`Executor`] implements [`OpSink`]; every tape op flows through it
//! and is charged against the virtual clock and the virtual GPU.

use crate::tape::{OpSink, Tape};
use crate::tensor::Tensor;
use rlscope_sim::cost::LinearCost;
use rlscope_sim::cuda::CudaContext;
use rlscope_sim::gpu::{KernelDesc, MemcpyDir};
use rlscope_sim::hooks::NativeLib;
use rlscope_sim::ids::StreamId;
use rlscope_sim::python::PyRuntime;
use rlscope_sim::time::DurationNs;
use rlscope_sim::VirtualClock;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// The ML backend a workload builds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendKind {
    /// TensorFlow 2.2-style backend.
    TensorFlow,
    /// PyTorch 1.6-style backend.
    PyTorch,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::TensorFlow => write!(f, "TensorFlow"),
            BackendKind::PyTorch => write!(f, "PyTorch"),
        }
    }
}

/// The execution model in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecModel {
    /// Declared-graph execution (TensorFlow 1.x style `session.run`).
    Graph,
    /// Traced/compiled eager code (`tf.function` Autograph).
    Autograph,
    /// Op-by-op dispatch from the high-level language.
    Eager,
}

impl fmt::Display for ExecModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecModel::Graph => write!(f, "Graph"),
            ExecModel::Autograph => write!(f, "Autograph"),
            ExecModel::Eager => write!(f, "Eager"),
        }
    }
}

/// What kind of logical run a `session`-level invocation is; used both for
/// the Autograph inference anomaly (F.6) and for experiment attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunKind {
    /// Forward-only action selection.
    Inference,
    /// Forward + backward + (possibly) parameter update.
    Backprop,
    /// In-graph data-collection loop body (Autograph drivers).
    SimLoop,
    /// Anything else.
    Other,
}

/// Dispatch cost model for one ⟨backend, execution model⟩ configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpCostModel {
    /// Backend CPU cost per op under Graph/Autograph scheduling.
    pub graph_op_cpu: LinearCost,
    /// Backend CPU cost per op under Eager dispatch (higher: no graph-level
    /// optimization, per-op allocation and shape inference).
    pub eager_op_cpu: LinearCost,
    /// Python-side cost per op in Eager mode (interpreting the op call).
    pub eager_python_dispatch: DurationNs,
    /// Extra administrative Python→Backend calls per op in Eager mode
    /// (shape/dtype bookkeeping). TensorFlow Eager ≫ PyTorch Eager — this
    /// is the transition-count difference behind F.3.
    pub eager_admin_calls: u32,
    /// Backend CPU cost of each administrative call.
    pub admin_call_cpu: DurationNs,
    /// GPU kernel duration as a function of FLOPs.
    pub kernel: LinearCost,
    /// Fixed CPU cost of entering a Graph/Autograph session run.
    pub session_entry_cpu: DurationNs,
    /// Backend-time inflation factor applied to ops inside
    /// [`RunKind::Inference`] runs under Autograph — the performance
    /// anomaly of finding F.6 (3.8–4.4× in the paper).
    pub autograph_inference_backend_inflation: f64,
}

impl OpCostModel {
    /// A calibrated-ish default for a ⟨backend, model⟩ pair. Workloads may
    /// override fields; these defaults produce the paper's orderings.
    pub fn for_config(kind: BackendKind, model: ExecModel) -> Self {
        let mut cost = OpCostModel {
            graph_op_cpu: LinearCost::new(DurationNs::from_nanos(3_200), 1.0e-4),
            eager_op_cpu: LinearCost::new(DurationNs::from_nanos(9_000), 1.5e-4),
            eager_python_dispatch: DurationNs::from_nanos(6_000),
            eager_admin_calls: 0,
            admin_call_cpu: DurationNs::from_nanos(2_200),
            kernel: LinearCost::new(DurationNs::from_nanos(1_400), 5.0e-4),
            session_entry_cpu: DurationNs::from_micros(22),
            autograph_inference_backend_inflation: 1.0,
        };
        match (kind, model) {
            (BackendKind::TensorFlow, ExecModel::Eager) => {
                // TF Eager: more transitions (admin calls) and costlier
                // per-op dispatch than PyTorch Eager (F.3).
                cost.eager_admin_calls = 2;
                cost.eager_python_dispatch = DurationNs::from_nanos(16_000);
                cost.eager_op_cpu = LinearCost::new(DurationNs::from_nanos(20_000), 1.5e-4);
                cost.admin_call_cpu = DurationNs::from_nanos(3_500);
            }
            (BackendKind::PyTorch, ExecModel::Eager) => {
                cost.eager_admin_calls = 0;
                cost.eager_python_dispatch = DurationNs::from_nanos(6_000);
                cost.eager_op_cpu = LinearCost::new(DurationNs::from_nanos(8_000), 1.2e-4);
            }
            (_, ExecModel::Autograph) => {
                cost.autograph_inference_backend_inflation = 4.0;
            }
            _ => {}
        }
        cost
    }
}

/// The stack-facing executor for one simulated process.
///
/// Owns shared handles to the Python runtime and CUDA context; implements
/// [`OpSink`] so tapes report every primitive op through it.
pub struct Executor {
    kind: BackendKind,
    model: ExecModel,
    py: Rc<RefCell<PyRuntime>>,
    cuda: Rc<RefCell<CudaContext>>,
    cost: OpCostModel,
    stream: StreamId,
    clock: VirtualClock,
    current_kind: Cell<RunKind>,
    in_backend: Cell<bool>,
    ops_executed: Cell<u64>,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("kind", &self.kind)
            .field("model", &self.model)
            .field("ops_executed", &self.ops_executed.get())
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// Creates an executor for one ⟨backend, model⟩ configuration.
    pub fn new(
        kind: BackendKind,
        model: ExecModel,
        py: Rc<RefCell<PyRuntime>>,
        cuda: Rc<RefCell<CudaContext>>,
        cost: OpCostModel,
        stream: StreamId,
    ) -> Self {
        let clock = cuda.borrow().clock().clone();
        Executor {
            kind,
            model,
            py,
            cuda,
            cost,
            stream,
            clock,
            current_kind: Cell::new(RunKind::Other),
            in_backend: Cell::new(false),
            ops_executed: Cell::new(0),
        }
    }

    /// The backend kind.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// The execution model.
    pub fn model(&self) -> ExecModel {
        self.model
    }

    /// The cost model in effect.
    pub fn cost(&self) -> &OpCostModel {
        &self.cost
    }

    /// The virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The GPU stream this executor launches on.
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Total primitive ops executed so far.
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed.get()
    }

    /// Runs a logical backend invocation, dispatching per the execution
    /// model. In Graph/Autograph this is one Python→Backend transition; in
    /// Eager the closure runs in Python context and each tape op performs
    /// its own transition(s).
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from inside another `run` (real
    /// backends would deadlock or error similarly).
    pub fn run<R>(&self, kind: RunKind, f: impl FnOnce(&mut Tape<'_>) -> R) -> R {
        assert!(!self.in_backend.get(), "re-entrant Executor::run");
        self.current_kind.set(kind);
        match self.model {
            ExecModel::Graph | ExecModel::Autograph => {
                let mut py = self.py.borrow_mut();
                self.in_backend.set(true);
                let out = py.call_native(NativeLib::Backend, || {
                    self.clock.advance(self.cost.session_entry_cpu);
                    let mut tape = Tape::with_sink(self);
                    f(&mut tape)
                });
                self.in_backend.set(false);
                out
            }
            ExecModel::Eager => {
                let mut tape = Tape::with_sink(self);
                f(&mut tape)
            }
        }
    }

    /// Executes raw backend work (memcpys, ad-hoc kernels) as its own
    /// Python→Backend call when not already inside one.
    pub fn backend_call<R>(&self, f: impl FnOnce(&Executor) -> R) -> R {
        if self.in_backend.get() {
            f(self)
        } else {
            let mut py = self.py.borrow_mut();
            self.in_backend.set(true);
            let out = py.call_native(NativeLib::Backend, || f(self));
            self.in_backend.set(false);
            out
        }
    }

    /// Calls into the simulator library (environment step/reset).
    ///
    /// # Panics
    ///
    /// Panics if invoked from inside a backend call.
    pub fn call_simulator<R>(&self, f: impl FnOnce() -> R) -> R {
        assert!(!self.in_backend.get(), "simulator call from inside backend");
        self.py.borrow_mut().call_native(NativeLib::Simulator, f)
    }

    /// Executes pure Python work.
    ///
    /// # Panics
    ///
    /// Panics if invoked from inside a backend call.
    pub fn python(&self, cost: DurationNs) {
        assert!(!self.in_backend.get(), "python() from inside backend");
        self.py.borrow().exec(cost);
    }

    /// Launches an ad-hoc kernel (optimizer updates, assigns). Must be used
    /// inside a [`Executor::backend_call`] or [`Executor::run`] context, or
    /// it will be charged without a surrounding backend interval.
    pub fn kernel(&self, name: &'static str, flops: f64) {
        let dur = self.cost.kernel.eval(flops);
        self.cuda.borrow_mut().launch_kernel(self.stream, KernelDesc::new(name, dur));
    }

    /// Enqueues a device memcpy of `bytes`.
    pub fn memcpy(&self, dir: MemcpyDir, bytes: u64) {
        self.cuda.borrow_mut().memcpy_async(self.stream, dir, bytes);
    }

    /// Blocks until this executor's stream drains (fetching results).
    pub fn sync(&self) {
        self.cuda.borrow_mut().stream_synchronize(self.stream);
    }

    /// Fetches a tensor's value to the host: D2H copy + stream sync, as its
    /// own backend call when needed.
    pub fn fetch(&self, t: &Tensor) -> Tensor {
        self.backend_call(|ex| {
            ex.memcpy(MemcpyDir::DeviceToHost, t.byte_size());
            ex.sync();
        });
        t.clone()
    }

    /// Feeds host data toward the device (H2D copy), e.g. a minibatch.
    pub fn feed(&self, bytes: u64) {
        self.backend_call(|ex| ex.memcpy(MemcpyDir::HostToDevice, bytes));
    }

    fn backend_op_cost(&self, flops: f64) -> DurationNs {
        match self.model {
            ExecModel::Graph => self.cost.graph_op_cpu.eval(flops),
            ExecModel::Autograph => {
                let base = self.cost.graph_op_cpu.eval(flops);
                if self.current_kind.get() == RunKind::Inference {
                    base.mul_f64(self.cost.autograph_inference_backend_inflation)
                } else {
                    base
                }
            }
            ExecModel::Eager => self.cost.eager_op_cpu.eval(flops),
        }
    }
}

impl OpSink for Executor {
    fn on_op(&self, name: &'static str, flops: f64) {
        self.ops_executed.set(self.ops_executed.get() + 1);
        let backend_cpu = self.backend_op_cost(flops);
        let kernel_dur = self.cost.kernel.eval(flops);
        match self.model {
            ExecModel::Graph | ExecModel::Autograph => {
                // Already inside the session's backend interval.
                self.clock.advance(backend_cpu);
                self.cuda
                    .borrow_mut()
                    .launch_kernel(self.stream, KernelDesc::new(name, kernel_dur));
            }
            ExecModel::Eager => {
                // Python interprets the op call...
                self.py.borrow().exec(self.cost.eager_python_dispatch);
                // ...then transitions into the backend for the op itself...
                self.in_backend.set(true);
                self.py.borrow_mut().call_native(NativeLib::Backend, || {
                    self.clock.advance(backend_cpu);
                    self.cuda
                        .borrow_mut()
                        .launch_kernel(self.stream, KernelDesc::new(name, kernel_dur));
                });
                // ...plus administrative calls (TF Eager's extra
                // transitions, F.3).
                for _ in 0..self.cost.eager_admin_calls {
                    self.py.borrow_mut().call_native(NativeLib::Backend, || {
                        self.clock.advance(self.cost.admin_call_cpu);
                    });
                }
                self.in_backend.set(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlscope_sim::cuda::CudaCostConfig;
    use rlscope_sim::gpu::GpuDevice;
    use rlscope_sim::python::PyCostConfig;

    fn make(
        kind: BackendKind,
        model: ExecModel,
    ) -> (Executor, Rc<RefCell<PyRuntime>>, Rc<RefCell<CudaContext>>) {
        let clock = VirtualClock::new();
        let py = Rc::new(RefCell::new(PyRuntime::new(clock.clone(), PyCostConfig::default())));
        let cuda = Rc::new(RefCell::new(CudaContext::new(
            clock,
            GpuDevice::new(1),
            CudaCostConfig::default(),
        )));
        let stream = cuda.borrow().default_stream();
        let cost = OpCostModel::for_config(kind, model);
        (Executor::new(kind, model, py.clone(), cuda.clone(), cost, stream), py, cuda)
    }

    fn tiny_step(exec: &Executor) {
        exec.run(RunKind::Backprop, |tape| {
            let x = tape.constant(Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
            let w = tape.param(0, Tensor::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]));
            let y = tape.matmul(x, w);
            let loss = tape.mean(y);
            let _ = tape.backward(loss);
        });
    }

    #[test]
    fn graph_mode_uses_one_backend_transition() {
        let (exec, py, _) = make(BackendKind::TensorFlow, ExecModel::Graph);
        tiny_step(&exec);
        assert_eq!(py.borrow().transition_count(NativeLib::Backend), 1);
    }

    #[test]
    fn eager_mode_transitions_per_op() {
        let (exec, py, _) = make(BackendKind::PyTorch, ExecModel::Eager);
        tiny_step(&exec);
        // 3 forward ops + 3 backward ops, one transition each (PyTorch: no
        // admin calls).
        assert_eq!(py.borrow().transition_count(NativeLib::Backend), exec.ops_executed());
        assert!(exec.ops_executed() >= 4);
    }

    #[test]
    fn tf_eager_makes_more_transitions_than_pytorch_eager() {
        let (tf, tf_py, _) = make(BackendKind::TensorFlow, ExecModel::Eager);
        let (pt, pt_py, _) = make(BackendKind::PyTorch, ExecModel::Eager);
        tiny_step(&tf);
        tiny_step(&pt);
        let tf_tr = tf_py.borrow().transition_count(NativeLib::Backend);
        let pt_tr = pt_py.borrow().transition_count(NativeLib::Backend);
        assert!(tf_tr >= 3 * pt_tr, "tf={tf_tr} pt={pt_tr}");
    }

    #[test]
    fn eager_is_slower_than_graph() {
        let (g, _, _) = make(BackendKind::TensorFlow, ExecModel::Graph);
        let (e, _, _) = make(BackendKind::TensorFlow, ExecModel::Eager);
        tiny_step(&g);
        tiny_step(&e);
        assert!(e.clock().now() > g.clock().now());
    }

    #[test]
    fn autograph_inference_inflation_applies() {
        let (a, _, _) = make(BackendKind::TensorFlow, ExecModel::Autograph);
        let before = a.clock().now();
        a.run(RunKind::Inference, |tape| {
            let x = tape.constant(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
            let w = tape.param(0, Tensor::from_vec(2, 2, vec![0.1; 4]));
            let _ = tape.matmul(x, w);
        });
        let inference_time = a.clock().now() - before;

        let (a2, _, _) = make(BackendKind::TensorFlow, ExecModel::Autograph);
        let before = a2.clock().now();
        a2.run(RunKind::Other, |tape| {
            let x = tape.constant(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
            let w = tape.param(0, Tensor::from_vec(2, 2, vec![0.1; 4]));
            let _ = tape.matmul(x, w);
        });
        let other_time = a2.clock().now() - before;
        assert!(inference_time > other_time, "{inference_time:?} <= {other_time:?}");
    }

    #[test]
    fn kernels_land_on_the_gpu() {
        let (exec, _, cuda) = make(BackendKind::TensorFlow, ExecModel::Graph);
        tiny_step(&exec);
        assert!(cuda.borrow().counts().launches >= 4);
        assert!(!cuda.borrow().device().busy_intervals().is_empty());
    }

    #[test]
    fn fetch_syncs_the_stream() {
        let (exec, _, cuda) = make(BackendKind::TensorFlow, ExecModel::Graph);
        tiny_step(&exec);
        let t = Tensor::zeros(4, 4);
        exec.fetch(&t);
        let c = cuda.borrow();
        assert!(c.counts().syncs >= 1);
        assert!(c.clock().now() >= c.device().device_idle_at());
    }

    #[test]
    #[should_panic(expected = "re-entrant")]
    fn reentrant_run_panics() {
        let (exec, _, _) = make(BackendKind::TensorFlow, ExecModel::Graph);
        exec.run(RunKind::Other, |_| {
            exec.run(RunKind::Other, |_| {});
        });
    }

    #[test]
    fn simulator_calls_route_through_python_runtime() {
        let (exec, py, _) = make(BackendKind::TensorFlow, ExecModel::Graph);
        let out = exec.call_simulator(|| 5);
        assert_eq!(out, 5);
        assert_eq!(py.borrow().transition_count(NativeLib::Simulator), 1);
    }
}
