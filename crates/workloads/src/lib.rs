//! # rlscope-workloads — the profiled workloads of the RL-Scope evaluation
//!
//! Wires the substrate ([`rlscope_sim`]), backend ([`rlscope_backend`]),
//! environments ([`rlscope_envs`]), algorithms ([`rlscope_rl`]) and the
//! profiler ([`rlscope_core`]) into the exact experiments of the paper:
//!
//! * [`frameworks`] — the ⟨execution model, ML backend⟩ matrix of Table 1;
//! * [`runner`] — the annotated inference/simulation/backpropagation
//!   training loop and reproducible [`runner::TrainSpec`]s;
//! * [`experiments`] — Figure 4 (framework comparison), Figure 5
//!   (algorithm survey), Figure 7 (simulator survey), §C.4 (correction
//!   ablation);
//! * [`calibration_suite`] — Figure 11 (correction-accuracy validation);
//! * [`minigo`] — the Figure 8 scale-up workload with 16 self-play
//!   workers and the `nvidia-smi` comparison.

// lint:allow(forbid-unsafe): membench's tracking allocator implements the unsafe GlobalAlloc trait; that one impl is `#[allow]`ed locally under `deny`.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adapter;
pub mod calibration_suite;
pub mod experiments;
pub mod frameworks;
pub mod membench;
pub mod minigo;
pub mod runner;
pub mod stack;

pub use calibration_suite::{fig11a, fig11b, validate_correction, BiasRow};
pub use experiments::{
    calibration_for, profile_spec, profile_spec_with, run_algorithm_survey,
    run_correction_ablation, run_framework_comparison, run_simulator_survey, ExperimentRun,
};
pub use frameworks::{table1, CollectCosts, FrameworkConfig};
pub use membench::{run_membench, MemBenchReport, TrackingAlloc};
pub use minigo::{run_minigo, MinigoConfig, MinigoResult};
pub use runner::{make_agent, make_env, run_annotated_loop, RunOutcome, ScaleConfig, TrainSpec};
pub use stack::Stack;
