//! The paper's case-study experiments: framework comparison (Figure 4),
//! algorithm survey (Figure 5), simulator survey (Figure 7), and the
//! effect of skipping correction (§C.4).

use crate::frameworks::{table1, FrameworkConfig, REAGENT};
use crate::runner::{ScaleConfig, TrainSpec};
use rlscope_core::analysis::Analysis;
use rlscope_core::calibrate::{calibrate, Calibration, RunStats};
use rlscope_core::correct::CorrectedProfile;
use rlscope_core::event::CpuCategory;
use rlscope_core::profiler::Toggles;
use rlscope_core::report::TransitionReport;
use rlscope_core::trace::Trace;
use rlscope_rl::AlgoKind;

/// One profiled framework/algorithm/simulator configuration.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// Human-readable label (framework, algorithm, or simulator name).
    pub label: String,
    /// The framework configuration used.
    pub framework: FrameworkConfig,
    /// The corrected profile.
    pub profile: CorrectedProfile,
    /// Per-operation transition counts.
    pub transitions: TransitionReport,
    /// The raw trace.
    pub trace: Trace,
}

impl ExperimentRun {
    /// Percent of total time in a CPU category.
    pub fn cpu_percent(&self, cat: CpuCategory) -> f64 {
        100.0 * self.profile.table.cpu_category_total(cat).ratio(self.profile.table.total())
    }

    /// Percent of total time with the GPU busy.
    pub fn gpu_percent(&self) -> f64 {
        100.0 * self.profile.table.gpu_total().ratio(self.profile.table.total())
    }

    /// Ratio of CUDA-API CPU time to GPU-busy time (finding F.8).
    pub fn cuda_over_gpu(&self) -> f64 {
        self.profile
            .table
            .cpu_category_total(CpuCategory::CudaApi)
            .ratio(self.profile.table.gpu_total())
    }

    /// Percent of total time in the simulator (finding F.10/F.12).
    pub fn simulation_percent(&self) -> f64 {
        self.cpu_percent(CpuCategory::Simulator)
    }

    /// The run's uncorrected per-phase breakdown
    /// (`Analysis::of(&trace).group_by([Dim::Phase])`) — a view the
    /// pre-`Analysis` pipeline could not produce.
    pub fn phase_report(&self) -> rlscope_core::report::MultiPhaseReport {
        rlscope_core::report::MultiPhaseReport::from_trace(&self.trace)
    }
}

/// Runs the full calibration protocol for a workload spec (five runs).
pub fn calibration_for(spec: &TrainSpec) -> Calibration {
    calibrate(&mut |toggles: Toggles| {
        let out = spec.run(Some(toggles));
        RunStats::from_trace(&out.trace.expect("profiled run has a trace"))
    })
}

/// Profiles one spec end-to-end: calibrate, run fully instrumented,
/// correct.
pub fn profile_spec(spec: &TrainSpec, label: impl Into<String>) -> ExperimentRun {
    let cal = calibration_for(spec);
    profile_spec_with(spec, label, &cal)
}

/// Profiles one spec with a pre-computed calibration (calibration "only
/// needs to be done once per workload", §3.4).
pub fn profile_spec_with(
    spec: &TrainSpec,
    label: impl Into<String>,
    cal: &Calibration,
) -> ExperimentRun {
    let out = spec.run(Some(Toggles::all()));
    let trace = out.trace.expect("profiled run has a trace");
    // Overhead correction runs inside the unified analysis pipeline.
    let profile =
        Analysis::of(&trace).corrected(cal).profile().expect("trace-backed analysis cannot fail");
    ExperimentRun {
        label: label.into(),
        framework: spec.framework,
        profile,
        transitions: TransitionReport::from_trace(&trace),
        trace,
    }
}

/// The framework rows compared for an algorithm: the paper's Figure 4a
/// (TD3) uses all four Table-1 rows; Figure 4b (DDPG) only the three
/// TensorFlow configurations (ReAgent ships no DDPG).
pub fn frameworks_for(algo: AlgoKind) -> Vec<FrameworkConfig> {
    match algo {
        AlgoKind::Ddpg => table1().into_iter().filter(|f| *f != REAGENT).collect(),
        _ => table1(),
    }
}

/// Figure 4: the framework comparison for one algorithm on Walker2D.
pub fn run_framework_comparison(
    algo: AlgoKind,
    steps: usize,
    scale: ScaleConfig,
) -> Vec<ExperimentRun> {
    frameworks_for(algo)
        .into_iter()
        .map(|fw| {
            let spec = TrainSpec { scale, ..TrainSpec::new(algo, "Walker2D", fw, steps) };
            profile_spec(&spec, fw.to_string())
        })
        .collect()
}

/// Figure 5: the algorithm survey on Walker2D (stable-baselines configs).
pub fn run_algorithm_survey(steps: usize, scale: ScaleConfig) -> Vec<ExperimentRun> {
    [AlgoKind::Ddpg, AlgoKind::Sac, AlgoKind::A2c, AlgoKind::Ppo2]
        .into_iter()
        .map(|algo| {
            let spec = TrainSpec {
                scale,
                ..TrainSpec::new(algo, "Walker2D", crate::frameworks::STABLE_BASELINES, steps)
            };
            profile_spec(&spec, algo.to_string())
        })
        .collect()
}

/// Per-environment tuned PPO hyperparameters `(n_steps, epochs,
/// minibatch)` used by the simulator survey — the paper notes the tuned
/// (PPO, Pong) and Walker2D configurations perform few gradient updates
/// relative to simulator invocations (Appendix B.1), which is what makes
/// their simulation share high.
pub fn ppo_tuning_for(env: &str) -> Option<(usize, usize, usize)> {
    match env {
        "Pong" => Some((48, 1, 48)),
        "Hopper" => Some((12, 1, 12)),
        "Ant" => Some((12, 2, 12)),
        "HalfCheetah" => Some((8, 4, 8)),
        _ => None,
    }
}

/// Figure 7: the simulator survey with PPO2.
pub fn run_simulator_survey(steps: usize, scale: ScaleConfig) -> Vec<ExperimentRun> {
    ["AirLearning", "Ant", "HalfCheetah", "Hopper", "Pong", "Walker2D"]
        .into_iter()
        .map(|env| {
            let spec = TrainSpec {
                scale: ScaleConfig { ppo: ppo_tuning_for(env), ..scale },
                ..TrainSpec::new(AlgoKind::Ppo2, env, crate::frameworks::STABLE_BASELINES, steps)
            };
            profile_spec(&spec, env.to_string())
        })
        .collect()
}

/// §C.4: the same trace analyzed with and without overhead correction.
/// Returns `(corrected, uncorrected)` profiles of one fully instrumented
/// run.
pub fn run_correction_ablation(spec: &TrainSpec) -> (CorrectedProfile, CorrectedProfile) {
    let cal = calibration_for(spec);
    let out = spec.run(Some(Toggles::all()));
    let trace = out.trace.expect("profiled run has a trace");
    let corrected =
        Analysis::of(&trace).corrected(&cal).profile().expect("trace-backed analysis cannot fail");
    let raw = Analysis::of(&trace).profile().expect("trace-backed analysis cannot fail");
    (corrected, raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frameworks::STABLE_BASELINES;

    fn tiny_scale() -> ScaleConfig {
        ScaleConfig { hidden: 8, batch: 4, freq_div: 25, ppo: None }
    }

    #[test]
    fn ddpg_comparison_skips_reagent() {
        let fws = frameworks_for(AlgoKind::Ddpg);
        assert_eq!(fws.len(), 3);
        assert!(fws.iter().all(|f| *f != REAGENT));
        assert_eq!(frameworks_for(AlgoKind::Td3).len(), 4);
    }

    #[test]
    fn profile_spec_produces_consistent_run() {
        let spec = TrainSpec {
            scale: tiny_scale(),
            ..TrainSpec::new(AlgoKind::Ddpg, "Walker2D", STABLE_BASELINES, 60)
        };
        let run = profile_spec(&spec, "test");
        assert!(run.profile.corrected_total < run.profile.instrumented_total);
        assert!(run.gpu_percent() > 0.0);
        assert!(run.simulation_percent() > 0.0);
        // RL workloads: CUDA API time exceeds GPU time (F.8 shape).
        assert!(run.cuda_over_gpu() > 1.0, "cuda/gpu = {}", run.cuda_over_gpu());
    }

    #[test]
    fn correction_ablation_shows_inflation() {
        let spec = TrainSpec {
            scale: tiny_scale(),
            ..TrainSpec::new(AlgoKind::Ddpg, "Walker2D", STABLE_BASELINES, 60)
        };
        let (corrected, raw) = run_correction_ablation(&spec);
        assert!(raw.corrected_total > corrected.corrected_total);
        assert!(raw.overhead.total().is_zero());
        assert!(!corrected.overhead.total().is_zero());
    }
}
