//! Assembling one simulated process's full software stack.

use rlscope_backend::prelude::*;
use rlscope_core::profiler::{Profiler, ProfilerConfig, Toggles};
use rlscope_sim::cuda::{CudaContext, CudaCostConfig};
use rlscope_sim::gpu::GpuDevice;
use rlscope_sim::ids::{ProcessId, StreamId};
use rlscope_sim::python::{PyCostConfig, PyRuntime};
use rlscope_sim::VirtualClock;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// One process's stack: virtual clock, Python runtime, CUDA context, and
/// the backend executor, all sharing the same timeline.
pub struct Stack {
    /// The process clock.
    pub clock: VirtualClock,
    /// The Python runtime.
    pub py: Rc<RefCell<PyRuntime>>,
    /// The CUDA context (owns the virtual GPU).
    pub cuda: Rc<RefCell<CudaContext>>,
    /// The backend executor.
    pub exec: Executor,
    /// The GPU stream this process launches on.
    pub stream: StreamId,
}

impl fmt::Debug for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack").field("now", &self.clock.now()).finish_non_exhaustive()
    }
}

impl Stack {
    /// Builds a stack for one ⟨backend, execution model⟩ configuration.
    pub fn new(kind: BackendKind, model: ExecModel) -> Self {
        Self::with_clock(kind, model, VirtualClock::new())
    }

    /// Builds a stack over an existing clock (worker processes forked at a
    /// later instant).
    pub fn with_clock(kind: BackendKind, model: ExecModel, clock: VirtualClock) -> Self {
        let py = Rc::new(RefCell::new(PyRuntime::new(clock.clone(), PyCostConfig::default())));
        let cuda = Rc::new(RefCell::new(CudaContext::new(
            clock.clone(),
            GpuDevice::new(1),
            CudaCostConfig::default(),
        )));
        let stream = cuda.borrow().default_stream();
        let exec = Executor::new(
            kind,
            model,
            py.clone(),
            cuda.clone(),
            OpCostModel::for_config(kind, model),
            stream,
        );
        Stack { clock, py, cuda, exec, stream }
    }

    /// Creates and attaches a profiler with the given toggles; returns it.
    pub fn profile(&self, pid: ProcessId, toggles: Toggles) -> Profiler {
        let config = ProfilerConfig { pid, toggles, ..ProfilerConfig::default() };
        let profiler = Profiler::new(self.clock.clone(), config);
        profiler.attach(&mut self.py.borrow_mut(), &mut self.cuda.borrow_mut());
        profiler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlscope_sim::time::DurationNs;

    #[test]
    fn stack_shares_one_clock() {
        let stack = Stack::new(BackendKind::TensorFlow, ExecModel::Graph);
        stack.py.borrow().exec(DurationNs::from_micros(3));
        assert_eq!(stack.clock.now().as_nanos(), 3_000);
        assert_eq!(stack.cuda.borrow().clock().now().as_nanos(), 3_000);
    }

    #[test]
    fn profile_attaches_hooks() {
        let stack = Stack::new(BackendKind::TensorFlow, ExecModel::Graph);
        let rls = stack.profile(ProcessId(0), Toggles::all());
        stack.py.borrow().exec(DurationNs::from_micros(1));
        let trace = rls.finish();
        assert_eq!(trace.events.len(), 1);
        assert!(stack.cuda.borrow().cupti_enabled());
    }
}
