//! Action-space adapters between algorithms and environments.

use rlscope_envs::{Action, ActionSpace, Environment, SimComplexity, StepResult};

/// Exposes a discrete-action environment through a 1-D continuous action
/// space, binning `[-1, 1]` into the discrete choices. This is how the
/// continuous-control survey algorithms (e.g. PPO2 in Figure 7) drive the
/// Pong simulator.
#[derive(Debug)]
pub struct ContinuousAdapter<E> {
    inner: E,
    n_actions: usize,
}

impl<E: Environment> ContinuousAdapter<E> {
    /// Wraps `inner`, which must have a discrete action space.
    ///
    /// # Panics
    ///
    /// Panics if `inner` is already continuous.
    pub fn new(inner: E) -> Self {
        let n_actions = match inner.action_space() {
            ActionSpace::Discrete(n) => n,
            ActionSpace::Continuous { .. } => {
                panic!("ContinuousAdapter over a continuous environment")
            }
        };
        ContinuousAdapter { inner, n_actions }
    }

    fn to_discrete(&self, a: &Action) -> Action {
        let v = a.continuous()[0].clamp(-1.0, 1.0);
        // Map [-1, 1] onto n bins.
        let bin = (((v + 1.0) / 2.0) * self.n_actions as f32) as usize;
        Action::Discrete(bin.min(self.n_actions - 1))
    }
}

impl<E: Environment> Environment for ContinuousAdapter<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn obs_dim(&self) -> usize {
        self.inner.obs_dim()
    }

    fn action_space(&self) -> ActionSpace {
        ActionSpace::Continuous { dim: 1, low: -1.0, high: 1.0 }
    }

    fn complexity(&self) -> SimComplexity {
        self.inner.complexity()
    }

    fn reset(&mut self) -> Vec<f32> {
        self.inner.reset()
    }

    fn step(&mut self, action: &Action) -> StepResult {
        let d = self.to_discrete(action);
        self.inner.step(&d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlscope_envs::Pong;
    use rlscope_sim::VirtualClock;

    #[test]
    fn bins_cover_all_actions() {
        let adapter = ContinuousAdapter::new(Pong::new(VirtualClock::new(), 0));
        let lo = adapter.to_discrete(&Action::Continuous(vec![-1.0]));
        let mid = adapter.to_discrete(&Action::Continuous(vec![0.0]));
        let hi = adapter.to_discrete(&Action::Continuous(vec![1.0]));
        assert_eq!(lo.discrete(), 0);
        assert_eq!(mid.discrete(), 1);
        assert_eq!(hi.discrete(), 2);
    }

    #[test]
    fn step_accepts_continuous_actions() {
        let mut adapter = ContinuousAdapter::new(Pong::new(VirtualClock::new(), 0));
        adapter.reset();
        let r = adapter.step(&Action::Continuous(vec![0.7]));
        assert_eq!(r.obs.len(), adapter.obs_dim());
        assert_eq!(adapter.action_space().dim(), 1);
    }

    #[test]
    fn out_of_range_actions_clamp() {
        let adapter = ContinuousAdapter::new(Pong::new(VirtualClock::new(), 0));
        assert_eq!(adapter.to_discrete(&Action::Continuous(vec![5.0])).discrete(), 2);
        assert_eq!(adapter.to_discrete(&Action::Continuous(vec![-5.0])).discrete(), 0);
    }
}
