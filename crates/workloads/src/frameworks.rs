//! The RL framework configurations of the paper's Table 1.

use rlscope_backend::exec::{BackendKind, ExecModel};
use rlscope_sim::time::DurationNs;
use serde::Serialize;
use std::fmt;

/// One ⟨RL framework, execution model, ML backend⟩ row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct FrameworkConfig {
    /// Framework name as the paper prints it.
    pub name: &'static str,
    /// The execution model.
    pub model: ExecModel,
    /// The ML backend.
    pub backend: BackendKind,
}

impl fmt::Display for FrameworkConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.backend, self.model)
    }
}

/// stable-baselines: TensorFlow Graph.
pub const STABLE_BASELINES: FrameworkConfig = FrameworkConfig {
    name: "stable-baselines",
    model: ExecModel::Graph,
    backend: BackendKind::TensorFlow,
};

/// tf-agents with Autograph enabled.
pub const TF_AGENTS_AUTOGRAPH: FrameworkConfig = FrameworkConfig {
    name: "tf-agents",
    model: ExecModel::Autograph,
    backend: BackendKind::TensorFlow,
};

/// tf-agents in pure Eager mode.
pub const TF_AGENTS_EAGER: FrameworkConfig = FrameworkConfig {
    name: "tf-agents",
    model: ExecModel::Eager,
    backend: BackendKind::TensorFlow,
};

/// ReAgent: PyTorch Eager.
pub const REAGENT: FrameworkConfig =
    FrameworkConfig { name: "ReAgent", model: ExecModel::Eager, backend: BackendKind::PyTorch };

/// All four Table-1 rows, in the paper's order.
pub fn table1() -> Vec<FrameworkConfig> {
    vec![STABLE_BASELINES, TF_AGENTS_AUTOGRAPH, TF_AGENTS_EAGER, REAGENT]
}

/// Python-side data-collection cost model for an execution model.
///
/// Autograph compiles the collect loop in-graph: per-step Python cost is
/// the same as the shared data-collection code, but each *entry* into the
/// in-graph loop costs extra — the overhead that DDPG's `train_freq = 100`
/// amortizes poorly and TD3's 1000 amortizes well (finding F.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CollectCosts {
    /// Python orchestration per simulator step.
    pub per_step_python: DurationNs,
    /// Python cost of (re-)entering the collect loop after each update.
    pub loop_entry_python: DurationNs,
}

impl CollectCosts {
    /// The cost model for an execution model.
    pub fn for_model(model: ExecModel) -> Self {
        match model {
            ExecModel::Graph | ExecModel::Eager => CollectCosts {
                per_step_python: DurationNs::from_micros(12),
                loop_entry_python: DurationNs::ZERO,
            },
            ExecModel::Autograph => CollectCosts {
                per_step_python: DurationNs::from_micros(12),
                loop_entry_python: DurationNs::from_micros(1_680),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_rows_matching_paper() {
        let t = table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].model, ExecModel::Graph);
        assert_eq!(t[1].model, ExecModel::Autograph);
        assert_eq!(t[2].model, ExecModel::Eager);
        assert_eq!(t[3].backend, BackendKind::PyTorch);
        assert_eq!(t[3].to_string(), "PyTorch Eager");
    }

    #[test]
    fn only_autograph_pays_loop_entry() {
        assert!(CollectCosts::for_model(ExecModel::Graph).loop_entry_python.is_zero());
        assert!(CollectCosts::for_model(ExecModel::Eager).loop_entry_python.is_zero());
        assert!(!CollectCosts::for_model(ExecModel::Autograph).loop_entry_python.is_zero());
    }
}
