//! Correction-accuracy validation (paper Appendix C.3, Figure 11).
//!
//! Each workload runs twice: once uninstrumented, once with full RL-Scope;
//! the corrected training time must land within ±16% of the
//! uninstrumented time. The suite also reports the per-source overhead
//! stack (CUPTI, CUDA API interception, Python interception per library,
//! annotations) that Figure 11 draws.

use crate::experiments::calibration_for;
use crate::frameworks::STABLE_BASELINES;
use crate::runner::{ScaleConfig, TrainSpec};
use rlscope_core::correct::{correct, OverheadBreakdown};
use rlscope_core::profiler::Toggles;
use rlscope_rl::AlgoKind;
use rlscope_sim::time::DurationNs;
use serde::{Deserialize, Serialize};

/// One row of the Figure-11 validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasRow {
    /// Workload label (algorithm or simulator name).
    pub label: String,
    /// Training time of the uninstrumented run.
    pub uninstrumented: DurationNs,
    /// Training time of the fully instrumented run.
    pub instrumented: DurationNs,
    /// Corrected training time.
    pub corrected: DurationNs,
    /// Correction bias: `(corrected − uninstrumented) / uninstrumented`,
    /// in percent. The paper validates |bias| ≤ 16%.
    pub bias_percent: f64,
    /// Overhead attributed per book-keeping source.
    pub overhead: OverheadBreakdown,
}

impl BiasRow {
    /// Uncorrected inflation factor (instrumented / uninstrumented) —
    /// the paper observes up to 1.9×.
    pub fn inflation(&self) -> f64 {
        self.instrumented.ratio(self.uninstrumented)
    }
}

/// Validates correction accuracy for one workload spec.
pub fn validate_correction(spec: &TrainSpec, label: impl Into<String>) -> BiasRow {
    let uninstrumented = spec.run(None).wall;
    let cal = calibration_for(spec);
    let out = spec.run(Some(Toggles::all()));
    let trace = out.trace.expect("profiled run has a trace");
    let profile = correct(&trace, &cal);
    let corrected = profile.corrected_total;
    // Guard the ratio: a degenerate zero-length uninstrumented run must
    // report zero bias, not NaN.
    let bias_percent = if uninstrumented.is_zero() {
        0.0
    } else {
        100.0 * (corrected.as_nanos() as f64 - uninstrumented.as_nanos() as f64)
            / uninstrumented.as_nanos() as f64
    };
    BiasRow {
        label: label.into(),
        uninstrumented,
        instrumented: profile.instrumented_total,
        corrected,
        bias_percent,
        overhead: profile.overhead,
    }
}

/// Figure 11a: algorithm choice (PPO2, A2C, SAC, DDPG on Walker2D).
pub fn fig11a(steps: usize, scale: ScaleConfig) -> Vec<BiasRow> {
    [AlgoKind::Ppo2, AlgoKind::A2c, AlgoKind::Sac, AlgoKind::Ddpg]
        .into_iter()
        .map(|algo| {
            let spec =
                TrainSpec { scale, ..TrainSpec::new(algo, "Walker2D", STABLE_BASELINES, steps) };
            validate_correction(&spec, algo.to_string())
        })
        .collect()
}

/// Figure 11b: simulator choice (PPO2 on Hopper, Ant, HalfCheetah, Pong).
pub fn fig11b(steps: usize, scale: ScaleConfig) -> Vec<BiasRow> {
    ["Hopper", "Ant", "HalfCheetah", "Pong"]
        .into_iter()
        .map(|env| {
            let spec =
                TrainSpec { scale, ..TrainSpec::new(AlgoKind::Ppo2, env, STABLE_BASELINES, steps) };
            validate_correction(&spec, env.to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_bias_within_paper_bound() {
        let spec = TrainSpec {
            scale: ScaleConfig { hidden: 8, batch: 4, freq_div: 25, ppo: None },
            ..TrainSpec::new(AlgoKind::Ddpg, "Walker2D", STABLE_BASELINES, 80)
        };
        let row = validate_correction(&spec, "DDPG");
        assert!(
            row.bias_percent.abs() <= 16.0,
            "bias {}% exceeds the paper's ±16% bound",
            row.bias_percent
        );
        assert!(row.inflation() > 1.0);
        assert!(row.instrumented > row.uninstrumented);
    }

    #[test]
    fn overhead_sources_are_populated() {
        let spec = TrainSpec {
            scale: ScaleConfig { hidden: 8, batch: 4, freq_div: 25, ppo: None },
            ..TrainSpec::new(AlgoKind::Sac, "Hopper", STABLE_BASELINES, 60)
        };
        let row = validate_correction(&spec, "SAC");
        assert!(!row.overhead.cupti.is_zero());
        assert!(!row.overhead.cuda_interception.is_zero());
        assert!(!row.overhead.python_backend.is_zero());
        assert!(!row.overhead.python_simulator.is_zero());
        assert!(!row.overhead.python_annotation.is_zero());
    }
}
