//! The Minigo scale-up workload (paper §4.3, Appendix B.2, Figure 8).
//!
//! Sixteen self-play worker processes collect Go games in parallel, each
//! running MCTS whose leaf expansions are neural-network inference
//! minibatches (the `mcts_tree_search` / `expand_leaf` annotation nesting
//! of the paper's Figure 2). The parent then proposes a candidate model
//! with SGD updates and evaluates it. The headline reproduction target is
//! finding F.11: `nvidia-smi` reports ~100% GPU utilization during
//! parallel data collection while the true per-worker GPU time is a tiny
//! fraction of each worker's wall time.

use crate::stack::Stack;
use rlscope_backend::prelude::*;
use rlscope_core::profiler::{Profiler, Toggles};
use rlscope_core::report::{MultiPhaseReport, MultiProcessReport};
use rlscope_core::trace::Trace;
use rlscope_envs::go::{Color, GoGame, GoMove};
use rlscope_envs::mcts::{Evaluator, Mcts};
use rlscope_rl::common::mlp_forward_frozen;
use rlscope_sim::ids::ProcessId;
use rlscope_sim::process::ProcessGraph;
use rlscope_sim::rng::SimRng;
use rlscope_sim::smi::UtilizationSampler;
use rlscope_sim::time::{DurationNs, TimeNs};
use rlscope_sim::VirtualClock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Minigo workload configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinigoConfig {
    /// Parallel self-play worker processes (paper: 16).
    pub workers: usize,
    /// Self-play games per worker.
    pub games_per_worker: usize,
    /// MCTS simulations per move.
    pub sims_per_move: u32,
    /// Board side length (paper uses 19; 9 keeps runs fast).
    pub board: usize,
    /// Move cap per game.
    pub max_moves: u32,
    /// Games played in the evaluation phase.
    pub eval_games: usize,
    /// SGD update steps in the training phase.
    pub sgd_steps: usize,
    /// `nvidia-smi` sample period (scaled down with the workload).
    pub smi_period: DurationNs,
    /// Seed.
    pub seed: u64,
}

impl Default for MinigoConfig {
    fn default() -> Self {
        MinigoConfig {
            workers: 16,
            games_per_worker: 1,
            sims_per_move: 8,
            board: 9,
            max_moves: 40,
            eval_games: 2,
            sgd_steps: 8,
            smi_period: DurationNs::from_millis(5),
            seed: 7,
        }
    }
}

/// Result of one Minigo training round.
#[derive(Debug)]
pub struct MinigoResult {
    /// The multi-process report (Figure 8).
    pub report: MultiProcessReport,
    /// The per-phase view of the same round (selfplay / sgd_updates /
    /// evaluation), the phase-scoped variant of Figure 8 that the
    /// pre-`Analysis` pipeline could not produce.
    pub phase_report: MultiPhaseReport,
    /// All traces merged across processes.
    pub merged: Trace,
    /// Fork/join process graph.
    pub graph: ProcessGraph,
    /// Wall time of each self-play worker.
    pub worker_walls: Vec<DurationNs>,
    /// GPU-busy time of each self-play worker.
    pub worker_gpu: Vec<DurationNs>,
}

struct NetEvaluator<'a> {
    stack: &'a Stack,
    rls: &'a Profiler,
    params: &'a Params,
    net: &'a Mlp,
    board: usize,
    go_cost: DurationNs,
}

impl Evaluator for NetEvaluator<'_> {
    fn evaluate(&mut self, game: &GoGame) -> (BTreeMap<GoMove, f32>, f32) {
        let _op = self.rls.operation("expand_leaf");
        // Go engine work for this simulation (feature extraction, move
        // generation) counts as simulator time.
        let go_cost = self.go_cost;
        let clock = self.stack.clock.clone();
        self.stack.exec.call_simulator(|| {
            clock.advance(go_cost);
        });
        let feats = game.features();
        let x = Tensor::from_vec(1, feats.len(), feats);
        let (net, params) = (self.net, self.params);
        let out = self.stack.exec.run(RunKind::Inference, |tape| {
            let xv = tape.constant(x.clone());
            let y = mlp_forward_frozen(net, tape, params, xv, Activation::Relu, Activation::Linear);
            tape.value(y).clone()
        });
        self.stack.exec.fetch(&out);

        let n = self.board * self.board;
        let logits = out.data();
        let mut priors = BTreeMap::new();
        for mv in game.legal_moves() {
            let idx = match mv {
                GoMove::Pass => n,
                GoMove::Place(i) => i,
            };
            priors.insert(mv, logits[idx].exp());
        }
        let value = logits[n + 1].tanh();
        (priors, value)
    }
}

fn make_net(board: usize, rng: &mut SimRng) -> (Params, Mlp) {
    let mut params = Params::new();
    let n = board * board;
    let net = Mlp::new(
        &mut params,
        rng,
        "minigo",
        &[2 * n, 64, n + 2],
        Activation::Relu,
        Activation::Linear,
    );
    (params, net)
}

struct WorkerOutput {
    trace: Trace,
    wall_end: TimeNs,
    busy: Vec<(TimeNs, TimeNs)>,
    examples: Vec<(Vec<f32>, f32)>,
}

fn run_selfplay_worker(cfg: &MinigoConfig, pid: ProcessId, seed: u64) -> WorkerOutput {
    let stack = Stack::new(BackendKind::TensorFlow, ExecModel::Graph);
    let rls = stack.profile(pid, Toggles::all());
    rls.set_phase("selfplay");
    let mut rng = SimRng::seed_from_u64(seed);
    let (params, net) = make_net(cfg.board, &mut rng);
    let mut examples = Vec::new();

    for _game_idx in 0..cfg.games_per_worker {
        let mut game = GoGame::new(cfg.board);
        let mut history: Vec<Vec<f32>> = Vec::new();
        let mut moves = 0;
        while !game.is_over() && moves < cfg.max_moves {
            let mv = {
                let _op = rls.operation("mcts_tree_search");
                // Pure-Python tree traversal per move.
                stack.exec.python(DurationNs::from_micros(140));
                let mut evaluator = NetEvaluator {
                    stack: &stack,
                    rls: &rls,
                    params: &params,
                    net: &net,
                    board: cfg.board,
                    go_cost: DurationNs::from_micros(30),
                };
                let mut mcts = Mcts::new(game.clone());
                mcts.run(cfg.sims_per_move, &mut evaluator);
                if moves < 6 {
                    mcts.sample_move(&mut rng)
                } else {
                    mcts.best_move()
                }
            };
            let clock = stack.clock.clone();
            stack.exec.call_simulator(|| {
                clock.advance(DurationNs::from_micros(30));
                game.play(mv).expect("MCTS selected illegal move");
            });
            history.push(game.features());
            moves += 1;
        }
        let outcome = match game.winner() {
            Some(Color::Black) => 1.0,
            Some(Color::White) => -1.0,
            None => 0.0,
        };
        examples.extend(history.into_iter().map(|f| (f, outcome)));
    }
    stack.exec.sync();
    let wall_end = stack.clock.now();
    let busy = stack.cuda.borrow().device().busy_intervals().to_vec();
    WorkerOutput { trace: rls.finish(), wall_end, busy, examples }
}

/// A smaller evaluation process: plays games between the current and
/// candidate nets (both evaluated through the same inference path).
fn run_eval_process(
    cfg: &MinigoConfig,
    pid: ProcessId,
    name_seed: u64,
    start: TimeNs,
    games: usize,
    phase: &str,
) -> WorkerOutput {
    let stack = Stack::with_clock(
        BackendKind::TensorFlow,
        ExecModel::Graph,
        VirtualClock::starting_at(start),
    );
    let rls = stack.profile(pid, Toggles::all());
    rls.set_phase(phase);
    let mut rng = SimRng::seed_from_u64(name_seed);
    let (params, net) = make_net(cfg.board, &mut rng);
    for _ in 0..games {
        let mut game = GoGame::new(cfg.board);
        let mut moves = 0;
        while !game.is_over() && moves < cfg.max_moves / 2 {
            let mv = {
                let _op = rls.operation("mcts_tree_search");
                stack.exec.python(DurationNs::from_micros(120));
                let mut evaluator = NetEvaluator {
                    stack: &stack,
                    rls: &rls,
                    params: &params,
                    net: &net,
                    board: cfg.board,
                    go_cost: DurationNs::from_micros(30),
                };
                let mut mcts = Mcts::new(game.clone());
                mcts.run(cfg.sims_per_move / 2, &mut evaluator);
                mcts.best_move()
            };
            let clock = stack.clock.clone();
            stack.exec.call_simulator(|| {
                clock.advance(DurationNs::from_micros(30));
                game.play(mv).expect("illegal eval move");
            });
            moves += 1;
        }
    }
    stack.exec.sync();
    let wall_end = stack.clock.now();
    let busy = stack.cuda.borrow().device().busy_intervals().to_vec();
    WorkerOutput { trace: rls.finish(), wall_end, busy, examples: Vec::new() }
}

/// Runs one full Minigo training round: parallel self-play, SGD updates,
/// evaluation.
pub fn run_minigo(cfg: &MinigoConfig) -> MinigoResult {
    let mut graph = ProcessGraph::new("loader");
    let mut names = vec![(ProcessId(0), "loader".to_string())];
    let mut traces = Vec::new();
    let mut busy_all: Vec<(TimeNs, TimeNs)> = Vec::new();
    let mut worker_walls = Vec::new();
    let mut worker_gpu = Vec::new();
    let mut examples = Vec::new();
    let mut join_at = TimeNs::ZERO;

    // Phase 1: parallel self-play workers, all forked at t=0.
    for w in 0..cfg.workers {
        let pid = graph.fork(graph.root(), format!("selfplay_worker_{w}"), TimeNs::ZERO);
        names.push((pid, format!("selfplay_worker_{w}")));
        let out = run_selfplay_worker(cfg, pid, cfg.seed ^ (w as u64) << 8);
        graph.join(pid, out.wall_end);
        join_at = join_at.max(out.wall_end);
        worker_walls.push(out.wall_end - TimeNs::ZERO);
        let gpu: DurationNs = out.busy.iter().map(|&(s, e)| e - s).sum();
        worker_gpu.push(gpu);
        busy_all.extend(out.busy);
        examples.extend(out.examples);
        traces.push(out.trace);
    }

    // Phase 2: SGD updates on the loader process.
    let loader = Stack::with_clock(
        BackendKind::TensorFlow,
        ExecModel::Graph,
        VirtualClock::starting_at(join_at),
    );
    let rls = loader.profile(ProcessId(0), Toggles::all());
    rls.set_phase("sgd_updates");
    let mut rng = SimRng::seed_from_u64(cfg.seed ^ 0x5d9);
    let (mut params, net) = make_net(cfg.board, &mut rng);
    let mut opt = Adam::new(1e-3);
    let n = cfg.board * cfg.board;
    for step in 0..cfg.sgd_steps {
        let batch: Vec<&(Vec<f32>, f32)> =
            examples.iter().skip(step).step_by(cfg.sgd_steps.max(1)).take(16).collect();
        if batch.is_empty() {
            break;
        }
        let x = Tensor::stack_rows(
            &batch.iter().map(|(f, _)| Tensor::vector(f.clone())).collect::<Vec<_>>(),
        );
        let y = Tensor::from_vec(batch.len(), 1, batch.iter().map(|(_, o)| *o).collect());
        loader.exec.feed(x.byte_size());
        let _op = rls.operation("sgd_update");
        let grads = loader.exec.run(RunKind::Backprop, |tape| {
            let xv = tape.constant(x.clone());
            let yv = tape.constant(y.clone());
            let out = net.forward(tape, &params, xv);
            // Select the value column with a fixed selector matrix.
            let mut sel = vec![0.0f32; n + 2];
            sel[n + 1] = 1.0;
            let sel = tape.constant(Tensor::from_vec(n + 2, 1, sel));
            let v = tape.matmul(out, sel);
            let vt = tape.tanh(v);
            let loss = tape.mse(vt, yv);
            tape.backward(loss)
        });
        drop(_op);
        opt.step(&mut params, &grads, Some(&loader.exec));
    }
    loader.exec.sync();
    let sgd_end = loader.clock.now();
    busy_all.extend(loader.cuda.borrow().device().busy_intervals().iter().copied());
    traces.push(rls.finish());

    // Phase 3: evaluation processes forked after SGD.
    let term_pid = graph.fork(graph.root(), "evaluate_termination", sgd_end);
    names.push((term_pid, "evaluate_termination".to_string()));
    let term = run_eval_process(cfg, term_pid, cfg.seed ^ 0xee1, sgd_end, 1, "evaluation");
    graph.join(term_pid, term.wall_end);
    busy_all.extend(term.busy);
    let mut global_end = term.wall_end.max(sgd_end);
    traces.push(term.trace);

    let cand_pid = graph.fork(graph.root(), "evaluate_candidate_model", sgd_end);
    names.push((cand_pid, "evaluate_candidate_model".to_string()));
    let cand =
        run_eval_process(cfg, cand_pid, cfg.seed ^ 0xee2, sgd_end, cfg.eval_games, "evaluation");
    graph.join(cand_pid, cand.wall_end);
    busy_all.extend(cand.busy);
    global_end = global_end.max(cand.wall_end);
    traces.push(cand.trace);

    let merged = Trace::merge(traces);
    let smi = UtilizationSampler::new(cfg.smi_period).sample(&busy_all, TimeNs::ZERO, global_end);
    let report = MultiProcessReport::new(&merged, &names, graph.dependency_edges(), &smi);
    let phase_report = MultiPhaseReport::from_trace(&merged);
    MinigoResult { report, phase_report, merged, graph, worker_walls, worker_gpu }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MinigoConfig {
        MinigoConfig {
            workers: 3,
            games_per_worker: 1,
            sims_per_move: 4,
            board: 5,
            max_moves: 14,
            eval_games: 1,
            sgd_steps: 2,
            smi_period: DurationNs::from_millis(2),
            seed: 3,
        }
    }

    #[test]
    fn minigo_round_produces_multiprocess_view() {
        let result = run_minigo(&tiny());
        // loader + 3 workers + 2 eval processes.
        assert_eq!(result.graph.len(), 6);
        assert_eq!(result.report.processes.len(), 6);
        assert_eq!(result.worker_walls.len(), 3);
        let rendered = result.report.render();
        assert!(rendered.contains("selfplay_worker_0"));
        assert!(rendered.contains("evaluate_candidate_model"));
    }

    #[test]
    fn f11_smi_overstates_true_gpu_usage() {
        let result = run_minigo(&tiny());
        // nvidia-smi reports high utilization, true GPU-bound time is low.
        assert!(
            result.report.smi_reported_percent >= 50.0,
            "smi reported only {:.1}%",
            result.report.smi_reported_percent
        );
        assert!(
            result.report.true_gpu_percent < result.report.smi_reported_percent / 3.0,
            "true {:.2}% vs reported {:.1}%",
            result.report.true_gpu_percent,
            result.report.smi_reported_percent
        );
    }

    #[test]
    fn workers_are_cpu_bound() {
        let result = run_minigo(&tiny());
        for (wall, gpu) in result.worker_walls.iter().zip(&result.worker_gpu) {
            assert!(
                gpu.as_nanos() * 5 < wall.as_nanos(),
                "worker suspiciously GPU-bound: {gpu} of {wall}"
            );
        }
    }

    #[test]
    fn phase_report_covers_round_phases_and_conserves_time() {
        let result = run_minigo(&tiny());
        let names: Vec<&str> =
            result.phase_report.phases.iter().map(|p| p.phase.as_str()).collect();
        assert!(names.contains(&"selfplay"), "{names:?}");
        assert!(names.contains(&"sgd_updates"), "{names:?}");
        assert!(names.contains(&"evaluation"), "{names:?}");
        // Phase grouping conserves the merged-stream total exactly.
        assert_eq!(result.phase_report.total(), result.merged.breakdown().total());
        let rendered = result.phase_report.render();
        assert!(rendered.contains("selfplay"), "{rendered}");
        assert!(rendered.contains("mcts_tree_search"), "{rendered}");
    }

    /// The whole round — move choices, virtual-clock timings, phase
    /// report — must be reproducible for a fixed seed. MCTS priors used
    /// to travel through a `HashMap`, whose iteration order varied the
    /// expansion order and therefore the moves (and every derived
    /// figure) run to run; the sorted-map routing pins it down.
    #[test]
    fn minigo_round_is_deterministic() {
        use rlscope_core::analysis::{Analysis, Dim};
        let canonical = |r: &MinigoResult| {
            Analysis::of(&r.merged).group_by([Dim::Phase]).canonical_json().unwrap()
        };
        let a = run_minigo(&tiny());
        let b = run_minigo(&tiny());
        assert_eq!(a.merged.events, b.merged.events, "event streams diverged");
        assert_eq!(canonical(&a), canonical(&b), "phase reports diverged");
        assert_eq!(a.report.render(), b.report.render());
    }

    #[test]
    fn traces_nest_expand_leaf_inside_mcts() {
        let result = run_minigo(&tiny());
        let names = result.merged.operation_names();
        let names: Vec<&str> = names.iter().map(|n| &**n).collect();
        assert!(names.contains(&"mcts_tree_search"));
        assert!(names.contains(&"expand_leaf"));
        // expand_leaf time is scoped under (not double-counted with) the
        // tree search in the breakdown.
        let table = result.merged.breakdown();
        assert!(table.operation_total("expand_leaf") > DurationNs::ZERO);
        assert!(table.operation_total("mcts_tree_search") > DurationNs::ZERO);
    }
}
