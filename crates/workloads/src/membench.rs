//! The `bench` workload: proves the streaming analysis pipeline's memory
//! claim — peak allocation stays flat while the trace grows 100×.
//!
//! The workload writes a deterministic start-ordered multi-process event
//! stream to a rotated chunk directory, then analyzes it twice:
//!
//! * **batch** — [`read_chunk_dir`] materializes every decoded event in
//!   one `Vec<Event>`, then the in-memory sharded analysis runs
//!   ([`Trace::breakdowns_by_process`]); peak memory is linear in total
//!   event count.
//! * **streamed** — [`streamed_breakdowns_by_process`] decodes one chunk
//!   at a time into per-process bounded
//!   [`rlscope_core::overlap::OverlapSweep`]s; peak memory is one chunk
//!   plus the sweeps' lag windows, independent of how many chunks the
//!   directory holds.
//!
//! Peak live heap is observed through [`TrackingAlloc`], a byte-counting
//! wrapper around the system allocator. The harness (`tests/membench.rs`)
//! installs it as the global allocator and asserts the streamed peak is
//! flat across a 100× event-count growth while the batch peak is not.

use rlscope_core::overlap::BreakdownTable;
use rlscope_core::store::{read_chunk_dir, TraceIoError, TraceWriter};
use rlscope_core::trace::{streamed_breakdowns_by_process, Trace};
use rlscope_core::{CpuCategory, Event, EventKind, GpuCategory};
use rlscope_sim::ids::ProcessId;
use rlscope_sim::time::{DurationNs, TimeNs};
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// A system-allocator wrapper that tracks live and peak heap bytes.
///
/// Install it in a test or binary crate root to activate the counters:
///
/// ```ignore
/// #[global_allocator]
/// static GLOBAL: rlscope_workloads::membench::TrackingAlloc = TrackingAlloc;
/// ```
///
/// Without installation the counters stay zero and the membench report
/// carries no peak information.
#[derive(Debug)]
pub struct TrackingAlloc;

fn on_alloc(bytes: usize) {
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System`, only adjusting counters.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Resets the peak-bytes watermark to the current live count.
pub fn reset_alloc_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak live heap bytes since the last [`reset_alloc_peak`] (zero unless
/// [`TrackingAlloc`] is installed as the global allocator).
pub fn alloc_peak() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Live heap bytes right now (zero unless [`TrackingAlloc`] is installed).
pub fn alloc_live() -> usize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Events per unit of `scale` in [`write_scaled_chunks`].
pub const EVENTS_PER_SCALE: u64 = 4_096;

/// Processes in the synthetic stream.
pub const MEMBENCH_PIDS: u32 = 3;

/// Chunk rotation threshold used by the workload: small enough that even
/// `scale = 1` rotates several files, so the streamed path is always
/// exercised across chunk boundaries.
pub const MEMBENCH_CHUNK_BYTES: usize = 32 * 1024;

/// The sweep lag the synthetic stream needs: events are emitted in
/// globally sorted start order and every interval is shorter than one
/// lane step, so a small window suffices; use a comfortable multiple.
pub const MEMBENCH_LAG: DurationNs = DurationNs::from_micros(100);

/// Writes the deterministic membench stream: `scale * EVENTS_PER_SCALE`
/// events round-robined over [`MEMBENCH_PIDS`] processes in globally
/// sorted start order — operation annotations every 16 events per lane,
/// CPU category and GPU kernel intervals otherwise. [`TraceWriter`]
/// clears any chunk files already in `dir`, so a reused directory holds
/// exactly this stream. Returns the total event count written.
///
/// # Errors
///
/// Propagates chunk-writer I/O errors.
pub fn write_scaled_chunks(dir: &Path, scale: usize) -> Result<u64, TraceIoError> {
    let total = EVENTS_PER_SCALE * scale as u64;
    let writer = TraceWriter::create(dir, MEMBENCH_CHUNK_BYTES)?;
    let mut batch: Vec<Event> = Vec::with_capacity(1024);
    for i in 0..total {
        let pid = ProcessId((i % u64::from(MEMBENCH_PIDS)) as u32);
        let t = i * 1_000;
        let event = if i % 16 == 0 {
            Event::new(
                pid,
                EventKind::Operation,
                ["inference", "simulation", "backpropagation"][(i as usize / 16) % 3],
                TimeNs::from_nanos(t),
                TimeNs::from_nanos(t + 15_500),
            )
        } else {
            let (kind, name) = match i % 4 {
                0 => (EventKind::Cpu(CpuCategory::Python), "py"),
                1 => (EventKind::Cpu(CpuCategory::Backend), "be"),
                2 => (EventKind::Cpu(CpuCategory::CudaApi), "cudaLaunchKernel"),
                _ => (EventKind::Gpu(GpuCategory::Kernel), "kernel"),
            };
            Event::new(pid, kind, name, TimeNs::from_nanos(t), TimeNs::from_nanos(t + 900))
        };
        batch.push(event);
        if batch.len() == 1024 {
            writer.write(std::mem::take(&mut batch));
        }
    }
    if !batch.is_empty() {
        writer.write(batch);
    }
    writer.finish()?;
    Ok(total)
}

/// One analysis pass's observation: its peak live heap and its result.
#[derive(Debug)]
pub struct PassMeasurement {
    /// Peak live heap bytes during the pass (0 without [`TrackingAlloc`]).
    pub peak_bytes: usize,
    /// The per-process tables the pass produced.
    pub tables: Vec<(ProcessId, BreakdownTable)>,
}

/// Runs the streamed analysis over `dir` under peak-allocation tracking.
///
/// # Errors
///
/// Propagates I/O / corruption errors from the directory.
pub fn measure_streamed(dir: &Path) -> Result<PassMeasurement, TraceIoError> {
    reset_alloc_peak();
    let base = alloc_live();
    let tables = streamed_breakdowns_by_process(dir, Some(MEMBENCH_LAG))?;
    Ok(PassMeasurement { peak_bytes: alloc_peak().saturating_sub(base), tables })
}

/// Runs the full-materialization analysis over `dir` under
/// peak-allocation tracking.
///
/// # Errors
///
/// Propagates I/O / corruption errors from the directory.
pub fn measure_batch(dir: &Path) -> Result<PassMeasurement, TraceIoError> {
    reset_alloc_peak();
    let base = alloc_live();
    let events = read_chunk_dir(dir)?;
    let wall_end = events.iter().map(|e| e.end).max().unwrap_or(TimeNs::ZERO);
    let trace = Trace {
        pid: ProcessId(0),
        events,
        counts: Default::default(),
        per_op_transitions: vec![],
        api_stats: vec![],
        iterations: 0,
        wall_end,
    };
    let tables = trace.breakdowns_by_process();
    Ok(PassMeasurement { peak_bytes: alloc_peak().saturating_sub(base), tables })
}

/// The membench verdict for one scale.
#[derive(Debug)]
pub struct MemBenchReport {
    /// Events written to the chunk directory.
    pub events: u64,
    /// Peak live heap of the streamed analysis pass.
    pub streamed_peak: usize,
    /// Peak live heap of the full-materialization pass.
    pub batch_peak: usize,
    /// Whether both passes produced identical per-process tables.
    pub tables_match: bool,
}

/// Writes the `scale`-sized stream into `dir` and measures both analysis
/// passes. The directory is created (and overwritten) by the call.
///
/// # Errors
///
/// Propagates I/O / corruption errors.
pub fn run_membench(dir: &Path, scale: usize) -> Result<MemBenchReport, TraceIoError> {
    let events = write_scaled_chunks(dir, scale)?;
    let streamed = measure_streamed(dir)?;
    let batch = measure_batch(dir)?;
    Ok(MemBenchReport {
        events,
        streamed_peak: streamed.peak_bytes,
        batch_peak: batch.peak_bytes,
        tables_match: streamed.tables == batch.tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membench_passes_agree_without_allocator() {
        // Table equality (the correctness half of the workload) holds
        // whether or not the tracking allocator is installed.
        let dir = std::env::temp_dir().join(format!("rlscope_membench_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let report = run_membench(&dir, 1).unwrap();
        assert_eq!(report.events, EVENTS_PER_SCALE);
        assert!(report.tables_match);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rerun_into_same_dir_replaces_stale_chunks() {
        let dir = std::env::temp_dir().join(format!("rlscope_membench_re_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_scaled_chunks(&dir, 2).unwrap();
        let big = read_chunk_dir(&dir).unwrap().len() as u64;
        assert_eq!(big, EVENTS_PER_SCALE * 2);
        // A smaller rerun must fully replace the stream, not leave the
        // old run's tail chunks behind.
        write_scaled_chunks(&dir, 1).unwrap();
        assert_eq!(read_chunk_dir(&dir).unwrap().len() as u64, EVENTS_PER_SCALE);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn membench_stream_is_start_ordered() {
        // The bounded sweep's lag contract: the generator must emit
        // globally sorted start times (any drift would silently fall back
        // to exact mode and void the flat-memory claim).
        let dir = std::env::temp_dir().join(format!("rlscope_membench_ord_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        write_scaled_chunks(&dir, 1).unwrap();
        let events = read_chunk_dir(&dir).unwrap();
        assert!(events.windows(2).all(|w| w[0].start <= w[1].start));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
