//! The annotated RL training loop: the code a user of RL-Scope writes.
//!
//! Every iteration follows the structure of the paper's Figure 1b —
//! inference → simulation → (periodically) backpropagation — with each
//! stage wrapped in the corresponding `rls.operation(...)` annotation.

use crate::adapter::ContinuousAdapter;
use crate::frameworks::{CollectCosts, FrameworkConfig};
use crate::stack::Stack;
use rlscope_core::profiler::{EventSink, Profiler, Toggles};
use rlscope_core::store::{TraceIoError, TraceWriter};
use rlscope_core::trace::Trace;
use rlscope_envs::{AirLearning, Environment, Locomotion, LocomotionTask, Pong};
use rlscope_rl::{
    A2c, A2cConfig, Agent, AlgoKind, Ddpg, DdpgConfig, Dqn, DqnConfig, Ppo, PpoConfig, Sac,
    SacConfig, Td3, Td3Config, Transition,
};
use rlscope_sim::ids::ProcessId;
use rlscope_sim::time::DurationNs;
use serde::{Deserialize, Serialize};

/// Scales down the paper's hyperparameters so experiments finish quickly
/// while preserving every ratio the findings depend on (e.g. DDPG's
/// `train_freq` stays 10× smaller than TD3's).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Divisor applied to `train_freq` / `gradient_steps` / rollout sizes.
    pub freq_div: usize,
    /// Optional PPO-specific override `(n_steps, epochs, minibatch)` —
    /// the per-environment tuned hyperparameters of the simulator survey
    /// (paper Appendix B.1 notes the (PPO, Pong) configuration performs
    /// few gradient updates per simulator invocation).
    pub ppo: Option<(usize, usize, usize)>,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig { hidden: 32, batch: 16, freq_div: 10, ppo: None }
    }
}

/// Builds an environment by survey name, adapted to a continuous action
/// space when `continuous` is set (for non-DQN algorithms on Pong).
///
/// `AirLearning` renders on the stack's GPU.
///
/// # Panics
///
/// Panics on unknown environment names.
pub fn make_env(name: &str, stack: &Stack, seed: u64, continuous: bool) -> Box<dyn Environment> {
    let clock = stack.clock.clone();
    match name {
        "Pong" if continuous => Box::new(ContinuousAdapter::new(Pong::new(clock, seed))),
        "Pong" => Box::new(Pong::new(clock, seed)),
        "Walker2D" => Box::new(Locomotion::new(LocomotionTask::Walker2d, clock, seed)),
        "Hopper" => Box::new(Locomotion::new(LocomotionTask::Hopper, clock, seed)),
        "HalfCheetah" => Box::new(Locomotion::new(LocomotionTask::HalfCheetah, clock, seed)),
        "Ant" => Box::new(Locomotion::new(LocomotionTask::Ant, clock, seed)),
        "AirLearning" => {
            Box::new(AirLearning::new(clock, Some((stack.cuda.clone(), stack.stream)), seed))
        }
        other => panic!("unknown environment {other}"),
    }
}

/// Builds an agent for an algorithm under a framework configuration.
///
/// Framework-specific quirks applied here:
/// * stable-baselines DDPG uses the MPI-friendly CPU-round-trip Adam
///   (finding F.4); every other configuration uses in-backend Adam.
/// * DDPG keeps `train_freq` 10× smaller than TD3 (finding F.5).
pub fn make_agent(
    algo: AlgoKind,
    framework: FrameworkConfig,
    obs_dim: usize,
    act_dim: usize,
    seed: u64,
    scale: ScaleConfig,
) -> Box<dyn Agent> {
    let div = scale.freq_div.max(1);
    match algo {
        AlgoKind::Dqn => Box::new(Dqn::new(
            obs_dim,
            act_dim,
            DqnConfig {
                hidden: vec![scale.hidden, scale.hidden],
                batch_size: scale.batch,
                warmup: scale.batch * 2,
                ..DqnConfig::default()
            },
            seed,
        )),
        AlgoKind::Ddpg => Box::new(Ddpg::new(
            obs_dim,
            act_dim,
            DdpgConfig {
                hidden: scale.hidden,
                batch_size: scale.batch,
                warmup: scale.batch * 2,
                train_freq: (100 / div).max(1),
                gradient_steps: (350 / div).max(1),
                use_mpi_adam: framework == crate::frameworks::STABLE_BASELINES,
                ..DdpgConfig::default()
            },
            seed,
        )),
        AlgoKind::Td3 => Box::new(Td3::new(
            obs_dim,
            act_dim,
            Td3Config {
                hidden: scale.hidden,
                batch_size: scale.batch,
                warmup: scale.batch * 2,
                train_freq: (1000 / div).max(1),
                gradient_steps: (500 / div).max(1),
                ..Td3Config::default()
            },
            seed,
        )),
        AlgoKind::Sac => Box::new(Sac::new(
            obs_dim,
            act_dim,
            SacConfig {
                hidden: scale.hidden,
                batch_size: scale.batch,
                warmup: scale.batch * 2,
                train_freq: (64 / div).max(1),
                gradient_steps: (160 / div).max(1),
                ..SacConfig::default()
            },
            seed,
        )),
        AlgoKind::A2c => Box::new(A2c::new(
            obs_dim,
            act_dim,
            A2cConfig { hidden: scale.hidden, n_steps: 5, ..A2cConfig::default() },
            seed,
        )),
        AlgoKind::Ppo2 => {
            let (n_steps, epochs, minibatch) =
                scale.ppo.unwrap_or(((128 / div).max(4), 4, scale.batch.min((128 / div).max(4))));
            Box::new(Ppo::new(
                obs_dim,
                act_dim,
                PpoConfig {
                    hidden: scale.hidden,
                    n_steps,
                    minibatch,
                    epochs,
                    ..PpoConfig::default()
                },
                seed,
            ))
        }
    }
}

/// Outcome of one training run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Total wall-clock (virtual) training time.
    pub wall: DurationNs,
    /// The trace, when a profiler was attached.
    pub trace: Option<Trace>,
    /// Episodes completed.
    pub episodes: u64,
    /// Sum of rewards (sanity signal that learning actually ran).
    pub reward_sum: f64,
}

/// Runs `steps` environment steps of the annotated training loop.
pub fn run_annotated_loop(
    stack: &Stack,
    env: &mut dyn Environment,
    agent: &mut dyn Agent,
    profiler: Option<&Profiler>,
    steps: usize,
    collect: CollectCosts,
) -> RunOutcome {
    let start = stack.clock.now();
    let exec = &stack.exec;
    let op = |name: &str| profiler.map(|p| p.operation(name));
    if let Some(p) = profiler {
        p.set_phase("training");
    }

    let mut obs = {
        let _g = op("simulation");
        exec.call_simulator(|| env.reset())
    };
    exec.python(collect.loop_entry_python);

    let mut episodes = 0u64;
    let mut reward_sum = 0.0f64;
    for _ in 0..steps {
        let action = {
            let _g = op("inference");
            agent.act(exec, &obs, true)
        };
        let result = {
            let _g = op("simulation");
            exec.python(collect.per_step_python);
            exec.call_simulator(|| env.step(&action))
        };
        reward_sum += result.reward as f64;
        agent.observe(Transition {
            obs: std::mem::take(&mut obs),
            action,
            reward: result.reward,
            next_obs: result.obs.clone(),
            done: result.done,
        });
        obs = if result.done {
            episodes += 1;
            agent.episode_end();
            let _g = op("simulation");
            exec.call_simulator(|| env.reset())
        } else {
            result.obs
        };
        if agent.ready_to_update() {
            {
                let _g = op("backpropagation");
                agent.update(exec);
            }
            // Autograph re-enters its in-graph collect loop after each
            // update phase (the F.5 entry cost).
            exec.python(collect.loop_entry_python);
        }
        if let Some(p) = profiler {
            p.mark_iteration();
        }
    }
    exec.sync();

    RunOutcome { wall: stack.clock.now() - start, trace: None, episodes, reward_sum }
}

/// A complete, reproducible training-workload specification.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrainSpec {
    /// The RL algorithm.
    pub algo: AlgoKind,
    /// Environment survey name.
    pub env: String,
    /// Framework configuration (Table 1 row).
    pub framework: FrameworkConfig,
    /// Environment steps to run.
    pub steps: usize,
    /// Seed for all stochastic components.
    pub seed: u64,
    /// Hyperparameter scaling.
    pub scale: ScaleConfig,
}

impl TrainSpec {
    /// A spec with default scaling.
    pub fn new(algo: AlgoKind, env: &str, framework: FrameworkConfig, steps: usize) -> Self {
        TrainSpec {
            algo,
            env: env.to_string(),
            framework,
            steps,
            seed: 42,
            scale: ScaleConfig::default(),
        }
    }

    /// Executes the workload. With `toggles = None` the run is
    /// uninstrumented (no profiler attached at all); otherwise a profiler
    /// with those toggles is attached and the outcome carries its trace.
    pub fn run(&self, toggles: Option<Toggles>) -> RunOutcome {
        self.run_inner(toggles, None)
    }

    /// Executes the workload profiled while **streaming** its events to
    /// `sink` in batches of `flush_every` — the live-collection form of
    /// [`TrainSpec::run`]: attach an [`EventSink`] (e.g. the collector
    /// daemon's session client) and the trace flows out while the
    /// workload runs, instead of being written to files afterwards. The
    /// returned outcome still carries the complete trace (streaming adds
    /// delivery, not ownership — see
    /// [`Profiler::stream_to`](rlscope_core::profiler::Profiler::stream_to)),
    /// so callers can cross-check the live analysis against the local
    /// one.
    pub fn run_streamed(
        &self,
        toggles: Toggles,
        sink: std::sync::Arc<dyn EventSink>,
        flush_every: usize,
    ) -> RunOutcome {
        self.run_inner(Some(toggles), Some((sink, flush_every)))
    }

    fn run_inner(
        &self,
        toggles: Option<Toggles>,
        sink: Option<(std::sync::Arc<dyn EventSink>, usize)>,
    ) -> RunOutcome {
        let stack = Stack::new(self.framework.backend, self.framework.model);
        let continuous = self.algo != AlgoKind::Dqn;
        let mut env = make_env(&self.env, &stack, self.seed, continuous);
        let act_dim = match (self.algo, env.action_space()) {
            (AlgoKind::Dqn, rlscope_envs::ActionSpace::Discrete(n)) => n,
            (_, space) => space.dim(),
        };
        let mut agent =
            make_agent(self.algo, self.framework, env.obs_dim(), act_dim, self.seed, self.scale);
        let profiler = toggles.map(|t| stack.profile(ProcessId(0), t));
        if let (Some(p), Some((sink, flush_every))) = (&profiler, sink) {
            p.stream_to(sink, flush_every);
        }
        let collect = CollectCosts::for_model(self.framework.model);
        let mut outcome = run_annotated_loop(
            &stack,
            env.as_mut(),
            agent.as_mut(),
            profiler.as_ref(),
            self.steps,
            collect,
        );
        outcome.trace = profiler.map(|p| p.finish());
        outcome
    }

    /// Executes the workload profiled and stores the trace as a rotated
    /// chunk directory under `dir`, the on-disk form the streaming
    /// analysis pipeline consumes
    /// ([`rlscope_core::analysis::Analysis::from_chunk_dir`] and its
    /// wrappers [`rlscope_core::trace::streamed_breakdowns_by_process`],
    /// [`rlscope_core::report::MultiProcessReport::from_chunk_dir`]).
    /// Chunk files already in `dir` are **deleted** first
    /// ([`TraceWriter::create`]'s stale-chunk purge), so a reused
    /// directory holds exactly this run. Returns the run outcome (its
    /// `trace` still attached, for callers that want to cross-check the
    /// streamed analysis) and the chunk files written.
    ///
    /// # Errors
    ///
    /// Propagates chunk-writer I/O errors.
    pub fn run_to_chunk_dir(
        &self,
        toggles: Toggles,
        dir: &std::path::Path,
        chunk_bytes: usize,
    ) -> Result<(RunOutcome, Vec<std::path::PathBuf>), TraceIoError> {
        let outcome = self.run(Some(toggles));
        let trace = outcome.trace.as_ref().expect("profiled run always carries a trace");
        let writer = TraceWriter::create(dir, chunk_bytes)?;
        for chunk in trace.events.chunks(1024) {
            writer.write(chunk.to_vec());
        }
        let files = writer.finish()?;
        Ok((outcome, files))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frameworks::{REAGENT, STABLE_BASELINES, TF_AGENTS_AUTOGRAPH};
    use rlscope_core::event::EventKind;

    fn spec(algo: AlgoKind, env: &str) -> TrainSpec {
        TrainSpec {
            scale: ScaleConfig { hidden: 8, batch: 4, freq_div: 25, ppo: None },
            ..TrainSpec::new(algo, env, STABLE_BASELINES, 60)
        }
    }

    #[test]
    fn uninstrumented_run_produces_no_trace() {
        let out = spec(AlgoKind::Ppo2, "Walker2D").run(None);
        assert!(out.trace.is_none());
        assert!(!out.wall.is_zero());
    }

    #[test]
    fn profiled_run_records_all_three_operations() {
        let out = spec(AlgoKind::Ddpg, "Walker2D").run(Some(Toggles::all()));
        let trace = out.trace.unwrap();
        let names = trace.operation_names();
        let names: Vec<&str> = names.iter().map(|n| &**n).collect();
        assert!(names.contains(&"inference"), "{names:?}");
        assert!(names.contains(&"simulation"), "{names:?}");
        assert!(names.contains(&"backpropagation"), "{names:?}");
        assert_eq!(trace.iterations, 60);
    }

    #[test]
    fn deterministic_given_same_spec() {
        let a = spec(AlgoKind::Sac, "Hopper").run(Some(Toggles::all()));
        let b = spec(AlgoKind::Sac, "Hopper").run(Some(Toggles::all()));
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.trace.unwrap().events.len(), b.trace.unwrap().events.len());
    }

    #[test]
    fn zero_toggles_run_matches_uninstrumented_timing() {
        // Recording with zero injected cost must not perturb the timeline:
        // this is the property that makes calibration exact.
        let bare = spec(AlgoKind::A2c, "Walker2D").run(None);
        let observed = spec(AlgoKind::A2c, "Walker2D").run(Some(Toggles::none()));
        assert_eq!(bare.wall, observed.wall);
    }

    #[test]
    fn full_profiling_inflates_wall_time() {
        let bare = spec(AlgoKind::Ddpg, "Walker2D").run(None);
        let full = spec(AlgoKind::Ddpg, "Walker2D").run(Some(Toggles::all()));
        assert!(full.wall > bare.wall, "profiling added no overhead");
    }

    #[test]
    fn dqn_runs_on_discrete_pong() {
        let out = spec(AlgoKind::Dqn, "Pong").run(Some(Toggles::all()));
        let trace = out.trace.unwrap();
        assert!(trace.counts.simulator_transitions > 0);
    }

    #[test]
    fn ppo_runs_on_pong_via_adapter() {
        let out = spec(AlgoKind::Ppo2, "Pong").run(Some(Toggles::all()));
        assert!(out.trace.is_some());
    }

    #[test]
    fn chunked_run_streams_to_identical_breakdowns() {
        use rlscope_core::analysis::{Analysis, Dim};

        let dir =
            std::env::temp_dir().join(format!("rlscope_runner_chunks_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (out, files) = spec(AlgoKind::Ddpg, "Walker2D")
            .run_to_chunk_dir(Toggles::all(), &dir, 16 * 1024)
            .unwrap();
        assert!(!files.is_empty());
        let trace = out.trace.unwrap();
        // The streamed chunk-dir analysis reproduces the in-memory
        // sharded analysis exactly, table for table — real profiler
        // streams are end-ordered, so this exercises the exact sweeps.
        let streamed: Vec<_> = Analysis::from_chunk_dir(&dir)
            .group_by([Dim::Process])
            .tables()
            .unwrap()
            .into_iter()
            .map(|(key, table)| (key.process.unwrap(), table))
            .collect();
        assert_eq!(streamed, trace.breakdowns_by_process());
        // The per-phase streamed query also matches the in-memory one —
        // the training loop runs a single "training" phase.
        let streamed_phases = Analysis::from_chunk_dir(&dir).group_by([Dim::Phase]).tables();
        let batch_phases = Analysis::of(&trace).group_by([Dim::Phase]).tables().unwrap();
        assert_eq!(streamed_phases.unwrap(), batch_phases);
        assert!(batch_phases.iter().any(|(k, _)| k.phase.as_deref() == Some("training")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Streaming a run delivers exactly the trace's event stream to the
    /// sink, in order — the property the live collector path builds on.
    #[test]
    fn streamed_run_delivers_the_full_trace_to_the_sink() {
        use rlscope_core::event::Event;
        use std::sync::{Arc, Mutex};

        #[derive(Default)]
        struct VecSink(Mutex<Vec<Event>>);
        impl EventSink for VecSink {
            fn emit(&self, events: Vec<Event>) {
                self.0.lock().unwrap().extend(events);
            }
        }

        let sink = Arc::new(VecSink::default());
        let out = spec(AlgoKind::Ddpg, "Walker2D").run_streamed(Toggles::all(), sink.clone(), 256);
        let trace = out.trace.unwrap();
        assert!(!trace.events.is_empty());
        assert_eq!(*sink.0.lock().unwrap(), trace.events);
        // And the streamed run is byte-identical to a plain run.
        let plain = spec(AlgoKind::Ddpg, "Walker2D").run(Some(Toggles::all()));
        assert_eq!(plain.trace.unwrap(), trace);
    }

    #[test]
    fn airlearning_renders_on_gpu_inside_simulation_op() {
        let out = spec(AlgoKind::Ppo2, "AirLearning").run(Some(Toggles::all()));
        let trace = out.trace.unwrap();
        let has_render = trace
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Gpu(_)) && &*e.name == "render_frame");
        assert!(has_render, "no render kernels recorded");
    }

    #[test]
    fn eager_framework_runs() {
        let out = TrainSpec {
            scale: ScaleConfig { hidden: 8, batch: 4, freq_div: 25, ppo: None },
            ..TrainSpec::new(AlgoKind::Td3, "Walker2D", REAGENT, 30)
        }
        .run(Some(Toggles::all()));
        assert!(out.trace.unwrap().counts.backend_transitions > 30);
    }

    #[test]
    fn autograph_pays_collect_entry_cost() {
        let graph = spec(AlgoKind::Ddpg, "Walker2D").run(None).wall;
        let autograph = TrainSpec {
            scale: ScaleConfig { hidden: 8, batch: 4, freq_div: 25, ppo: None },
            ..TrainSpec::new(AlgoKind::Ddpg, "Walker2D", TF_AGENTS_AUTOGRAPH, 60)
        }
        .run(None)
        .wall;
        // Not asserting which is faster overall (inference anomaly vs
        // entry cost interact); just that both complete and differ.
        assert_ne!(graph, autograph);
    }
}
