//! Twin Delayed DDPG (TD3): twin critics, delayed policy updates, target
//! policy smoothing — and, relevant to the paper's F.5, a `train_freq` of
//! 1000 consecutive simulator steps, which amortizes Autograph's data
//! collection loop entry cost far better than DDPG's 100.

use crate::buffer::{ReplayBuffer, Transition};
use crate::common::{
    action_batch, mlp_forward_frozen, next_obs_batch, not_done_batch, obs_batch, reward_batch,
    Agent, AlgoKind, TwoHeadCritic,
};
use crate::noise::{ActionNoise, GaussianNoise};
use rlscope_backend::prelude::*;
use rlscope_envs::Action;
use rlscope_sim::rng::SimRng;
use rlscope_sim::time::DurationNs;

/// TD3 hyperparameters.
#[derive(Debug, Clone)]
pub struct Td3Config {
    /// Hidden width for actor and critics.
    pub hidden: usize,
    /// Learning rate (shared).
    pub lr: f32,
    /// Discount factor.
    pub gamma: f32,
    /// Polyak coefficient.
    pub tau: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Steps before learning starts.
    pub warmup: usize,
    /// Consecutive simulator steps between update phases (paper: 1000).
    pub train_freq: usize,
    /// Gradient steps per update phase.
    pub gradient_steps: usize,
    /// Actor update period, in critic updates.
    pub policy_delay: usize,
    /// Exploration noise scale.
    pub noise_sigma: f32,
    /// Target policy smoothing noise scale.
    pub target_noise: f32,
    /// Smoothing noise clip.
    pub target_noise_clip: f32,
    /// Python orchestration per action selection.
    pub python_per_act: DurationNs,
    /// Python orchestration per gradient step.
    pub python_per_step: DurationNs,
}

impl Default for Td3Config {
    fn default() -> Self {
        Td3Config {
            hidden: 64,
            lr: 1e-3,
            gamma: 0.99,
            tau: 0.005,
            batch_size: 64,
            replay_capacity: 50_000,
            warmup: 128,
            train_freq: 1000,
            gradient_steps: 500,
            policy_delay: 2,
            noise_sigma: 0.1,
            target_noise: 0.2,
            target_noise_clip: 0.5,
            python_per_act: DurationNs::from_micros(40),
            python_per_step: DurationNs::from_micros(150),
        }
    }
}

/// A TD3 agent.
#[derive(Debug)]
pub struct Td3 {
    config: Td3Config,
    act_dim: usize,
    params: Params,
    target_params: Params,
    actor: Mlp,
    critic1: TwoHeadCritic,
    critic2: TwoHeadCritic,
    actor_opt: Adam,
    critic_opt: Adam,
    replay: ReplayBuffer,
    noise: GaussianNoise,
    rng: SimRng,
    steps_since_update: usize,
    critic_updates: u64,
}

impl Td3 {
    /// Creates a TD3 agent.
    pub fn new(obs_dim: usize, act_dim: usize, config: Td3Config, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut params = Params::new();
        let actor = Mlp::new(
            &mut params,
            &mut rng,
            "actor",
            &[obs_dim, config.hidden, config.hidden, act_dim],
            Activation::Relu,
            Activation::Tanh,
        );
        let critic1 =
            TwoHeadCritic::new(&mut params, &mut rng, "critic1", obs_dim, act_dim, config.hidden);
        let critic2 =
            TwoHeadCritic::new(&mut params, &mut rng, "critic2", obs_dim, act_dim, config.hidden);
        let target_params = params.clone();
        Td3 {
            actor_opt: Adam::new(config.lr),
            critic_opt: Adam::new(config.lr),
            replay: ReplayBuffer::new(config.replay_capacity),
            noise: GaussianNoise::new(config.noise_sigma, seed ^ 0x7d3),
            target_params,
            params,
            actor,
            critic1,
            critic2,
            act_dim,
            config,
            rng,
            steps_since_update: 0,
            critic_updates: 0,
        }
    }

    /// Number of critic gradient updates so far.
    pub fn critic_updates(&self) -> u64 {
        self.critic_updates
    }
}

impl Agent for Td3 {
    fn kind(&self) -> AlgoKind {
        AlgoKind::Td3
    }

    fn act(&mut self, exec: &Executor, obs: &[f32], explore: bool) -> Action {
        exec.python(self.config.python_per_act);
        let x = Tensor::from_vec(1, obs.len(), obs.to_vec());
        let mu = exec.run(RunKind::Inference, |tape| {
            let xv = tape.constant(x.clone());
            let y = mlp_forward_frozen(
                &self.actor,
                tape,
                &self.params,
                xv,
                Activation::Relu,
                Activation::Tanh,
            );
            tape.value(y).clone()
        });
        exec.fetch(&mu);
        let mut a: Vec<f32> = mu.data().to_vec();
        if explore {
            for (v, n) in a.iter_mut().zip(self.noise.sample(self.act_dim)) {
                *v = (*v + n).clamp(-1.0, 1.0);
            }
        }
        Action::Continuous(a)
    }

    fn observe(&mut self, t: Transition) {
        self.replay.push(t);
        self.steps_since_update += 1;
    }

    fn ready_to_update(&self) -> bool {
        self.replay.len() >= self.config.warmup && self.steps_since_update >= self.config.train_freq
    }

    fn update(&mut self, exec: &Executor) {
        self.steps_since_update = 0;
        for _ in 0..self.config.gradient_steps {
            exec.python(self.config.python_per_step);
            let batch: Vec<Transition> = self
                .replay
                .sample(self.config.batch_size, &mut self.rng)
                .into_iter()
                .cloned()
                .collect();
            let obs = obs_batch(batch.iter());
            let next_obs = next_obs_batch(batch.iter());
            let actions = action_batch(batch.iter());
            let rewards = reward_batch(batch.iter());
            let not_done = not_done_batch(batch.iter());
            exec.feed(obs.byte_size() + next_obs.byte_size() + actions.byte_size());

            // Smoothing noise for the target action, sampled host-side.
            let mut smooth = vec![0.0f32; batch.len() * self.act_dim];
            for v in &mut smooth {
                *v = (self.rng.normal_with(0.0, self.config.target_noise as f64) as f32)
                    .clamp(-self.config.target_noise_clip, self.config.target_noise_clip);
            }
            let smooth = Tensor::from_vec(batch.len(), self.act_dim, smooth);

            let gamma = self.config.gamma;
            let (actor, c1, c2, params, target_params) =
                (&self.actor, &self.critic1, &self.critic2, &self.params, &self.target_params);
            // Twin-critic TD update in a single backprop run.
            let critic_grads = exec.run(RunKind::Backprop, |tape| {
                let nx = tape.constant(next_obs.clone());
                let a_next = mlp_forward_frozen(
                    actor,
                    tape,
                    target_params,
                    nx,
                    Activation::Relu,
                    Activation::Tanh,
                );
                let noise = tape.constant(smooth.clone());
                let a_next = tape.add(a_next, noise);
                let a_next = tape.clamp(a_next, -1.0, 1.0);
                let q1t = c1.forward_frozen(tape, target_params, nx, a_next);
                let q2t = c2.forward_frozen(tape, target_params, nx, a_next);
                let qmin = tape.minimum(q1t, q2t);
                let qmin_val = tape.value(qmin).clone();
                let y: Vec<f32> = (0..qmin_val.rows())
                    .map(|r| rewards.at(r, 0) + gamma * not_done.at(r, 0) * qmin_val.at(r, 0))
                    .collect();
                let y = tape.constant(Tensor::from_vec(y.len(), 1, y));

                let ob = tape.constant(obs.clone());
                let av = tape.constant(actions.clone());
                let q1 = c1.forward(tape, params, ob, av);
                let q2 = c2.forward(tape, params, ob, av);
                let l1 = tape.mse(q1, y);
                let l2 = tape.mse(q2, y);
                let loss = tape.add(l1, l2);
                tape.backward(loss)
            });
            self.critic_opt.step(&mut self.params, &critic_grads, Some(exec));
            self.critic_updates += 1;

            // Delayed policy + target updates.
            assert!(self.config.policy_delay > 0, "policy_delay must be nonzero");
            if self.critic_updates.is_multiple_of(self.config.policy_delay as u64) {
                let (actor, c1, params) = (&self.actor, &self.critic1, &self.params);
                let actor_grads = exec.run(RunKind::Backprop, |tape| {
                    let ob = tape.constant(obs.clone());
                    let a = actor.forward(tape, params, ob);
                    let q = c1.forward_frozen(tape, params, ob, a);
                    let mean_q = tape.mean(q);
                    let loss = tape.scale(mean_q, -1.0);
                    tape.backward(loss)
                });
                self.actor_opt.step(&mut self.params, &actor_grads, Some(exec));
                self.target_params.soft_update_from(&self.params, self.config.tau);
                exec.backend_call(|ex| {
                    for pid in self
                        .actor
                        .param_ids()
                        .into_iter()
                        .chain(self.critic1.param_ids())
                        .chain(self.critic2.param_ids())
                    {
                        ex.kernel("target_soft_update", self.params.get(pid).len() as f64 * 3.0);
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_executor;

    fn config() -> Td3Config {
        Td3Config {
            warmup: 16,
            batch_size: 8,
            train_freq: 16,
            gradient_steps: 4,
            hidden: 16,
            ..Td3Config::default()
        }
    }

    fn fill(agent: &mut Td3, n: usize) {
        for i in 0..n {
            agent.observe(Transition {
                obs: vec![0.1, 0.2],
                action: Action::Continuous(vec![0.3]),
                reward: (i % 3) as f32,
                next_obs: vec![0.2, 0.1],
                done: false,
            });
        }
    }

    #[test]
    fn policy_updates_are_delayed() {
        let (exec, _, _) = test_executor();
        let mut agent = Td3::new(2, 1, config(), 1);
        fill(&mut agent, 16);
        let actor_ids = agent.actor.param_ids();
        let actor_before: Vec<Tensor> =
            actor_ids.iter().map(|&pid| agent.params.get(pid).clone()).collect();
        agent.update(&exec);
        // 4 critic updates / delay 2 = 2 actor updates happened.
        assert_eq!(agent.critic_updates(), 4);
        let changed = actor_ids
            .iter()
            .zip(&actor_before)
            .any(|(&pid, before)| agent.params.get(pid) != before);
        assert!(changed, "actor never updated despite passing the delay");
    }

    #[test]
    fn single_critic_update_leaves_actor_untouched() {
        let (exec, _, _) = test_executor();
        let mut cfg = config();
        cfg.gradient_steps = 1; // 1 < policy_delay=2
        let mut agent = Td3::new(2, 1, cfg, 1);
        fill(&mut agent, 16);
        let actor_before: Vec<Tensor> =
            agent.actor.param_ids().iter().map(|&pid| agent.params.get(pid).clone()).collect();
        agent.update(&exec);
        let unchanged = agent
            .actor
            .param_ids()
            .iter()
            .zip(&actor_before)
            .all(|(&pid, before)| agent.params.get(pid) == before);
        assert!(unchanged, "actor updated before policy_delay elapsed");
    }

    #[test]
    fn twin_critics_have_disjoint_params() {
        let agent = Td3::new(2, 1, config(), 1);
        let ids1 = agent.critic1.param_ids();
        let ids2 = agent.critic2.param_ids();
        assert!(ids1.iter().all(|id| !ids2.contains(id)));
    }

    #[test]
    fn uses_larger_train_freq_than_ddpg_by_default() {
        // The F.5 hyperparameter difference.
        assert_eq!(Td3Config::default().train_freq, 1000);
        assert_eq!(crate::ddpg::DdpgConfig::default().train_freq, 100);
    }

    #[test]
    fn bounded_actions_under_noise() {
        let (exec, _, _) = test_executor();
        let mut agent = Td3::new(2, 1, config(), 1);
        for _ in 0..10 {
            let a = agent.act(&exec, &[1.0, -1.0], true);
            assert!(a.continuous().iter().all(|v| v.abs() <= 1.0));
        }
    }
}
