//! Proximal Policy Optimization (PPO2, the stable-baselines variant).
//!
//! On-policy with a longer horizon than A2C (default 128 steps), multiple
//! optimization epochs over minibatches, and the clipped surrogate
//! objective. In the paper's survey PPO2 spends 46.3% of training time in
//! simulation (Figure 5) and is the algorithm used for the simulator
//! survey (Figure 7).

use crate::buffer::{RolloutBuffer, RolloutStep, Transition};
use crate::common::{gaussian_row_logp, Agent, AlgoKind};
use crate::onpolicy::{normalize_advantages, GaussianActorCritic};
use rlscope_backend::prelude::*;
use rlscope_envs::Action;
use rlscope_sim::rng::SimRng;
use rlscope_sim::time::DurationNs;

/// PPO2 hyperparameters.
#[derive(Debug, Clone)]
pub struct PpoConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Discount factor.
    pub gamma: f32,
    /// GAE λ.
    pub lambda: f32,
    /// Rollout horizon (paper-default 128).
    pub n_steps: usize,
    /// Optimization epochs per rollout.
    pub epochs: usize,
    /// Minibatch size.
    pub minibatch: usize,
    /// Clip range ε.
    pub clip: f32,
    /// Policy standard deviation.
    pub std: f32,
    /// Value-loss coefficient.
    pub vf_coef: f32,
    /// Python orchestration per action selection.
    pub python_per_act: DurationNs,
    /// Python orchestration per update phase (GAE, shuffling, batching).
    pub python_per_update: DurationNs,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            hidden: 64,
            lr: 3e-4,
            gamma: 0.99,
            lambda: 0.95,
            n_steps: 128,
            epochs: 4,
            minibatch: 32,
            clip: 0.2,
            std: 0.3,
            vf_coef: 0.5,
            python_per_act: DurationNs::from_micros(55),
            python_per_update: DurationNs::from_micros(900),
        }
    }
}

/// A PPO2 agent.
#[derive(Debug)]
pub struct Ppo {
    config: PpoConfig,
    ac: GaussianActorCritic,
    opt: Adam,
    rollout: RolloutBuffer,
    rng: SimRng,
    last_value: f32,
    last_logp: f32,
    last_next_obs: Vec<f32>,
}

impl Ppo {
    /// Creates a PPO2 agent.
    pub fn new(obs_dim: usize, act_dim: usize, config: PpoConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let ac = GaussianActorCritic::new(obs_dim, act_dim, config.hidden, config.std, &mut rng);
        Ppo {
            opt: Adam::new(config.lr),
            rollout: RolloutBuffer::new(config.n_steps),
            ac,
            config,
            rng,
            last_value: 0.0,
            last_logp: 0.0,
            last_next_obs: Vec::new(),
        }
    }

    /// Parameter store (for tests).
    pub fn params(&self) -> &Params {
        &self.ac.params
    }
}

impl Agent for Ppo {
    fn kind(&self) -> AlgoKind {
        AlgoKind::Ppo2
    }

    fn act(&mut self, exec: &Executor, obs: &[f32], explore: bool) -> Action {
        exec.python(self.config.python_per_act);
        let (action, value, logp) = self.ac.act_eval(exec, obs, explore, &mut self.rng);
        self.last_value = value;
        self.last_logp = logp;
        action
    }

    fn observe(&mut self, t: Transition) {
        self.last_next_obs = t.next_obs.clone();
        self.rollout.push(RolloutStep {
            obs: t.obs,
            action: t.action,
            reward: t.reward,
            value: self.last_value,
            log_prob: self.last_logp,
            done: t.done,
        });
    }

    fn ready_to_update(&self) -> bool {
        self.rollout.is_full()
    }

    fn update(&mut self, exec: &Executor) {
        let last_value = if self.last_next_obs.is_empty() {
            0.0
        } else {
            self.ac.value_of(exec, &self.last_next_obs)
        };
        exec.python(self.config.python_per_update);
        let (mut adv, ret) = self.rollout.gae(last_value, self.config.gamma, self.config.lambda);
        normalize_advantages(&mut adv);

        let steps: Vec<RolloutStep> = self.rollout.steps().to_vec();
        let n = steps.len();
        let mb = self.config.minibatch.min(n).max(1);
        let mut order: Vec<usize> = (0..n).collect();

        for _epoch in 0..self.config.epochs {
            // Shuffle (Fisher–Yates with the agent RNG).
            for i in (1..order.len()).rev() {
                let j = self.rng.below(i + 1);
                order.swap(i, j);
            }
            for chunk in order.chunks(mb) {
                let obs = Tensor::stack_rows(
                    &chunk
                        .iter()
                        .map(|&i| Tensor::vector(steps[i].obs.clone()))
                        .collect::<Vec<_>>(),
                );
                let actions = Tensor::stack_rows(
                    &chunk
                        .iter()
                        .map(|&i| Tensor::vector(steps[i].action.continuous().to_vec()))
                        .collect::<Vec<_>>(),
                );
                let adv_t =
                    Tensor::from_vec(chunk.len(), 1, chunk.iter().map(|&i| adv[i]).collect());
                let ret_t =
                    Tensor::from_vec(chunk.len(), 1, chunk.iter().map(|&i| ret[i]).collect());
                let old_logp_t = Tensor::from_vec(
                    chunk.len(),
                    1,
                    chunk.iter().map(|&i| steps[i].log_prob).collect(),
                );
                exec.feed(obs.byte_size() + actions.byte_size() + adv_t.byte_size());

                let (ac, std, clip, vf_coef) =
                    (&self.ac, self.config.std, self.config.clip, self.config.vf_coef);
                let act_dim = ac.act_dim();
                let grads = exec.run(RunKind::Backprop, |tape| {
                    let ob = tape.constant(obs.clone());
                    let av = tape.constant(actions.clone());
                    let advv = tape.constant(adv_t.clone());
                    let retv = tape.constant(ret_t.clone());
                    let oldlp = tape.constant(old_logp_t.clone());

                    let mu = ac.actor.forward(tape, &ac.params, ob);
                    let logp = gaussian_row_logp(tape, mu, av, std, act_dim);
                    let diff = tape.sub(logp, oldlp);
                    let ratio = tape.exp(diff);
                    let surr1 = tape.mul(ratio, advv);
                    let clipped = tape.clamp(ratio, 1.0 - clip, 1.0 + clip);
                    let surr2 = tape.mul(clipped, advv);
                    let surr = tape.minimum(surr1, surr2);
                    let pg = tape.mean(surr);
                    let pg_loss = tape.scale(pg, -1.0);

                    let v = ac.critic.forward(tape, &ac.params, ob);
                    let v_loss = tape.mse(v, retv);
                    let v_term = tape.scale(v_loss, vf_coef);
                    let loss = tape.add(pg_loss, v_term);
                    tape.backward(loss)
                });
                self.opt.step(&mut self.ac.params, &grads, Some(exec));
            }
        }
        self.rollout.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_executor;

    fn config() -> PpoConfig {
        PpoConfig { n_steps: 8, minibatch: 4, epochs: 2, hidden: 16, ..PpoConfig::default() }
    }

    fn drive_one_rollout(agent: &mut Ppo, exec: &Executor) {
        for i in 0..agent.config.n_steps {
            let a = agent.act(exec, &[0.1, 0.2], true);
            agent.observe(Transition {
                obs: vec![0.1, 0.2],
                action: a,
                reward: (i % 2) as f32,
                next_obs: vec![0.2, 0.1],
                done: false,
            });
        }
        assert!(agent.ready_to_update());
        agent.update(exec);
    }

    #[test]
    fn update_consumes_full_rollout() {
        let (exec, _, _) = test_executor();
        let mut agent = Ppo::new(2, 1, config(), 1);
        let before = agent.params().clone();
        drive_one_rollout(&mut agent, &exec);
        assert_ne!(agent.params(), &before);
        assert!(!agent.ready_to_update());
    }

    #[test]
    fn epochs_times_minibatches_backprop_runs() {
        // 8 steps, minibatch 4, 2 epochs → 4 backprop runs + kernels.
        let (exec, _, cuda) = test_executor();
        let mut agent = Ppo::new(2, 1, config(), 1);
        for i in 0..8 {
            let a = agent.act(&exec, &[0.1, 0.2], true);
            agent.observe(Transition {
                obs: vec![0.1, 0.2],
                action: a,
                reward: i as f32,
                next_obs: vec![0.2, 0.1],
                done: false,
            });
        }
        let launches_before = cuda.borrow().counts().launches;
        agent.update(&exec);
        let launched = cuda.borrow().counts().launches - launches_before;
        assert!(launched > 100, "suspiciously few kernels for 4 PPO minibatches: {launched}");
    }

    #[test]
    fn clipping_bounds_the_update_when_ratio_explodes() {
        // A pathological advantage with stale logp exercises the clipped
        // branch of the objective; parameters must stay finite.
        let (exec, _, _) = test_executor();
        let mut agent = Ppo::new(2, 1, config(), 1);
        for _ in 0..8 {
            let a = agent.act(&exec, &[0.1, 0.2], true);
            agent.observe(Transition {
                obs: vec![0.1, 0.2],
                action: a,
                reward: 100.0,
                next_obs: vec![0.2, 0.1],
                done: false,
            });
            // Poison the stored log-prob so ratios are far from 1.
            agent.last_logp = -20.0;
        }
        agent.update(&exec);
        for pid in 0..agent.params().len() {
            assert!(
                agent.params().get(pid).data().iter().all(|v| v.is_finite()),
                "non-finite parameter after clipped update"
            );
        }
    }

    #[test]
    fn has_larger_horizon_than_a2c_by_default() {
        assert!(PpoConfig::default().n_steps > crate::a2c::A2cConfig::default().n_steps);
    }
}
