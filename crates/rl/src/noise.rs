//! Exploration noise processes for continuous-control agents.

use rlscope_sim::rng::SimRng;

/// Additive exploration noise over action vectors.
pub trait ActionNoise {
    /// The next noise vector of length `dim`.
    fn sample(&mut self, dim: usize) -> Vec<f32>;
    /// Resets any internal state (on episode boundaries).
    fn reset(&mut self);
}

/// Independent Gaussian noise per coordinate.
#[derive(Debug)]
pub struct GaussianNoise {
    sigma: f32,
    rng: SimRng,
}

impl GaussianNoise {
    /// Creates Gaussian noise with standard deviation `sigma`.
    pub fn new(sigma: f32, seed: u64) -> Self {
        GaussianNoise { sigma, rng: SimRng::seed_from_u64(seed) }
    }
}

impl ActionNoise for GaussianNoise {
    fn sample(&mut self, dim: usize) -> Vec<f32> {
        (0..dim).map(|_| self.rng.normal_with(0.0, self.sigma as f64) as f32).collect()
    }

    fn reset(&mut self) {}
}

/// Ornstein–Uhlenbeck temporally correlated noise (classic DDPG choice).
#[derive(Debug)]
pub struct OuNoise {
    theta: f32,
    sigma: f32,
    state: Vec<f32>,
    rng: SimRng,
}

impl OuNoise {
    /// Creates OU noise with mean-reversion `theta` and volatility `sigma`.
    pub fn new(theta: f32, sigma: f32, seed: u64) -> Self {
        OuNoise { theta, sigma, state: Vec::new(), rng: SimRng::seed_from_u64(seed) }
    }
}

impl ActionNoise for OuNoise {
    fn sample(&mut self, dim: usize) -> Vec<f32> {
        if self.state.len() != dim {
            self.state = vec![0.0; dim];
        }
        for s in &mut self.state {
            let dw = self.rng.normal() as f32;
            *s += -self.theta * *s + self.sigma * dw;
        }
        self.state.clone()
    }

    fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments() {
        let mut n = GaussianNoise::new(0.5, 3);
        let samples: Vec<f32> = (0..4_000).flat_map(|_| n.sample(2)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / samples.len() as f32;
        let var: f32 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.05);
        assert!((var - 0.25).abs() < 0.03);
    }

    #[test]
    fn ou_noise_is_temporally_correlated() {
        let mut ou = OuNoise::new(0.15, 0.2, 4);
        let mut gaussian = GaussianNoise::new(0.2, 4);
        let corr = |xs: &[f32]| {
            let pairs: Vec<(f32, f32)> = xs.windows(2).map(|w| (w[0], w[1])).collect();
            let mx: f32 = pairs.iter().map(|p| p.0).sum::<f32>() / pairs.len() as f32;
            let my: f32 = pairs.iter().map(|p| p.1).sum::<f32>() / pairs.len() as f32;
            let cov: f32 =
                pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f32>() / pairs.len() as f32;
            let vx: f32 =
                pairs.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum::<f32>() / pairs.len() as f32;
            cov / vx.max(1e-9)
        };
        let ou_series: Vec<f32> = (0..3_000).map(|_| ou.sample(1)[0]).collect();
        let g_series: Vec<f32> = (0..3_000).map(|_| gaussian.sample(1)[0]).collect();
        assert!(corr(&ou_series) > 0.5, "OU autocorr {}", corr(&ou_series));
        assert!(corr(&g_series).abs() < 0.1, "gaussian autocorr {}", corr(&g_series));
    }

    #[test]
    fn ou_reset_clears_state() {
        let mut ou = OuNoise::new(0.15, 0.3, 5);
        for _ in 0..100 {
            ou.sample(3);
        }
        ou.reset();
        // After reset the state restarts from zero; first sample is one
        // OU increment, bounded by a few sigma.
        let s = ou.sample(3);
        assert!(s.iter().all(|v| v.abs() < 1.5));
    }
}
