//! Advantage Actor-Critic (A2C) — synchronous, on-policy.
//!
//! A2C is the most simulation-bound algorithm in the paper's survey
//! (67.0% of training time in Figure 5): a short rollout (default 5 steps)
//! is collected under the current policy, then a single gradient update is
//! performed — so almost all wall-clock time goes to stepping the
//! simulator and the Python glue around it (finding F.10).

use crate::buffer::{RolloutBuffer, RolloutStep, Transition};
use crate::common::{gaussian_row_logp, Agent, AlgoKind};
use crate::onpolicy::{normalize_advantages, GaussianActorCritic};
use rlscope_backend::prelude::*;
use rlscope_envs::Action;
use rlscope_sim::rng::SimRng;
use rlscope_sim::time::DurationNs;

/// A2C hyperparameters.
#[derive(Debug, Clone)]
pub struct A2cConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Discount factor.
    pub gamma: f32,
    /// GAE λ.
    pub lambda: f32,
    /// Rollout horizon (paper-default 5).
    pub n_steps: usize,
    /// Policy standard deviation.
    pub std: f32,
    /// Value-loss coefficient.
    pub vf_coef: f32,
    /// Python orchestration per action selection.
    pub python_per_act: DurationNs,
    /// Python orchestration per update (advantage computation, batching).
    pub python_per_update: DurationNs,
}

impl Default for A2cConfig {
    fn default() -> Self {
        A2cConfig {
            hidden: 64,
            lr: 7e-4,
            gamma: 0.99,
            lambda: 1.0,
            n_steps: 5,
            std: 0.3,
            vf_coef: 0.5,
            python_per_act: DurationNs::from_micros(55),
            python_per_update: DurationNs::from_micros(260),
        }
    }
}

/// An A2C agent.
#[derive(Debug)]
pub struct A2c {
    config: A2cConfig,
    ac: GaussianActorCritic,
    opt: Adam,
    rollout: RolloutBuffer,
    rng: SimRng,
    last_value: f32,
    last_logp: f32,
    last_next_obs: Vec<f32>,
}

impl A2c {
    /// Creates an A2C agent.
    pub fn new(obs_dim: usize, act_dim: usize, config: A2cConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let ac = GaussianActorCritic::new(obs_dim, act_dim, config.hidden, config.std, &mut rng);
        A2c {
            opt: Adam::new(config.lr),
            rollout: RolloutBuffer::new(config.n_steps),
            ac,
            config,
            rng,
            last_value: 0.0,
            last_logp: 0.0,
            last_next_obs: Vec::new(),
        }
    }

    /// Parameter store (for tests).
    pub fn params(&self) -> &Params {
        &self.ac.params
    }
}

impl Agent for A2c {
    fn kind(&self) -> AlgoKind {
        AlgoKind::A2c
    }

    fn act(&mut self, exec: &Executor, obs: &[f32], explore: bool) -> Action {
        exec.python(self.config.python_per_act);
        let (action, value, logp) = self.ac.act_eval(exec, obs, explore, &mut self.rng);
        self.last_value = value;
        self.last_logp = logp;
        action
    }

    fn observe(&mut self, t: Transition) {
        self.last_next_obs = t.next_obs.clone();
        self.rollout.push(RolloutStep {
            obs: t.obs,
            action: t.action,
            reward: t.reward,
            value: self.last_value,
            log_prob: self.last_logp,
            done: t.done,
        });
    }

    fn ready_to_update(&self) -> bool {
        self.rollout.is_full()
    }

    fn update(&mut self, exec: &Executor) {
        // Bootstrap value of the state after the rollout.
        let last_value = if self.last_next_obs.is_empty() {
            0.0
        } else {
            self.ac.value_of(exec, &self.last_next_obs)
        };
        exec.python(self.config.python_per_update);
        let (mut adv, ret) = self.rollout.gae(last_value, self.config.gamma, self.config.lambda);
        normalize_advantages(&mut adv);

        let steps = self.rollout.steps();
        let obs = Tensor::stack_rows(
            &steps.iter().map(|s| Tensor::vector(s.obs.clone())).collect::<Vec<_>>(),
        );
        let actions = Tensor::stack_rows(
            &steps
                .iter()
                .map(|s| Tensor::vector(s.action.continuous().to_vec()))
                .collect::<Vec<_>>(),
        );
        let adv_t = Tensor::from_vec(adv.len(), 1, adv);
        let ret_t = Tensor::from_vec(ret.len(), 1, ret);
        exec.feed(obs.byte_size() + actions.byte_size() + adv_t.byte_size() + ret_t.byte_size());

        let (ac, std, vf_coef) = (&self.ac, self.config.std, self.config.vf_coef);
        let act_dim = ac.act_dim();
        let grads = exec.run(RunKind::Backprop, |tape| {
            let ob = tape.constant(obs.clone());
            let av = tape.constant(actions.clone());
            let advv = tape.constant(adv_t.clone());
            let retv = tape.constant(ret_t.clone());
            let mu = ac.actor.forward(tape, &ac.params, ob);
            let logp = gaussian_row_logp(tape, mu, av, std, act_dim);
            let weighted = tape.mul(logp, advv);
            let pg = tape.mean(weighted);
            let pg_loss = tape.scale(pg, -1.0);
            let v = ac.critic.forward(tape, &ac.params, ob);
            let v_loss = tape.mse(v, retv);
            let v_term = tape.scale(v_loss, vf_coef);
            let loss = tape.add(pg_loss, v_term);
            tape.backward(loss)
        });
        self.opt.step(&mut self.ac.params, &grads, Some(exec));
        self.rollout.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_executor;

    fn config() -> A2cConfig {
        A2cConfig { n_steps: 4, hidden: 16, ..A2cConfig::default() }
    }

    fn drive(agent: &mut A2c, exec: &Executor, steps: usize) {
        for i in 0..steps {
            let a = agent.act(exec, &[0.1, 0.2], true);
            agent.observe(Transition {
                obs: vec![0.1, 0.2],
                action: a,
                reward: (i % 2) as f32,
                next_obs: vec![0.2, 0.1],
                done: false,
            });
            if agent.ready_to_update() {
                agent.update(exec);
            }
        }
    }

    #[test]
    fn updates_fire_every_n_steps() {
        let (exec, _, _) = test_executor();
        let mut agent = A2c::new(2, 1, config(), 1);
        for _ in 0..3 {
            let a = agent.act(&exec, &[0.1, 0.2], true);
            agent.observe(Transition {
                obs: vec![0.1, 0.2],
                action: a,
                reward: 0.0,
                next_obs: vec![0.2, 0.1],
                done: false,
            });
        }
        assert!(!agent.ready_to_update());
        let a = agent.act(&exec, &[0.1, 0.2], true);
        agent.observe(Transition {
            obs: vec![0.1, 0.2],
            action: a,
            reward: 0.0,
            next_obs: vec![0.2, 0.1],
            done: false,
        });
        assert!(agent.ready_to_update());
        agent.update(&exec);
        assert!(!agent.ready_to_update());
    }

    #[test]
    fn update_changes_parameters() {
        let (exec, _, _) = test_executor();
        let mut agent = A2c::new(2, 1, config(), 1);
        let before = agent.params().clone();
        drive(&mut agent, &exec, 4);
        assert_ne!(agent.params(), &before);
    }

    #[test]
    fn on_policy_rollout_is_cleared_after_update() {
        let (exec, _, _) = test_executor();
        let mut agent = A2c::new(2, 1, config(), 1);
        drive(&mut agent, &exec, 4);
        assert_eq!(agent.rollout.len(), 0);
    }

    #[test]
    fn is_on_policy() {
        assert!(!AlgoKind::A2c.is_off_policy());
    }
}
