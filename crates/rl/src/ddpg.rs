//! Deep Deterministic Policy Gradient (off-policy, continuous control).
//!
//! Reproduces the stable-baselines implementation quirks the paper's
//! findings hinge on:
//!
//! * **F.4** — the MPI-friendly, GPU-unfriendly Python Adam that
//!   round-trips parameters through the CPU every step (enable with
//!   [`DdpgConfig::use_mpi_adam`]), plus target-network copies and gradient
//!   application issued as *separate* backend calls;
//! * **F.5** — `train_freq = 100` consecutive simulator steps between
//!   update phases (vs TD3's 1000), which under Autograph amortizes the
//!   in-graph data-collection loop entry cost poorly.

use crate::buffer::{ReplayBuffer, Transition};
use crate::common::{
    action_batch, mlp_forward_frozen, next_obs_batch, not_done_batch, obs_batch, reward_batch,
    Agent, AlgoKind, TwoHeadCritic,
};
use crate::noise::{ActionNoise, OuNoise};
use rlscope_backend::prelude::*;
use rlscope_envs::Action;
use rlscope_sim::rng::SimRng;
use rlscope_sim::time::DurationNs;

/// DDPG hyperparameters.
#[derive(Debug, Clone)]
pub struct DdpgConfig {
    /// Hidden width for actor and critic.
    pub hidden: usize,
    /// Actor learning rate.
    pub actor_lr: f32,
    /// Critic learning rate.
    pub critic_lr: f32,
    /// Discount factor.
    pub gamma: f32,
    /// Polyak averaging coefficient for target networks.
    pub tau: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Steps before learning starts.
    pub warmup: usize,
    /// Consecutive simulator steps between update phases (paper: 100 for
    /// DDPG, 1000 for TD3 — the F.5 hyperparameter).
    pub train_freq: usize,
    /// Gradient steps per update phase.
    pub gradient_steps: usize,
    /// Exploration noise scale.
    pub noise_sigma: f32,
    /// Use the MPI-friendly CPU-round-trip Adam (stable-baselines DDPG).
    pub use_mpi_adam: bool,
    /// Python orchestration per action selection.
    pub python_per_act: DurationNs,
    /// Python orchestration per gradient step.
    pub python_per_step: DurationNs,
}

impl Default for DdpgConfig {
    fn default() -> Self {
        DdpgConfig {
            hidden: 64,
            actor_lr: 1e-4,
            critic_lr: 1e-3,
            gamma: 0.99,
            tau: 0.005,
            batch_size: 64,
            replay_capacity: 50_000,
            warmup: 128,
            train_freq: 100,
            gradient_steps: 50,
            noise_sigma: 0.1,
            use_mpi_adam: true,
            python_per_act: DurationNs::from_micros(40),
            python_per_step: DurationNs::from_micros(150),
        }
    }
}

enum AnyOptimizer {
    Gpu(Adam),
    Mpi(MpiAdam),
}

impl AnyOptimizer {
    fn step(&mut self, params: &mut Params, grads: &Gradients, exec: Option<&Executor>) {
        match self {
            AnyOptimizer::Gpu(o) => o.step(params, grads, exec),
            AnyOptimizer::Mpi(o) => o.step(params, grads, exec),
        }
    }
}

impl std::fmt::Debug for AnyOptimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnyOptimizer::Gpu(_) => write!(f, "Adam"),
            AnyOptimizer::Mpi(_) => write!(f, "MpiAdam"),
        }
    }
}

/// A DDPG agent.
#[derive(Debug)]
pub struct Ddpg {
    config: DdpgConfig,
    act_dim: usize,
    params: Params,
    target_params: Params,
    actor: Mlp,
    critic: TwoHeadCritic,
    actor_opt: AnyOptimizer,
    critic_opt: AnyOptimizer,
    replay: ReplayBuffer,
    noise: OuNoise,
    rng: SimRng,
    steps_since_update: usize,
}

impl Ddpg {
    /// Creates a DDPG agent.
    pub fn new(obs_dim: usize, act_dim: usize, config: DdpgConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut params = Params::new();
        let actor = Mlp::new(
            &mut params,
            &mut rng,
            "actor",
            &[obs_dim, config.hidden, config.hidden, act_dim],
            Activation::Relu,
            Activation::Tanh,
        );
        let critic =
            TwoHeadCritic::new(&mut params, &mut rng, "critic", obs_dim, act_dim, config.hidden);
        let target_params = params.clone();
        let mk = |lr: f32| {
            if config.use_mpi_adam {
                AnyOptimizer::Mpi(MpiAdam::new(lr))
            } else {
                AnyOptimizer::Gpu(Adam::new(lr))
            }
        };
        Ddpg {
            actor_opt: mk(config.actor_lr),
            critic_opt: mk(config.critic_lr),
            replay: ReplayBuffer::new(config.replay_capacity),
            noise: OuNoise::new(0.15, config.noise_sigma, seed ^ 0x5eed),
            target_params,
            params,
            actor,
            critic,
            act_dim,
            config,
            rng,
            steps_since_update: 0,
        }
    }

    /// The deterministic policy's action for `obs` (no exploration, no
    /// cost accounting) — for tests.
    pub fn policy(&self, obs: &[f32]) -> Vec<f32> {
        self.actor
            .predict(&self.params, &Tensor::from_vec(1, obs.len(), obs.to_vec()))
            .data()
            .to_vec()
    }
}

impl Agent for Ddpg {
    fn kind(&self) -> AlgoKind {
        AlgoKind::Ddpg
    }

    fn act(&mut self, exec: &Executor, obs: &[f32], explore: bool) -> Action {
        exec.python(self.config.python_per_act);
        let x = Tensor::from_vec(1, obs.len(), obs.to_vec());
        let mu = exec.run(RunKind::Inference, |tape| {
            let xv = tape.constant(x.clone());
            let y = mlp_forward_frozen(
                &self.actor,
                tape,
                &self.params,
                xv,
                Activation::Relu,
                Activation::Tanh,
            );
            tape.value(y).clone()
        });
        exec.fetch(&mu);
        let mut a: Vec<f32> = mu.data().to_vec();
        if explore {
            for (v, n) in a.iter_mut().zip(self.noise.sample(self.act_dim)) {
                *v = (*v + n).clamp(-1.0, 1.0);
            }
        }
        Action::Continuous(a)
    }

    fn observe(&mut self, t: Transition) {
        self.replay.push(t);
        self.steps_since_update += 1;
    }

    fn ready_to_update(&self) -> bool {
        self.replay.len() >= self.config.warmup && self.steps_since_update >= self.config.train_freq
    }

    fn update(&mut self, exec: &Executor) {
        self.steps_since_update = 0;
        for _ in 0..self.config.gradient_steps {
            exec.python(self.config.python_per_step);
            let batch: Vec<Transition> = self
                .replay
                .sample(self.config.batch_size, &mut self.rng)
                .into_iter()
                .cloned()
                .collect();
            let obs = obs_batch(batch.iter());
            let next_obs = next_obs_batch(batch.iter());
            let actions = action_batch(batch.iter());
            let rewards = reward_batch(batch.iter());
            let not_done = not_done_batch(batch.iter());
            exec.feed(obs.byte_size() + next_obs.byte_size() + actions.byte_size());

            // Critic update.
            let gamma = self.config.gamma;
            let (actor, critic, params, target_params) =
                (&self.actor, &self.critic, &self.params, &self.target_params);
            let critic_grads = exec.run(RunKind::Backprop, |tape| {
                let nx = tape.constant(next_obs.clone());
                let a_next = mlp_forward_frozen(
                    actor,
                    tape,
                    target_params,
                    nx,
                    Activation::Relu,
                    Activation::Tanh,
                );
                let q_next = critic.forward_frozen(tape, target_params, nx, a_next);
                let q_next_val = tape.value(q_next).clone();
                let y: Vec<f32> = (0..q_next_val.rows())
                    .map(|r| rewards.at(r, 0) + gamma * not_done.at(r, 0) * q_next_val.at(r, 0))
                    .collect();
                let y = tape.constant(Tensor::from_vec(y.len(), 1, y));
                let ob = tape.constant(obs.clone());
                let av = tape.constant(actions.clone());
                let q = critic.forward(tape, params, ob, av);
                let loss = tape.mse(q, y);
                tape.backward(loss)
            });
            // stable-baselines applies gradients in its own backend call
            // (part of the F.4 inefficiency); MpiAdam makes its own calls.
            self.critic_opt.step(&mut self.params, &critic_grads, Some(exec));

            // Actor update: maximize Q(s, π(s)) through a frozen critic.
            let (actor, critic, params) = (&self.actor, &self.critic, &self.params);
            let actor_grads = exec.run(RunKind::Backprop, |tape| {
                let ob = tape.constant(obs.clone());
                let a = actor.forward(tape, params, ob);
                let q = critic.forward_frozen(tape, params, ob, a);
                let mean_q = tape.mean(q);
                let loss = tape.scale(mean_q, -1.0);
                tape.backward(loss)
            });
            self.actor_opt.step(&mut self.params, &actor_grads, Some(exec));

            // Target update in its own backend call (another F.4 symptom:
            // "copying network weights to a target network executes in
            // separate Backend calls").
            self.target_params.soft_update_from(&self.params, self.config.tau);
            exec.backend_call(|ex| {
                for pid in self.actor.param_ids().into_iter().chain(self.critic.param_ids()) {
                    ex.kernel("target_soft_update", self.params.get(pid).len() as f64 * 3.0);
                }
            });
        }
    }

    fn episode_end(&mut self) {
        self.noise.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_executor;
    use rlscope_sim::hooks::NativeLib;

    fn config() -> DdpgConfig {
        DdpgConfig {
            warmup: 16,
            batch_size: 8,
            train_freq: 16,
            gradient_steps: 2,
            hidden: 16,
            ..DdpgConfig::default()
        }
    }

    fn fill(agent: &mut Ddpg, n: usize) {
        for i in 0..n {
            agent.observe(Transition {
                obs: vec![0.1, 0.2],
                action: Action::Continuous(vec![0.3]),
                reward: (i % 3) as f32 - 1.0,
                next_obs: vec![0.2, 0.1],
                done: i % 10 == 9,
            });
        }
    }

    #[test]
    fn actions_are_bounded() {
        let (exec, _, _) = test_executor();
        let mut agent = Ddpg::new(2, 1, config(), 1);
        for _ in 0..10 {
            let a = agent.act(&exec, &[0.5, -0.5], true);
            assert!(a.continuous().iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn update_runs_and_moves_targets() {
        let (exec, _, _) = test_executor();
        let mut agent = Ddpg::new(2, 1, config(), 1);
        fill(&mut agent, 16);
        let target_before = agent.target_params.clone();
        assert!(agent.ready_to_update());
        agent.update(&exec);
        assert_ne!(agent.target_params, target_before, "targets never updated");
    }

    #[test]
    fn mpi_adam_issues_memcpys_gpu_adam_does_not() {
        let run = |mpi: bool| {
            let (exec, _, cuda) = test_executor();
            let mut cfg = config();
            cfg.use_mpi_adam = mpi;
            cfg.gradient_steps = 1;
            let mut agent = Ddpg::new(2, 1, cfg, 1);
            fill(&mut agent, 16);
            agent.update(&exec);
            let memcpys = cuda.borrow().counts().memcpys;
            memcpys
        };
        let with_mpi = run(true);
        let without = run(false);
        // Each MpiAdam step: 2×D2H + 1×H2D per optimizer (actor + critic).
        assert!(with_mpi >= without + 6, "mpi={with_mpi} gpu={without}");
    }

    #[test]
    fn mpi_adam_makes_more_backend_transitions() {
        let run = |mpi: bool| {
            let (exec, py, _) = test_executor();
            let mut cfg = config();
            cfg.use_mpi_adam = mpi;
            cfg.gradient_steps = 1;
            let mut agent = Ddpg::new(2, 1, cfg, 1);
            fill(&mut agent, 16);
            agent.update(&exec);
            let transitions = py.borrow().transition_count(NativeLib::Backend);
            transitions
        };
        assert!(run(true) > run(false));
    }

    #[test]
    fn exploration_noise_perturbs_actions() {
        let (exec, _, _) = test_executor();
        let mut agent = Ddpg::new(2, 1, config(), 1);
        let greedy = agent.act(&exec, &[0.5, -0.5], false);
        // Warm the OU process, then compare.
        let mut diff = 0.0f32;
        for _ in 0..5 {
            let noisy = agent.act(&exec, &[0.5, -0.5], true);
            diff += (noisy.continuous()[0] - greedy.continuous()[0]).abs();
        }
        assert!(diff > 1e-4, "noise had no effect");
        agent.episode_end(); // resets noise without panic
    }

    #[test]
    fn critic_learns_constant_reward_value() {
        // With gamma=0 and constant reward 1, Q should move toward 1.
        let (exec, _, _) = test_executor();
        let mut cfg = config();
        cfg.gamma = 0.0;
        cfg.use_mpi_adam = false;
        cfg.critic_lr = 5e-3;
        cfg.gradient_steps = 30;
        let mut agent = Ddpg::new(2, 1, cfg, 2);
        for _ in 0..64 {
            agent.observe(Transition {
                obs: vec![0.1, 0.2],
                action: Action::Continuous(vec![0.0]),
                reward: 1.0,
                next_obs: vec![0.1, 0.2],
                done: false,
            });
        }
        let q_before = {
            let mut tape = Tape::new();
            let ob = tape.constant(Tensor::from_vec(1, 2, vec![0.1, 0.2]));
            let av = tape.constant(Tensor::from_vec(1, 1, vec![0.0]));
            let q = agent.critic.forward(&mut tape, &agent.params, ob, av);
            tape.value(q).item()
        };
        agent.update(&exec);
        agent.steps_since_update = agent.config.train_freq;
        agent.update(&exec);
        let q_after = {
            let mut tape = Tape::new();
            let ob = tape.constant(Tensor::from_vec(1, 2, vec![0.1, 0.2]));
            let av = tape.constant(Tensor::from_vec(1, 1, vec![0.0]));
            let q = agent.critic.forward(&mut tape, &agent.params, ob, av);
            tape.value(q).item()
        };
        assert!(
            (q_after - 1.0).abs() < (q_before - 1.0).abs(),
            "critic did not move toward target: before {q_before}, after {q_after}"
        );
    }
}
