//! Deep Q-Network (Mnih et al. 2015) — the paper's walkthrough example
//! (§2.1): ε-greedy inference, simulation, and minibatch backpropagation
//! from a replay buffer, with a periodically synced target network.

use crate::buffer::{ReplayBuffer, Transition};
use crate::common::{
    mlp_forward_frozen, next_obs_batch, not_done_batch, obs_batch, reward_batch, Agent, AlgoKind,
};
use rlscope_backend::prelude::*;
use rlscope_envs::Action;
use rlscope_sim::rng::SimRng;
use rlscope_sim::time::DurationNs;

/// DQN hyperparameters.
#[derive(Debug, Clone)]
pub struct DqnConfig {
    /// Hidden layer sizes of the Q-network.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor.
    pub gamma: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Steps collected before learning starts.
    pub warmup: usize,
    /// Environment steps between update phases.
    pub train_freq: usize,
    /// Gradient steps per update phase.
    pub gradient_steps: usize,
    /// Target-network sync interval, in gradient steps.
    pub target_sync: usize,
    /// Exploration rate.
    pub epsilon: f32,
    /// Python orchestration cost per action selection.
    pub python_per_act: DurationNs,
    /// Python orchestration cost per gradient step (replay sampling,
    /// batch assembly).
    pub python_per_step: DurationNs,
}

impl Default for DqnConfig {
    fn default() -> Self {
        DqnConfig {
            hidden: vec![64, 64],
            lr: 1e-3,
            gamma: 0.99,
            batch_size: 32,
            replay_capacity: 10_000,
            warmup: 64,
            train_freq: 4,
            gradient_steps: 1,
            target_sync: 100,
            epsilon: 0.1,
            python_per_act: DurationNs::from_micros(35),
            python_per_step: DurationNs::from_micros(120),
        }
    }
}

/// A DQN agent over a discrete action space.
#[derive(Debug)]
pub struct Dqn {
    config: DqnConfig,
    n_actions: usize,
    params: Params,
    target_params: Params,
    q: Mlp,
    opt: Adam,
    replay: ReplayBuffer,
    rng: SimRng,
    steps_since_update: usize,
    total_updates: u64,
    total_steps: u64,
}

impl Dqn {
    /// Creates a DQN agent for `obs_dim`-dimensional observations and
    /// `n_actions` discrete actions.
    pub fn new(obs_dim: usize, n_actions: usize, config: DqnConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut params = Params::new();
        let mut sizes = vec![obs_dim];
        sizes.extend(&config.hidden);
        sizes.push(n_actions);
        let q = Mlp::new(&mut params, &mut rng, "q", &sizes, Activation::Relu, Activation::Linear);
        let target_params = params.clone();
        let replay = ReplayBuffer::new(config.replay_capacity);
        let opt = Adam::new(config.lr);
        Dqn {
            config,
            n_actions,
            params,
            target_params,
            q,
            opt,
            replay,
            rng,
            steps_since_update: 0,
            total_updates: 0,
            total_steps: 0,
        }
    }

    /// Gradient updates performed so far.
    pub fn total_updates(&self) -> u64 {
        self.total_updates
    }

    /// Greedy Q-values for an observation (for tests).
    pub fn q_values(&self, obs: &[f32]) -> Tensor {
        self.q.predict(&self.params, &Tensor::from_vec(1, obs.len(), obs.to_vec()))
    }
}

impl Agent for Dqn {
    fn kind(&self) -> AlgoKind {
        AlgoKind::Dqn
    }

    fn act(&mut self, exec: &Executor, obs: &[f32], explore: bool) -> Action {
        exec.python(self.config.python_per_act);
        let x = Tensor::from_vec(1, obs.len(), obs.to_vec());
        let qvals = exec.run(RunKind::Inference, |tape| {
            let xv = tape.constant(x.clone());
            let y = mlp_forward_frozen(
                &self.q,
                tape,
                &self.params,
                xv,
                Activation::Relu,
                Activation::Linear,
            );
            tape.value(y).clone()
        });
        exec.fetch(&qvals);
        if explore && self.rng.chance(self.config.epsilon as f64) {
            Action::Discrete(self.rng.below(self.n_actions))
        } else {
            Action::Discrete(qvals.argmax())
        }
    }

    fn observe(&mut self, t: Transition) {
        self.replay.push(t);
        self.steps_since_update += 1;
        self.total_steps += 1;
    }

    fn ready_to_update(&self) -> bool {
        self.replay.len() >= self.config.warmup && self.steps_since_update >= self.config.train_freq
    }

    fn update(&mut self, exec: &Executor) {
        self.steps_since_update = 0;
        for _ in 0..self.config.gradient_steps {
            exec.python(self.config.python_per_step);
            let batch: Vec<Transition> = self
                .replay
                .sample(self.config.batch_size, &mut self.rng)
                .into_iter()
                .cloned()
                .collect();
            let obs = obs_batch(batch.iter());
            let next_obs = next_obs_batch(batch.iter());
            let rewards = reward_batch(batch.iter());
            let not_done = not_done_batch(batch.iter());
            exec.feed(obs.byte_size() + next_obs.byte_size());

            let gamma = self.config.gamma;
            let (q_net, params, target_params, n_actions) =
                (&self.q, &self.params, &self.target_params, self.n_actions);
            let grads = exec.run(RunKind::Backprop, |tape| {
                // Target: r + γ max_a' Q_target(s', a').
                let nx = tape.constant(next_obs.clone());
                let qt = mlp_forward_frozen(
                    q_net,
                    tape,
                    target_params,
                    nx,
                    Activation::Relu,
                    Activation::Linear,
                );
                let qt_val = tape.value(qt).clone();
                let mut y = Vec::with_capacity(qt_val.rows());
                for r in 0..qt_val.rows() {
                    let max_q = qt_val.row(r).data().iter().cloned().fold(f32::MIN, f32::max);
                    y.push(rewards.at(r, 0) + gamma * not_done.at(r, 0) * max_q);
                }
                let y = tape.constant(Tensor::from_vec(y.len(), 1, y));

                // Predicted Q for the actions taken (via one-hot mask).
                let ob = tape.constant(obs.clone());
                let q = q_net.forward(tape, params, ob);
                let mut mask = vec![0.0f32; batch.len() * n_actions];
                for (i, t) in batch.iter().enumerate() {
                    mask[i * n_actions + t.action.discrete()] = 1.0;
                }
                let mask = tape.constant(Tensor::from_vec(batch.len(), n_actions, mask));
                let selected = tape.mul(q, mask);
                let ones = tape.constant(Tensor::from_vec(n_actions, 1, vec![1.0; n_actions]));
                let q_sel = tape.matmul(selected, ones);
                let loss = tape.mse(q_sel, y);
                tape.backward(loss)
            });
            self.opt.step(&mut self.params, &grads, Some(exec));
            self.total_updates += 1;
            assert!(self.config.target_sync > 0, "target_sync must be nonzero");
            if self.total_updates.is_multiple_of(self.config.target_sync as u64) {
                self.target_params.copy_from(&self.params);
                exec.backend_call(|ex| {
                    for pid in self.q.param_ids() {
                        ex.kernel("target_copy", self.params.get(pid).len() as f64);
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_executor;

    fn config() -> DqnConfig {
        DqnConfig { warmup: 16, batch_size: 8, target_sync: 4, ..DqnConfig::default() }
    }

    #[test]
    fn acts_within_action_space() {
        let (exec, _, _) = test_executor();
        let mut agent = Dqn::new(4, 3, config(), 1);
        for _ in 0..20 {
            match agent.act(&exec, &[0.1, 0.2, 0.3, 0.4], true) {
                Action::Discrete(a) => assert!(a < 3),
                Action::Continuous(_) => panic!("DQN must act discretely"),
            }
        }
    }

    #[test]
    fn ready_after_warmup_and_train_freq() {
        let (exec, _, _) = test_executor();
        let mut agent = Dqn::new(2, 2, config(), 1);
        let t = Transition {
            obs: vec![0.0, 0.0],
            action: Action::Discrete(0),
            reward: 0.0,
            next_obs: vec![0.0, 0.0],
            done: false,
        };
        for _ in 0..15 {
            agent.observe(t.clone());
        }
        assert!(!agent.ready_to_update());
        agent.observe(t.clone());
        assert!(agent.ready_to_update());
        agent.update(&exec);
        assert!(!agent.ready_to_update());
        assert_eq!(agent.total_updates(), 1);
    }

    #[test]
    fn learns_a_trivial_contextual_bandit() {
        // Reward 1 for action == sign of obs, else 0. Q-values must order
        // correctly after training.
        let (exec, _, _) = test_executor();
        let mut cfg = config();
        cfg.epsilon = 0.3;
        cfg.gamma = 0.0; // bandit
        cfg.train_freq = 1;
        let mut agent = Dqn::new(1, 2, cfg, 3);
        let mut rng = SimRng::seed_from_u64(17);
        for _ in 0..600 {
            let x = if rng.chance(0.5) { 1.0 } else { -1.0 };
            let a = agent.act(&exec, &[x], true).discrete();
            let correct = if x > 0.0 { 1 } else { 0 };
            let reward = if a == correct { 1.0 } else { 0.0 };
            agent.observe(Transition {
                obs: vec![x],
                action: Action::Discrete(a),
                reward,
                next_obs: vec![x],
                done: true,
            });
            if agent.ready_to_update() {
                agent.update(&exec);
            }
        }
        let q_pos = agent.q_values(&[1.0]);
        let q_neg = agent.q_values(&[-1.0]);
        assert!(q_pos.data()[1] > q_pos.data()[0], "q(+1)={:?}", q_pos.data());
        assert!(q_neg.data()[0] > q_neg.data()[1], "q(-1)={:?}", q_neg.data());
    }

    #[test]
    fn update_touches_gpu_and_python() {
        let (exec, py, cuda) = test_executor();
        let mut agent = Dqn::new(2, 2, config(), 1);
        let t = Transition {
            obs: vec![0.0, 0.0],
            action: Action::Discrete(0),
            reward: 1.0,
            next_obs: vec![0.0, 0.0],
            done: false,
        };
        for _ in 0..16 {
            agent.observe(t.clone());
        }
        let launches_before = cuda.borrow().counts().launches;
        agent.update(&exec);
        assert!(cuda.borrow().counts().launches > launches_before);
        assert!(py.borrow().transition_count(rlscope_sim::hooks::NativeLib::Backend) > 0);
    }
}
