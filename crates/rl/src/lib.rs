//! # rlscope-rl — reinforcement-learning algorithms over the modelled stack
//!
//! Real implementations (actual tensors, actual gradients, actual learning
//! on the [`rlscope_envs`] environments) of the six algorithms the RL-Scope
//! paper surveys:
//!
//! | Algorithm | Policy class | Data regime | Paper role |
//! |---|---|---|---|
//! | [`Dqn`] | discrete Q | off-policy | §2.1 walkthrough example |
//! | [`Ddpg`] | deterministic | off-policy | Fig 4b/5; F.4 MPI-Adam quirk, F.5 `train_freq`=100 |
//! | [`Td3`] | deterministic | off-policy | Fig 4a; F.5 `train_freq`=1000 |
//! | [`Sac`] | stochastic | off-policy | Fig 5 |
//! | [`A2c`] | stochastic | on-policy | Fig 5; most simulation-bound (F.10) |
//! | [`Ppo`] | stochastic | on-policy | Fig 5/7 survey algorithm |
//!
//! All agents implement [`Agent`]; the workload layer drives them through
//! the annotated inference / simulation / backpropagation loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod a2c;
pub mod buffer;
pub mod common;
pub mod ddpg;
pub mod dqn;
pub mod noise;
pub mod onpolicy;
pub mod ppo;
pub mod sac;
pub mod td3;
#[cfg(test)]
pub(crate) mod testutil;

pub use a2c::{A2c, A2cConfig};
pub use buffer::{ReplayBuffer, RolloutBuffer, RolloutStep, Transition};
pub use common::{Agent, AlgoKind};
pub use ddpg::{Ddpg, DdpgConfig};
pub use dqn::{Dqn, DqnConfig};
pub use noise::{ActionNoise, GaussianNoise, OuNoise};
pub use ppo::{Ppo, PpoConfig};
pub use sac::{Sac, SacConfig};
pub use td3::{Td3, Td3Config};
