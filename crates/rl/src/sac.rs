//! Soft Actor-Critic (off-policy, stochastic policy, entropy-regularized).
//!
//! Structural skeleton of SAC: a Gaussian actor with fixed standard
//! deviation, twin critics, and an entropy-regularized objective. What the
//! cross-stack study needs from SAC is its *execution shape* — off-policy
//! replay, twin-critic backprop, per-step stochastic inference — which this
//! implementation reproduces with real tensor math.

use crate::buffer::{ReplayBuffer, Transition};
use crate::common::{
    action_batch, gaussian_logp_host, mlp_forward_frozen, next_obs_batch, not_done_batch,
    obs_batch, reward_batch, Agent, AlgoKind, TwoHeadCritic,
};
use rlscope_backend::prelude::*;
use rlscope_envs::Action;
use rlscope_sim::rng::SimRng;
use rlscope_sim::time::DurationNs;

/// SAC hyperparameters.
#[derive(Debug, Clone)]
pub struct SacConfig {
    /// Hidden width.
    pub hidden: usize,
    /// Learning rate (shared).
    pub lr: f32,
    /// Discount factor.
    pub gamma: f32,
    /// Polyak coefficient.
    pub tau: f32,
    /// Entropy temperature.
    pub alpha: f32,
    /// Policy standard deviation (fixed).
    pub std: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Replay capacity.
    pub replay_capacity: usize,
    /// Steps before learning starts.
    pub warmup: usize,
    /// Simulator steps between update phases.
    pub train_freq: usize,
    /// Gradient steps per update phase.
    pub gradient_steps: usize,
    /// Python orchestration per action selection.
    pub python_per_act: DurationNs,
    /// Python orchestration per gradient step.
    pub python_per_step: DurationNs,
}

impl Default for SacConfig {
    fn default() -> Self {
        SacConfig {
            hidden: 64,
            lr: 3e-4,
            gamma: 0.99,
            tau: 0.005,
            alpha: 0.2,
            std: 0.3,
            batch_size: 64,
            replay_capacity: 50_000,
            warmup: 128,
            train_freq: 64,
            gradient_steps: 64,
            python_per_act: DurationNs::from_micros(45),
            python_per_step: DurationNs::from_micros(160),
        }
    }
}

/// A SAC agent.
#[derive(Debug)]
pub struct Sac {
    config: SacConfig,
    act_dim: usize,
    params: Params,
    target_params: Params,
    actor: Mlp,
    critic1: TwoHeadCritic,
    critic2: TwoHeadCritic,
    actor_opt: Adam,
    critic_opt: Adam,
    replay: ReplayBuffer,
    rng: SimRng,
    steps_since_update: usize,
}

impl Sac {
    /// Creates a SAC agent.
    pub fn new(obs_dim: usize, act_dim: usize, config: SacConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut params = Params::new();
        let actor = Mlp::new(
            &mut params,
            &mut rng,
            "actor",
            &[obs_dim, config.hidden, config.hidden, act_dim],
            Activation::Relu,
            Activation::Tanh,
        );
        let critic1 =
            TwoHeadCritic::new(&mut params, &mut rng, "critic1", obs_dim, act_dim, config.hidden);
        let critic2 =
            TwoHeadCritic::new(&mut params, &mut rng, "critic2", obs_dim, act_dim, config.hidden);
        let target_params = params.clone();
        Sac {
            actor_opt: Adam::new(config.lr),
            critic_opt: Adam::new(config.lr),
            replay: ReplayBuffer::new(config.replay_capacity),
            target_params,
            params,
            actor,
            critic1,
            critic2,
            act_dim,
            config,
            rng,
            steps_since_update: 0,
        }
    }
}

impl Agent for Sac {
    fn kind(&self) -> AlgoKind {
        AlgoKind::Sac
    }

    fn act(&mut self, exec: &Executor, obs: &[f32], explore: bool) -> Action {
        exec.python(self.config.python_per_act);
        let x = Tensor::from_vec(1, obs.len(), obs.to_vec());
        let mu = exec.run(RunKind::Inference, |tape| {
            let xv = tape.constant(x.clone());
            let y = mlp_forward_frozen(
                &self.actor,
                tape,
                &self.params,
                xv,
                Activation::Relu,
                Activation::Tanh,
            );
            tape.value(y).clone()
        });
        exec.fetch(&mu);
        let a: Vec<f32> = if explore {
            mu.data()
                .iter()
                .map(|&m| {
                    (m + self.rng.normal_with(0.0, self.config.std as f64) as f32).clamp(-1.0, 1.0)
                })
                .collect()
        } else {
            mu.data().to_vec()
        };
        Action::Continuous(a)
    }

    fn observe(&mut self, t: Transition) {
        self.replay.push(t);
        self.steps_since_update += 1;
    }

    fn ready_to_update(&self) -> bool {
        self.replay.len() >= self.config.warmup && self.steps_since_update >= self.config.train_freq
    }

    fn update(&mut self, exec: &Executor) {
        self.steps_since_update = 0;
        for _ in 0..self.config.gradient_steps {
            exec.python(self.config.python_per_step);
            let batch: Vec<Transition> = self
                .replay
                .sample(self.config.batch_size, &mut self.rng)
                .into_iter()
                .cloned()
                .collect();
            let obs = obs_batch(batch.iter());
            let next_obs = next_obs_batch(batch.iter());
            let actions = action_batch(batch.iter());
            let rewards = reward_batch(batch.iter());
            let not_done = not_done_batch(batch.iter());
            exec.feed(obs.byte_size() + next_obs.byte_size() + actions.byte_size());

            // Sample next actions from the target policy (host-side noise).
            let (gamma, alpha, std) = (self.config.gamma, self.config.alpha, self.config.std);
            let mut next_noise = vec![0.0f32; batch.len() * self.act_dim];
            for v in &mut next_noise {
                *v = self.rng.normal_with(0.0, std as f64) as f32;
            }
            let next_noise = Tensor::from_vec(batch.len(), self.act_dim, next_noise);

            let (actor, c1, c2, params, target_params) =
                (&self.actor, &self.critic1, &self.critic2, &self.params, &self.target_params);
            let act_dim = self.act_dim;
            let critic_grads = exec.run(RunKind::Backprop, |tape| {
                let nx = tape.constant(next_obs.clone());
                let mu_next = mlp_forward_frozen(
                    actor,
                    tape,
                    target_params,
                    nx,
                    Activation::Relu,
                    Activation::Tanh,
                );
                let noise = tape.constant(next_noise.clone());
                let a_next = tape.add(mu_next, noise);
                let a_next = tape.clamp(a_next, -1.0, 1.0);
                let q1t = c1.forward_frozen(tape, target_params, nx, a_next);
                let q2t = c2.forward_frozen(tape, target_params, nx, a_next);
                let qmin = tape.minimum(q1t, q2t);
                // Soft target: y = r + γ(1−d)(min Q_t − α·logπ).
                let qmin_val = tape.value(qmin).clone();
                let mu_val = tape.value(mu_next).clone();
                let a_val = tape.value(a_next).clone();
                let y: Vec<f32> = (0..qmin_val.rows())
                    .map(|r| {
                        let logp =
                            gaussian_logp_host(mu_val.row(r).data(), a_val.row(r).data(), std)
                                / act_dim as f32;
                        rewards.at(r, 0)
                            + gamma * not_done.at(r, 0) * (qmin_val.at(r, 0) - alpha * logp)
                    })
                    .collect();
                let y = tape.constant(Tensor::from_vec(y.len(), 1, y));
                let ob = tape.constant(obs.clone());
                let av = tape.constant(actions.clone());
                let q1 = c1.forward(tape, params, ob, av);
                let q2 = c2.forward(tape, params, ob, av);
                let l1 = tape.mse(q1, y);
                let l2 = tape.mse(q2, y);
                let loss = tape.add(l1, l2);
                tape.backward(loss)
            });
            self.critic_opt.step(&mut self.params, &critic_grads, Some(exec));

            // Actor: maximize E[Q(s, π(s)) − α·(pseudo-entropy)].
            let (actor, c1, params) = (&self.actor, &self.critic1, &self.params);
            let actor_grads = exec.run(RunKind::Backprop, |tape| {
                let ob = tape.constant(obs.clone());
                let mu = actor.forward(tape, params, ob);
                let q = c1.forward_frozen(tape, params, ob, mu);
                let mean_q = tape.mean(q);
                let neg_q = tape.scale(mean_q, -1.0);
                // Entropy surrogate: α·mean(μ²) discourages saturation.
                let musq = tape.mul(mu, mu);
                let ent = tape.mean(musq);
                let ent = tape.scale(ent, alpha);
                let loss = tape.add(neg_q, ent);
                tape.backward(loss)
            });
            self.actor_opt.step(&mut self.params, &actor_grads, Some(exec));

            self.target_params.soft_update_from(&self.params, self.config.tau);
            exec.backend_call(|ex| {
                for pid in self.critic1.param_ids().into_iter().chain(self.critic2.param_ids()) {
                    ex.kernel("target_soft_update", self.params.get(pid).len() as f64 * 3.0);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_executor;

    fn config() -> SacConfig {
        SacConfig {
            warmup: 16,
            batch_size: 8,
            train_freq: 8,
            gradient_steps: 2,
            hidden: 16,
            ..SacConfig::default()
        }
    }

    fn fill(agent: &mut Sac, n: usize) {
        for i in 0..n {
            agent.observe(Transition {
                obs: vec![0.1, 0.2],
                action: Action::Continuous(vec![0.3]),
                reward: (i % 2) as f32,
                next_obs: vec![0.2, 0.1],
                done: false,
            });
        }
    }

    #[test]
    fn stochastic_vs_deterministic_action() {
        let (exec, _, _) = test_executor();
        let mut agent = Sac::new(2, 1, config(), 1);
        let det1 = agent.act(&exec, &[0.1, 0.2], false);
        let det2 = agent.act(&exec, &[0.1, 0.2], false);
        assert_eq!(det1, det2, "deterministic action not repeatable");
        let sto1 = agent.act(&exec, &[0.1, 0.2], true);
        let sto2 = agent.act(&exec, &[0.1, 0.2], true);
        assert_ne!(sto1, sto2, "stochastic actions identical");
    }

    #[test]
    fn update_changes_actor_and_critics() {
        let (exec, _, _) = test_executor();
        let mut agent = Sac::new(2, 1, config(), 1);
        fill(&mut agent, 16);
        let before = agent.params.clone();
        agent.update(&exec);
        assert_ne!(agent.params, before, "no parameters changed");
    }

    #[test]
    fn update_cadence_follows_train_freq() {
        let (exec, _, _) = test_executor();
        let mut agent = Sac::new(2, 1, config(), 1);
        fill(&mut agent, 16);
        assert!(agent.ready_to_update());
        agent.update(&exec);
        assert!(!agent.ready_to_update());
        fill(&mut agent, 8);
        assert!(agent.ready_to_update());
    }

    #[test]
    fn actions_bounded() {
        let (exec, _, _) = test_executor();
        let mut agent = Sac::new(2, 1, config(), 1);
        for _ in 0..10 {
            let a = agent.act(&exec, &[2.0, -2.0], true);
            assert!(a.continuous().iter().all(|v| v.abs() <= 1.0));
        }
    }
}
