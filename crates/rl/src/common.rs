//! The agent interface and shared helpers for building training batches.

use crate::buffer::Transition;
use rlscope_backend::prelude::*;
use rlscope_envs::Action;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The RL algorithms the survey covers (paper Figures 4 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgoKind {
    /// Deep Q-Network (discrete actions).
    Dqn,
    /// Deep Deterministic Policy Gradient (off-policy).
    Ddpg,
    /// Twin Delayed DDPG (off-policy).
    Td3,
    /// Soft Actor-Critic (off-policy).
    Sac,
    /// Advantage Actor-Critic (on-policy).
    A2c,
    /// Proximal Policy Optimization (on-policy).
    Ppo2,
}

impl AlgoKind {
    /// Whether the algorithm learns from replayed (off-policy) experience.
    pub fn is_off_policy(self) -> bool {
        matches!(self, AlgoKind::Dqn | AlgoKind::Ddpg | AlgoKind::Td3 | AlgoKind::Sac)
    }

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Dqn => "DQN",
            AlgoKind::Ddpg => "DDPG",
            AlgoKind::Td3 => "TD3",
            AlgoKind::Sac => "SAC",
            AlgoKind::A2c => "A2C",
            AlgoKind::Ppo2 => "PPO2",
        }
    }
}

impl fmt::Display for AlgoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A reinforcement-learning agent driven by the training loop.
///
/// The workload layer wraps each method in the corresponding RL-Scope
/// operation annotation: `act` → inference, environment stepping →
/// simulation, `update` → backpropagation.
pub trait Agent {
    /// The algorithm implemented.
    fn kind(&self) -> AlgoKind;
    /// Selects an action for `obs`; `explore` enables exploration noise.
    fn act(&mut self, exec: &Executor, obs: &[f32], explore: bool) -> Action;
    /// Records a transition.
    fn observe(&mut self, t: Transition);
    /// True when enough experience has accumulated for [`Agent::update`].
    fn ready_to_update(&self) -> bool;
    /// Runs one update phase (one or more gradient steps).
    fn update(&mut self, exec: &Executor);
    /// Notifies the agent of an episode boundary.
    fn episode_end(&mut self) {}
}

/// Stacks observations from transitions into a `[batch, obs_dim]` tensor.
pub fn obs_batch<'a>(batch: impl Iterator<Item = &'a Transition>) -> Tensor {
    let rows: Vec<Tensor> = batch.map(|t| Tensor::vector(t.obs.clone())).collect();
    Tensor::stack_rows(&rows)
}

/// Stacks next-observations into a `[batch, obs_dim]` tensor.
pub fn next_obs_batch<'a>(batch: impl Iterator<Item = &'a Transition>) -> Tensor {
    let rows: Vec<Tensor> = batch.map(|t| Tensor::vector(t.next_obs.clone())).collect();
    Tensor::stack_rows(&rows)
}

/// Stacks continuous actions into a `[batch, act_dim]` tensor.
///
/// # Panics
///
/// Panics if any action is discrete.
pub fn action_batch<'a>(batch: impl Iterator<Item = &'a Transition>) -> Tensor {
    let rows: Vec<Tensor> = batch.map(|t| Tensor::vector(t.action.continuous().to_vec())).collect();
    Tensor::stack_rows(&rows)
}

/// Column tensor of rewards.
pub fn reward_batch<'a>(batch: impl Iterator<Item = &'a Transition>) -> Tensor {
    let data: Vec<f32> = batch.map(|t| t.reward).collect();
    Tensor::from_vec(data.len(), 1, data)
}

/// Column tensor of `1 - done` masks.
pub fn not_done_batch<'a>(batch: impl Iterator<Item = &'a Transition>) -> Tensor {
    let data: Vec<f32> = batch.map(|t| if t.done { 0.0 } else { 1.0 }).collect();
    Tensor::from_vec(data.len(), 1, data)
}

/// Records the per-row Gaussian log-density (up to an additive constant)
/// of `actions` under mean `mu` and fixed standard deviation `std`:
/// `-0.5 * Σ_dims ((a - μ)/σ)²`, shape `[batch, 1]`.
pub fn gaussian_row_logp(
    tape: &mut Tape<'_>,
    mu: VarId,
    actions: VarId,
    std: f32,
    act_dim: usize,
) -> VarId {
    let diff = tape.sub(actions, mu);
    let scaled = tape.scale(diff, 1.0 / std);
    let sq = tape.mul(scaled, scaled);
    let neg = tape.scale(sq, -0.5);
    let ones = tape.constant(Tensor::from_vec(act_dim, 1, vec![1.0; act_dim]));
    tape.matmul(neg, ones)
}

/// Host-side Gaussian log-density matching [`gaussian_row_logp`].
pub fn gaussian_logp_host(mu: &[f32], action: &[f32], std: f32) -> f32 {
    mu.iter()
        .zip(action)
        .map(|(m, a)| {
            let z = (a - m) / std;
            -0.5 * z * z
        })
        .sum()
}

/// The critic head used by DDPG/TD3/SAC: obs and action enter through
/// separate first-layer weight matrices whose outputs are summed (this
/// keeps gradients flowing from Q back into the actor without a concat op).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TwoHeadCritic {
    w_obs: usize,
    w_act: usize,
    b0: usize,
    tail: Mlp,
    hidden: usize,
}

impl TwoHeadCritic {
    /// Builds a critic with first layer width `hidden` and an MLP tail.
    pub fn new(
        params: &mut Params,
        rng: &mut rlscope_sim::rng::SimRng,
        name: &str,
        obs_dim: usize,
        act_dim: usize,
        hidden: usize,
    ) -> Self {
        let mk = |rng: &mut rlscope_sim::rng::SimRng, rows: usize, cols: usize| {
            let bound = (6.0 / (rows + cols) as f64).sqrt();
            let data: Vec<f32> =
                (0..rows * cols).map(|_| rng.uniform_range(-bound, bound) as f32).collect();
            Tensor::from_vec(rows, cols, data)
        };
        let w_obs = params.add(format!("{name}/w_obs"), mk(rng, obs_dim, hidden));
        let w_act = params.add(format!("{name}/w_act"), mk(rng, act_dim, hidden));
        let b0 = params.add(format!("{name}/b0"), Tensor::vector(vec![0.0; hidden]));
        let tail = Mlp::new(
            params,
            rng,
            &format!("{name}/tail"),
            &[hidden, hidden, 1],
            Activation::Relu,
            Activation::Linear,
        );
        TwoHeadCritic { w_obs, w_act, b0, tail, hidden }
    }

    /// All parameter ids of this critic.
    pub fn param_ids(&self) -> Vec<usize> {
        let mut ids = vec![self.w_obs, self.w_act, self.b0];
        ids.extend(self.tail.param_ids());
        ids
    }

    /// Q(obs, act) with trainable parameters.
    pub fn forward(&self, tape: &mut Tape<'_>, params: &Params, obs: VarId, act: VarId) -> VarId {
        self.forward_impl(tape, params, obs, act, true)
    }

    /// Q(obs, act) with parameters entered as constants (no gradients) —
    /// used when optimizing the actor through a frozen critic, and for
    /// target networks.
    pub fn forward_frozen(
        &self,
        tape: &mut Tape<'_>,
        params: &Params,
        obs: VarId,
        act: VarId,
    ) -> VarId {
        self.forward_impl(tape, params, obs, act, false)
    }

    fn forward_impl(
        &self,
        tape: &mut Tape<'_>,
        params: &Params,
        obs: VarId,
        act: VarId,
        trainable: bool,
    ) -> VarId {
        let leaf = |tape: &mut Tape<'_>, pid: usize| {
            if trainable {
                tape.param(pid, params.get(pid).clone())
            } else {
                tape.constant(params.get(pid).clone())
            }
        };
        let wo = leaf(tape, self.w_obs);
        let wa = leaf(tape, self.w_act);
        let b = leaf(tape, self.b0);
        let ho = tape.matmul(obs, wo);
        let ha = tape.matmul(act, wa);
        let h = tape.add(ho, ha);
        let h = tape.add_bias(h, b);
        let h = tape.relu(h);
        if trainable {
            self.tail.forward(tape, params, h)
        } else {
            self.tail_forward_frozen(tape, params, h)
        }
    }

    fn tail_forward_frozen(&self, tape: &mut Tape<'_>, params: &Params, mut h: VarId) -> VarId {
        let ids = self.tail.param_ids();
        let last_layer = ids.len() / 2 - 1;
        for (i, pair) in ids.chunks(2).enumerate() {
            let w = tape.constant(params.get(pair[0]).clone());
            let b = tape.constant(params.get(pair[1]).clone());
            h = tape.matmul(h, w);
            h = tape.add_bias(h, b);
            if i != last_layer {
                h = tape.relu(h);
            }
        }
        h
    }
}

/// Forward an MLP with all parameters entered as constants (target nets).
pub fn mlp_forward_frozen(
    mlp: &Mlp,
    tape: &mut Tape<'_>,
    params: &Params,
    x: VarId,
    hidden: Activation,
    output: Activation,
) -> VarId {
    let ids = mlp.param_ids();
    let last_layer = ids.len() / 2 - 1;
    let mut h = x;
    for (i, pair) in ids.chunks(2).enumerate() {
        let w = tape.constant(params.get(pair[0]).clone());
        let b = tape.constant(params.get(pair[1]).clone());
        h = tape.matmul(h, w);
        h = tape.add_bias(h, b);
        let act = if i == last_layer { output } else { hidden };
        h = match act {
            Activation::Relu => tape.relu(h),
            Activation::Tanh => tape.tanh(h),
            Activation::Linear => h,
        };
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlscope_sim::rng::SimRng;

    fn transition(obs: Vec<f32>, act: Vec<f32>, reward: f32, done: bool) -> Transition {
        Transition {
            obs: obs.clone(),
            action: Action::Continuous(act),
            reward,
            next_obs: obs,
            done,
        }
    }

    #[test]
    fn batch_builders_shape() {
        let ts = [
            transition(vec![1.0, 2.0], vec![0.5], 1.0, false),
            transition(vec![3.0, 4.0], vec![-0.5], -1.0, true),
        ];
        assert_eq!(obs_batch(ts.iter()).rows(), 2);
        assert_eq!(obs_batch(ts.iter()).cols(), 2);
        assert_eq!(action_batch(ts.iter()).cols(), 1);
        assert_eq!(reward_batch(ts.iter()).data(), &[1.0, -1.0]);
        assert_eq!(not_done_batch(ts.iter()).data(), &[1.0, 0.0]);
    }

    #[test]
    fn tape_and_host_logp_agree() {
        let mu = vec![0.1, -0.2, 0.3];
        let act = vec![0.4, 0.0, -0.1];
        let std = 0.5;
        let host = gaussian_logp_host(&mu, &act, std);

        let mut tape = Tape::new();
        let muv = tape.constant(Tensor::from_vec(1, 3, mu));
        let av = tape.constant(Tensor::from_vec(1, 3, act));
        let lp = gaussian_row_logp(&mut tape, muv, av, std, 3);
        assert!((tape.value(lp).item() - host).abs() < 1e-5);
    }

    #[test]
    fn logp_is_maximized_at_the_mean() {
        let at_mean = gaussian_logp_host(&[0.5, 0.5], &[0.5, 0.5], 0.3);
        let off_mean = gaussian_logp_host(&[0.5, 0.5], &[0.9, 0.1], 0.3);
        assert!(at_mean > off_mean);
        assert_eq!(at_mean, 0.0);
    }

    #[test]
    fn two_head_critic_forward_shapes_and_grads() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut params = Params::new();
        let critic = TwoHeadCritic::new(&mut params, &mut rng, "q", 4, 2, 8);
        let mut tape = Tape::new();
        let obs = tape.constant(Tensor::from_vec(5, 4, vec![0.1; 20]));
        let act = tape.constant(Tensor::from_vec(5, 2, vec![0.2; 10]));
        let q = critic.forward(&mut tape, &params, obs, act);
        assert_eq!(tape.value(q).rows(), 5);
        assert_eq!(tape.value(q).cols(), 1);
        let loss = tape.mean(q);
        let g = tape.backward(loss);
        // Every critic parameter receives a gradient.
        let with_grads: Vec<usize> = g.params().map(|(pid, _)| pid).collect();
        for pid in critic.param_ids() {
            assert!(with_grads.contains(&pid), "missing grad for param {pid}");
        }
    }

    #[test]
    fn frozen_critic_matches_trainable_values_but_blocks_grads() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut params = Params::new();
        let critic = TwoHeadCritic::new(&mut params, &mut rng, "q", 3, 2, 8);
        let obs_t = Tensor::from_vec(2, 3, vec![0.3; 6]);
        let act_t = Tensor::from_vec(2, 2, vec![-0.1; 4]);

        let mut tape = Tape::new();
        let obs = tape.constant(obs_t.clone());
        let act = tape.constant(act_t.clone());
        let q_train = critic.forward(&mut tape, &params, obs, act);
        let train_val = tape.value(q_train).clone();

        let mut tape2 = Tape::new();
        let obs = tape2.constant(obs_t);
        let act = tape2.constant(act_t);
        let q_frozen = critic.forward_frozen(&mut tape2, &params, obs, act);
        assert_eq!(tape2.value(q_frozen), &train_val);
        let loss = tape2.mean(q_frozen);
        let g = tape2.backward(loss);
        assert_eq!(g.params().count(), 0, "frozen critic leaked gradients");
    }

    #[test]
    fn frozen_mlp_matches_trainable_values() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut params = Params::new();
        let mlp =
            Mlp::new(&mut params, &mut rng, "pi", &[3, 8, 2], Activation::Relu, Activation::Tanh);
        let x = Tensor::from_vec(4, 3, vec![0.25; 12]);
        let expected = mlp.predict(&params, &x);
        let mut tape = Tape::new();
        let xv = tape.constant(x);
        let y =
            mlp_forward_frozen(&mlp, &mut tape, &params, xv, Activation::Relu, Activation::Tanh);
        assert_eq!(tape.value(y), &expected);
    }

    #[test]
    fn algo_kind_properties() {
        assert!(AlgoKind::Ddpg.is_off_policy());
        assert!(AlgoKind::Sac.is_off_policy());
        assert!(!AlgoKind::A2c.is_off_policy());
        assert!(!AlgoKind::Ppo2.is_off_policy());
        assert_eq!(AlgoKind::Ppo2.to_string(), "PPO2");
    }
}
