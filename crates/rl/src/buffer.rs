//! Experience storage: the off-policy replay buffer and the on-policy
//! rollout buffer.
//!
//! The buffer distinction is the mechanism behind finding F.10: off-policy
//! algorithms (DDPG, SAC) re-use replayed experience and therefore spend
//! little time in the simulator, while on-policy algorithms (A2C, PPO2)
//! must collect fresh rollouts under the current policy before every
//! update — making them at least 3.5× more simulation-bound.

use rlscope_envs::Action;
use rlscope_sim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One environment transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Observation before the action.
    pub obs: Vec<f32>,
    /// The action taken.
    pub action: Action,
    /// Reward received.
    pub reward: f32,
    /// Observation after the action.
    pub next_obs: Vec<f32>,
    /// Whether the episode terminated at this step.
    pub done: bool,
}

/// A bounded ring buffer of transitions with uniform sampling — the cache
/// of experience tuples in the paper's DQN walkthrough (§2.1).
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    capacity: usize,
    data: Vec<Transition>,
    next: usize,
}

impl ReplayBuffer {
    /// Creates a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        ReplayBuffer { capacity, data: Vec::with_capacity(capacity.min(4096)), next: 0 }
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a transition, evicting the oldest once full.
    pub fn push(&mut self, t: Transition) {
        if self.data.len() < self.capacity {
            self.data.push(t);
        } else {
            self.data[self.next] = t;
            self.next = (self.next + 1) % self.capacity;
        }
    }

    /// Samples `n` transitions uniformly with replacement.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn sample(&self, n: usize, rng: &mut SimRng) -> Vec<&Transition> {
        assert!(!self.data.is_empty(), "sample from empty replay buffer");
        (0..n).map(|_| &self.data[rng.below(self.data.len())]).collect()
    }
}

/// One step stored in a rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutStep {
    /// Observation at the step.
    pub obs: Vec<f32>,
    /// Action taken.
    pub action: Action,
    /// Reward received.
    pub reward: f32,
    /// Critic's value estimate at `obs`.
    pub value: f32,
    /// Log-probability of `action` under the behaviour policy.
    pub log_prob: f32,
    /// Episode terminated here.
    pub done: bool,
}

/// A fixed-horizon on-policy rollout with GAE(λ) advantage computation.
#[derive(Debug, Clone)]
pub struct RolloutBuffer {
    horizon: usize,
    steps: Vec<RolloutStep>,
}

impl RolloutBuffer {
    /// Creates a rollout of length `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn new(horizon: usize) -> Self {
        assert!(horizon > 0, "rollout horizon must be positive");
        RolloutBuffer { horizon, steps: Vec::with_capacity(horizon) }
    }

    /// Steps collected so far.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// True once the rollout holds `horizon` steps.
    pub fn is_full(&self) -> bool {
        self.steps.len() >= self.horizon
    }

    /// The configured horizon.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Appends a step.
    ///
    /// # Panics
    ///
    /// Panics if the rollout is already full.
    pub fn push(&mut self, step: RolloutStep) {
        assert!(!self.is_full(), "push into full rollout");
        self.steps.push(step);
    }

    /// The stored steps.
    pub fn steps(&self) -> &[RolloutStep] {
        &self.steps
    }

    /// Computes GAE(λ) advantages and discounted returns, given the value
    /// estimate of the state *after* the last stored step.
    ///
    /// Returns `(advantages, returns)`, both `len()` long.
    pub fn gae(&self, last_value: f32, gamma: f32, lambda: f32) -> (Vec<f32>, Vec<f32>) {
        let n = self.steps.len();
        let mut advantages = vec![0.0f32; n];
        let mut gae = 0.0f32;
        for i in (0..n).rev() {
            let s = &self.steps[i];
            let next_value = if s.done {
                0.0
            } else if i + 1 < n {
                self.steps[i + 1].value
            } else {
                last_value
            };
            let nonterminal = if s.done { 0.0 } else { 1.0 };
            let delta = s.reward + gamma * next_value - s.value;
            gae = delta + gamma * lambda * nonterminal * gae;
            advantages[i] = gae;
        }
        let returns: Vec<f32> =
            advantages.iter().zip(&self.steps).map(|(a, s)| a + s.value).collect();
        (advantages, returns)
    }

    /// Clears the rollout for the next collection phase.
    pub fn clear(&mut self) {
        self.steps.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(r: f32) -> Transition {
        Transition {
            obs: vec![r],
            action: Action::Discrete(0),
            reward: r,
            next_obs: vec![r + 1.0],
            done: false,
        }
    }

    #[test]
    fn replay_evicts_oldest_when_full() {
        let mut b = ReplayBuffer::new(3);
        for i in 0..5 {
            b.push(tr(i as f32));
        }
        assert_eq!(b.len(), 3);
        let rewards: Vec<f32> = b.data.iter().map(|t| t.reward).collect();
        // 0 and 1 evicted.
        assert!(rewards.contains(&2.0) && rewards.contains(&3.0) && rewards.contains(&4.0));
    }

    #[test]
    fn replay_sampling_is_uniformish() {
        let mut b = ReplayBuffer::new(100);
        for i in 0..100 {
            b.push(tr(i as f32));
        }
        let mut rng = SimRng::seed_from_u64(2);
        let samples = b.sample(2_000, &mut rng);
        let mean: f32 = samples.iter().map(|t| t.reward).sum::<f32>() / 2_000.0;
        assert!((mean - 49.5).abs() < 5.0, "sample mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty replay")]
    fn sampling_empty_panics() {
        let b = ReplayBuffer::new(4);
        let mut rng = SimRng::seed_from_u64(0);
        b.sample(1, &mut rng);
    }

    fn step(reward: f32, value: f32, done: bool) -> RolloutStep {
        RolloutStep {
            obs: vec![0.0],
            action: Action::Discrete(0),
            reward,
            value,
            log_prob: 0.0,
            done,
        }
    }

    #[test]
    fn rollout_fills_and_clears() {
        let mut r = RolloutBuffer::new(2);
        assert!(!r.is_full());
        r.push(step(1.0, 0.0, false));
        r.push(step(1.0, 0.0, false));
        assert!(r.is_full());
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "full rollout")]
    fn overfilling_rollout_panics() {
        let mut r = RolloutBuffer::new(1);
        r.push(step(0.0, 0.0, false));
        r.push(step(0.0, 0.0, false));
    }

    #[test]
    fn gae_with_lambda_one_matches_discounted_returns() {
        // With λ=1 and zero values, advantage == discounted return.
        let mut r = RolloutBuffer::new(3);
        r.push(step(1.0, 0.0, false));
        r.push(step(1.0, 0.0, false));
        r.push(step(1.0, 0.0, true));
        let (adv, ret) = r.gae(0.0, 0.5, 1.0);
        // From the back: 1; 1 + 0.5*1 = 1.5; 1 + 0.5*1.5 = 1.75.
        assert_eq!(adv, vec![1.75, 1.5, 1.0]);
        assert_eq!(ret, adv);
    }

    #[test]
    fn gae_terminal_cuts_bootstrapping() {
        let mut r = RolloutBuffer::new(2);
        r.push(step(1.0, 0.5, true)); // terminal: no bootstrap from step 2
        r.push(step(1.0, 0.5, false));
        let (adv, _) = r.gae(10.0, 0.9, 0.95);
        // Step 0 delta = 1 - 0.5 = 0.5 (no next value, no GAE carry).
        assert!((adv[0] - 0.5).abs() < 1e-6);
        // Step 1 bootstraps from last_value = 10.
        assert!((adv[1] - (1.0 + 0.9 * 10.0 - 0.5)).abs() < 1e-6);
    }

    #[test]
    fn gae_zero_lambda_is_one_step_td() {
        let mut r = RolloutBuffer::new(2);
        r.push(step(1.0, 2.0, false));
        r.push(step(1.0, 3.0, false));
        let (adv, _) = r.gae(4.0, 0.9, 0.0);
        assert!((adv[0] - (1.0 + 0.9 * 3.0 - 2.0)).abs() < 1e-6);
        assert!((adv[1] - (1.0 + 0.9 * 4.0 - 3.0)).abs() < 1e-6);
    }
}
