//! Shared machinery for the on-policy algorithms (A2C, PPO2): a Gaussian
//! actor-critic pair with a fixed policy standard deviation.

use crate::common::{gaussian_logp_host, mlp_forward_frozen};
use rlscope_backend::prelude::*;
use rlscope_envs::Action;
use rlscope_sim::rng::SimRng;

/// Actor (Gaussian mean) and critic (state value) networks sharing one
/// parameter store.
#[derive(Debug)]
pub struct GaussianActorCritic {
    /// The shared parameter store.
    pub params: Params,
    /// Policy mean network (tanh output head).
    pub actor: Mlp,
    /// State-value network.
    pub critic: Mlp,
    /// Fixed policy standard deviation.
    pub std: f32,
    act_dim: usize,
}

impl GaussianActorCritic {
    /// Builds the pair with the given hidden width.
    pub fn new(obs_dim: usize, act_dim: usize, hidden: usize, std: f32, rng: &mut SimRng) -> Self {
        let mut params = Params::new();
        let actor = Mlp::new(
            &mut params,
            rng,
            "actor",
            &[obs_dim, hidden, hidden, act_dim],
            Activation::Tanh,
            Activation::Tanh,
        );
        let critic = Mlp::new(
            &mut params,
            rng,
            "critic",
            &[obs_dim, hidden, hidden, 1],
            Activation::Tanh,
            Activation::Linear,
        );
        GaussianActorCritic { params, actor, critic, std, act_dim }
    }

    /// Action dimensionality.
    pub fn act_dim(&self) -> usize {
        self.act_dim
    }

    /// One inference pass producing `(action, value, log_prob)`; samples
    /// exploration noise when `explore`.
    ///
    /// Actor and critic run in a single backend invocation, matching
    /// stable-baselines' combined `step()`.
    pub fn act_eval(
        &self,
        exec: &Executor,
        obs: &[f32],
        explore: bool,
        rng: &mut SimRng,
    ) -> (Action, f32, f32) {
        let x = Tensor::from_vec(1, obs.len(), obs.to_vec());
        let (mu, value) = exec.run(RunKind::Inference, |tape| {
            let xv = tape.constant(x.clone());
            let mu = mlp_forward_frozen(
                &self.actor,
                tape,
                &self.params,
                xv,
                Activation::Tanh,
                Activation::Tanh,
            );
            let v = mlp_forward_frozen(
                &self.critic,
                tape,
                &self.params,
                xv,
                Activation::Tanh,
                Activation::Linear,
            );
            (tape.value(mu).clone(), tape.value(v).item())
        });
        exec.fetch(&mu);
        let action: Vec<f32> = if explore {
            mu.data()
                .iter()
                .map(|&m| (m + rng.normal_with(0.0, self.std as f64) as f32).clamp(-1.0, 1.0))
                .collect()
        } else {
            mu.data().to_vec()
        };
        let logp = gaussian_logp_host(mu.data(), &action, self.std);
        (Action::Continuous(action), value, logp)
    }

    /// Critic value of `obs` (one inference run, for bootstrapping).
    pub fn value_of(&self, exec: &Executor, obs: &[f32]) -> f32 {
        let x = Tensor::from_vec(1, obs.len(), obs.to_vec());
        exec.run(RunKind::Inference, |tape| {
            let xv = tape.constant(x.clone());
            let v = mlp_forward_frozen(
                &self.critic,
                tape,
                &self.params,
                xv,
                Activation::Tanh,
                Activation::Linear,
            );
            tape.value(v).item()
        })
    }
}

/// Normalizes advantages to zero mean and unit variance (host-side, as the
/// Python implementations do).
pub fn normalize_advantages(adv: &mut [f32]) {
    if adv.is_empty() {
        return;
    }
    let n = adv.len() as f32;
    let mean: f32 = adv.iter().sum::<f32>() / n;
    let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n;
    let std = var.sqrt().max(1e-6);
    for a in adv {
        *a = (*a - mean) / std;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::test_executor;

    #[test]
    fn act_eval_produces_consistent_logp() {
        let (exec, _, _) = test_executor();
        let mut rng = SimRng::seed_from_u64(1);
        let ac = GaussianActorCritic::new(3, 2, 16, 0.3, &mut rng);
        let (a, _v, logp) = ac.act_eval(&exec, &[0.1, 0.2, 0.3], false, &mut rng);
        // Deterministic action == mean, so logp is exactly 0 (max of the
        // unnormalized log-density).
        assert_eq!(logp, 0.0);
        assert_eq!(a.continuous().len(), 2);
        let (_, _, logp_explore) = ac.act_eval(&exec, &[0.1, 0.2, 0.3], true, &mut rng);
        assert!(logp_explore < 0.0);
    }

    #[test]
    fn value_of_matches_act_eval_value() {
        let (exec, _, _) = test_executor();
        let mut rng = SimRng::seed_from_u64(2);
        let ac = GaussianActorCritic::new(3, 1, 16, 0.3, &mut rng);
        let (_, v1, _) = ac.act_eval(&exec, &[0.5, 0.5, 0.5], false, &mut rng);
        let v2 = ac.value_of(&exec, &[0.5, 0.5, 0.5]);
        assert_eq!(v1, v2);
    }

    #[test]
    fn normalize_advantages_standardizes() {
        let mut adv = vec![1.0, 2.0, 3.0, 4.0];
        normalize_advantages(&mut adv);
        let mean: f32 = adv.iter().sum::<f32>() / 4.0;
        let var: f32 = adv.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
        normalize_advantages(&mut []); // no panic on empty
    }
}
