//! Shared test fixtures for the algorithm modules.

use rlscope_backend::prelude::*;
use rlscope_sim::cuda::{CudaContext, CudaCostConfig};
use rlscope_sim::gpu::GpuDevice;
use rlscope_sim::python::{PyCostConfig, PyRuntime};
use rlscope_sim::VirtualClock;
use std::cell::RefCell;
use std::rc::Rc;

/// A TensorFlow/Graph executor over a fresh virtual stack.
pub(crate) fn test_executor() -> (Executor, Rc<RefCell<PyRuntime>>, Rc<RefCell<CudaContext>>) {
    executor_for(BackendKind::TensorFlow, ExecModel::Graph)
}

/// An executor for an arbitrary ⟨backend, model⟩ pair.
pub(crate) fn executor_for(
    kind: BackendKind,
    model: ExecModel,
) -> (Executor, Rc<RefCell<PyRuntime>>, Rc<RefCell<CudaContext>>) {
    let clock = VirtualClock::new();
    let py = Rc::new(RefCell::new(PyRuntime::new(clock.clone(), PyCostConfig::default())));
    let cuda = Rc::new(RefCell::new(CudaContext::new(
        clock,
        GpuDevice::new(1),
        CudaCostConfig::default(),
    )));
    let stream = cuda.borrow().default_stream();
    let exec = Executor::new(
        kind,
        model,
        py.clone(),
        cuda.clone(),
        OpCostModel::for_config(kind, model),
        stream,
    );
    (exec, py, cuda)
}
