//! The checked-in invariants manifest (`lint/invariants.toml`) and the
//! strict TOML-subset parser that loads it.
//!
//! The workspace vendors no real `toml` crate, so the manifest sticks
//! to a small, line-oriented subset: `[section]` / `[[section]]`
//! headers, `key = "string"`, `key = integer`, `key = true|false`, and
//! single-line string arrays `key = ["a", "b"]`. Comments start with
//! `#`. Anything else is a hard error — a manifest typo must fail the
//! lint run, not silently disable a rule.

use std::fmt;

/// Severity of findings produced by a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run (nonzero exit).
    Error,
    /// Reported but does not fail the run (`examples/`, bench helpers).
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        })
    }
}

/// One `[[never_panic]]` scope: a file plus the function-name prefixes
/// within it that must not contain panicking constructs.
#[derive(Debug, Clone)]
pub struct NeverPanicScope {
    /// Workspace-relative file path.
    pub file: String,
    /// Function-name prefixes in scope; `["*"]` means every function.
    pub functions: Vec<String>,
    /// Finding severity for this scope.
    pub severity: Severity,
    /// Constructs checked; empty means all of
    /// `unwrap, expect, panic-macro, assert, index`.
    pub constructs: Vec<String>,
}

/// One `[[lock_order]]` declaration: the allowed acquisition order for
/// the named locks of one file.
#[derive(Debug, Clone)]
pub struct LockOrder {
    /// Workspace-relative file path.
    pub file: String,
    /// Lock field names, outermost first; a lock may only be acquired
    /// while holding locks that appear strictly earlier.
    pub order: Vec<String>,
}

/// The `[protocol]` section wiring the protocol-surface check.
#[derive(Debug, Clone, Default)]
pub struct ProtocolCfg {
    /// The file holding `mod kind` and `enum ErrorCode`.
    pub file: String,
    /// The file whose module docs carry the frame table.
    pub doc_table: String,
    /// Files scanned for encode/decode usage of the consts.
    pub usage: Vec<String>,
}

/// The `[gates]` section wiring the gate-drift check.
#[derive(Debug, Clone, Default)]
pub struct GatesCfg {
    /// The CI workflow to scan for bench ratio gates.
    pub workflow: String,
    /// Directory holding the criterion bench targets.
    pub bench_dir: String,
}

/// The parsed manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Never-panic scopes, in declaration order.
    pub never_panic: Vec<NeverPanicScope>,
    /// Lock-order declarations, in declaration order.
    pub lock_order: Vec<LockOrder>,
    /// Protocol-surface wiring (skipped when `file` is empty).
    pub protocol: ProtocolCfg,
    /// Gate-drift wiring (skipped when `workflow` is empty).
    pub gates: GatesCfg,
    /// Crate-root files that must carry `#![forbid(unsafe_code)]` (or
    /// `deny` plus a reasoned `lint:allow`).
    pub forbid_unsafe: Vec<String>,
}

/// A manifest syntax or schema error, with its 1-based line.
#[derive(Debug)]
pub struct ManifestError {
    /// 1-based line of the offending entry.
    pub line: u32,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariants manifest line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ManifestError {}

/// One parsed `key = value`.
#[derive(Debug)]
enum Value {
    Str(String),
    Int(i64),
    Array(Vec<String>),
}

fn err(line: u32, message: impl Into<String>) -> ManifestError {
    ManifestError { line, message: message.into() }
}

fn parse_value(line_no: u32, raw: &str) -> Result<Value, ManifestError> {
    let raw = raw.trim();
    if let Some(body) = raw.strip_prefix('"') {
        let Some(end) = body.find('"') else {
            return Err(err(line_no, "unterminated string"));
        };
        if !body[end + 1..].trim().is_empty() {
            return Err(err(line_no, "trailing characters after string"));
        }
        return Ok(Value::Str(body[..end].to_string()));
    }
    if let Some(body) = raw.strip_prefix('[') {
        let Some(body) = body.strip_suffix(']') else {
            return Err(err(line_no, "arrays must open and close on one line"));
        };
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some(s) = part.strip_prefix('"').and_then(|p| p.strip_suffix('"')) else {
                return Err(err(line_no, "array elements must be quoted strings"));
            };
            items.push(s.to_string());
        }
        return Ok(Value::Array(items));
    }
    raw.parse::<i64>().map(Value::Int).map_err(|_| err(line_no, format!("bad value `{raw}`")))
}

/// Parses manifest text. Unknown sections and keys are errors: the
/// manifest is a contract, and a misspelled key silently enforcing
/// nothing would be worse than a build break.
pub fn parse(src: &str) -> Result<Manifest, ManifestError> {
    let mut m = Manifest::default();
    let mut section = String::new();
    // Index of the entry being filled for array-of-table sections.
    let mut cur_np: Option<usize> = None;
    let mut cur_lo: Option<usize> = None;
    for (idx, raw_line) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = match raw_line.find('#') {
            // A `#` inside quotes would break this, so the manifest
            // simply never puts `#` in strings.
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            section = h.trim().to_string();
            match section.as_str() {
                "never_panic" => {
                    m.never_panic.push(NeverPanicScope {
                        file: String::new(),
                        functions: Vec::new(),
                        severity: Severity::Error,
                        constructs: Vec::new(),
                    });
                    cur_np = Some(m.never_panic.len() - 1);
                }
                "lock_order" => {
                    m.lock_order.push(LockOrder { file: String::new(), order: Vec::new() });
                    cur_lo = Some(m.lock_order.len() - 1);
                }
                other => return Err(err(line_no, format!("unknown table array `[[{other}]]`"))),
            }
            continue;
        }
        if let Some(h) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = h.trim().to_string();
            if !matches!(section.as_str(), "lint" | "protocol" | "gates" | "unsafe_code") {
                return Err(err(line_no, format!("unknown section `[{section}]`")));
            }
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return Err(err(line_no, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let value = parse_value(line_no, val)?;
        match (section.as_str(), key) {
            ("lint", "version") => match value {
                Value::Int(1) => {}
                _ => return Err(err(line_no, "unsupported manifest version (expected 1)")),
            },
            ("never_panic", _) => {
                let scope = cur_np
                    .and_then(|i| m.never_panic.get_mut(i))
                    .ok_or_else(|| err(line_no, "key outside a [[never_panic]] entry"))?;
                match (key, value) {
                    ("file", Value::Str(s)) => scope.file = s,
                    ("functions", Value::Array(a)) => scope.functions = a,
                    ("constructs", Value::Array(a)) => scope.constructs = a,
                    ("severity", Value::Str(s)) => {
                        scope.severity = match s.as_str() {
                            "error" => Severity::Error,
                            "warn" => Severity::Warn,
                            _ => return Err(err(line_no, "severity must be error|warn")),
                        }
                    }
                    _ => return Err(err(line_no, format!("bad never_panic key `{key}`"))),
                }
            }
            ("lock_order", _) => {
                let lo = cur_lo
                    .and_then(|i| m.lock_order.get_mut(i))
                    .ok_or_else(|| err(line_no, "key outside a [[lock_order]] entry"))?;
                match (key, value) {
                    ("file", Value::Str(s)) => lo.file = s,
                    ("order", Value::Array(a)) => lo.order = a,
                    _ => return Err(err(line_no, format!("bad lock_order key `{key}`"))),
                }
            }
            ("protocol", "file") => {
                if let Value::Str(s) = value {
                    m.protocol.file = s;
                }
            }
            ("protocol", "doc_table") => {
                if let Value::Str(s) = value {
                    m.protocol.doc_table = s;
                }
            }
            ("protocol", "usage") => {
                if let Value::Array(a) = value {
                    m.protocol.usage = a;
                }
            }
            ("gates", "workflow") => {
                if let Value::Str(s) = value {
                    m.gates.workflow = s;
                }
            }
            ("gates", "bench_dir") => {
                if let Value::Str(s) = value {
                    m.gates.bench_dir = s;
                }
            }
            ("unsafe_code", "forbid") => {
                if let Value::Array(a) = value {
                    m.forbid_unsafe = a;
                }
            }
            _ => return Err(err(line_no, format!("unknown key `{key}` in section `[{section}]`"))),
        }
    }
    for (i, scope) in m.never_panic.iter().enumerate() {
        if scope.file.is_empty() {
            return Err(err(0, format!("never_panic entry {} is missing `file`", i + 1)));
        }
    }
    for (i, lo) in m.lock_order.iter().enumerate() {
        if lo.file.is_empty() || lo.order.len() < 2 {
            return Err(err(
                0,
                format!("lock_order entry {} needs `file` and an `order` of 2+ locks", i + 1),
            ));
        }
    }
    Ok(m)
}
