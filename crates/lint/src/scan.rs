//! Shallow structural analysis over a token stream: brace depth,
//! innermost enclosing `fn` name, and `#[cfg(test)]` / `#[test]` item
//! regions to exclude. This is the "shallow brace/function tracking"
//! layer the rule passes build on — closures inherit their enclosing
//! function's name, nested `fn` items shadow it.

use crate::lexer::{TokKind, Token};

/// Per-token structural context, parallel to the token stream.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Brace depth *before* this token is applied.
    pub depth: u32,
    /// Index into [`Scan::fn_names`] of the innermost enclosing
    /// function, if any.
    pub fn_idx: Option<u32>,
    /// `true` when the token sits inside a `#[cfg(test)]` or `#[test]`
    /// item (tests are allowed to panic and to lock freely).
    pub in_test: bool,
}

/// The result of [`scan`]: one [`Ctx`] per token plus the function-name
/// table.
#[derive(Debug)]
pub struct Scan {
    /// `ctx[i]` describes `tokens[i]`.
    pub ctx: Vec<Ctx>,
    /// Names of every `fn` item seen, in source order.
    pub fn_names: Vec<String>,
}

impl Scan {
    /// The innermost enclosing function name for token `i`, if any.
    pub fn fn_name(&self, i: usize) -> Option<&str> {
        self.ctx.get(i).and_then(|c| c.fn_idx).map(|id| self.fn_names[id as usize].as_str())
    }
}

/// Marks the token ranges covered by items annotated `#[cfg(test)]` or
/// `#[test]` (the attribute itself included). Brace depth is still
/// tracked inside them by [`scan`]; rule passes just skip findings
/// there.
fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') || !tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let is_cfg_test = tokens.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 4).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 5).is_some_and(|t| t.is_punct(')'))
            && tokens.get(i + 6).is_some_and(|t| t.is_punct(']'));
        let is_test = tokens.get(i + 2).is_some_and(|t| t.is_ident("test"))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct(']'));
        if !is_cfg_test && !is_test {
            // Skip the whole attribute so `#[cfg(test_helpers)]` etc.
            // can't partially match.
            i = skip_balanced(tokens, i + 1, '[', ']');
            continue;
        }
        let attr_start = i;
        let mut j = if is_cfg_test { i + 7 } else { i + 4 };
        // Further attributes on the same item.
        while tokens.get(j).is_some_and(|t| t.is_punct('#'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = skip_balanced(tokens, j + 1, '[', ']');
        }
        // The item body: everything to the matching `}` of its first
        // brace, or to a `;` if one comes first (e.g. `mod tests;`).
        let mut depth = 0i32;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                j += 1;
                break;
            }
            j += 1;
        }
        regions.push((attr_start, j));
        i = j;
    }
    regions
}

/// Advances past the balanced `open`…`close` group whose opener is at
/// `open_idx`; returns the index just past the matching closer.
fn skip_balanced(tokens: &[Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0i32;
    let mut i = open_idx;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Annotates a token stream with structural context. One pass, shallow:
/// a `fn` item is recognized as `fn <ident>`, its body as the first
/// balanced brace group after it (trait methods ending in `;` have no
/// body and are dropped). `fn` pointer types (`fn(` with no name) are
/// ignored.
pub fn scan(tokens: &[Token]) -> Scan {
    let regions = test_regions(tokens);
    let mut in_test = vec![false; tokens.len()];
    for (a, b) in regions {
        for flag in in_test.iter_mut().take(b.min(tokens.len())).skip(a) {
            *flag = true;
        }
    }

    let mut ctx = Vec::with_capacity(tokens.len());
    let mut fn_names: Vec<String> = Vec::new();
    // (fn_names index, depth the body's `{` opened at).
    let mut fn_stack: Vec<(u32, u32)> = Vec::new();
    // A `fn name` seen, waiting for its body's `{`.
    let mut pending: Option<u32> = None;
    let mut depth = 0u32;

    for (i, t) in tokens.iter().enumerate() {
        ctx.push(Ctx { depth, fn_idx: fn_stack.last().map(|&(id, _)| id), in_test: in_test[i] });
        if t.is_punct('{') {
            if let Some(id) = pending.take() {
                fn_stack.push((id, depth));
                // Re-stamp the `{` itself as inside the fn.
                if let Some(c) = ctx.last_mut() {
                    c.fn_idx = Some(id);
                }
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while fn_stack.last().is_some_and(|&(_, d)| d >= depth) {
                fn_stack.pop();
            }
        } else if t.is_punct(';') {
            // `fn name(…) -> T;` in a trait: no body.
            pending = None;
        } else if t.is_ident("fn") {
            if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                fn_names.push(name.text.clone());
                pending = Some((fn_names.len() - 1) as u32);
            }
        }
    }
    Scan { ctx, fn_names }
}
