//! A loaded, lexed, structurally scanned source file — the shared input
//! every rule pass works from, so each file is lexed exactly once per
//! run.

use crate::lexer::{lex, Lexed};
use crate::scan::{scan, Scan};
use std::path::Path;

/// One source file, lexed and annotated.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (what findings print).
    pub rel: String,
    /// Token stream plus comment side channels.
    pub lexed: Lexed,
    /// Per-token structural context.
    pub scan: Scan,
}

impl SourceFile {
    /// Lexes and scans `text` as the file `rel`.
    pub fn from_text(rel: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let scan = scan(&lexed.tokens);
        SourceFile { rel: rel.to_string(), lexed, scan }
    }

    /// Reads, lexes, and scans `root`-relative `rel`.
    ///
    /// # Errors
    /// Returns the I/O error when the file cannot be read.
    pub fn load(root: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::from_text(rel, &text))
    }
}
