//! Unsafe-code hygiene: every first-party crate root must carry
//! `#![forbid(unsafe_code)]`. A crate that genuinely needs `unsafe`
//! (the tracking allocator in `rlscope-workloads`) may instead carry
//! `#![deny(unsafe_code)]` plus a reasoned
//! `// lint:allow(forbid-unsafe): <why>` beside it.

use crate::manifest::Severity;
use crate::source::SourceFile;
use crate::{Finding, RULE_FORBID_UNSAFE};

/// Does the file carry the inner attribute `#![<level>(unsafe_code)]`?
fn has_level(src: &SourceFile, level: &str) -> Option<u32> {
    let toks = &src.lexed.tokens;
    toks.windows(7).find_map(|w| {
        (w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident(level)
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')'))
        .then_some(w[3].line)
    })
}

/// Runs the forbid-unsafe pass over one crate root.
pub fn check(src: &SourceFile) -> Vec<Finding> {
    if has_level(src, "forbid").is_some() {
        return Vec::new();
    }
    if let Some(line) = has_level(src, "deny") {
        let excused =
            src.lexed.suppressions.iter().any(|s| {
                s.rule == RULE_FORBID_UNSAFE && s.has_reason && s.line.abs_diff(line) <= 1
            });
        if excused {
            return Vec::new();
        }
        return vec![Finding {
            file: src.rel.clone(),
            line,
            rule: RULE_FORBID_UNSAFE,
            message: "`#![deny(unsafe_code)]` needs a reasoned \
                      `// lint:allow(forbid-unsafe): <why>` beside it"
                .to_string(),
            severity: Severity::Error,
        }];
    }
    vec![Finding {
        file: src.rel.clone(),
        line: 1,
        rule: RULE_FORBID_UNSAFE,
        message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        severity: Severity::Error,
    }]
}
