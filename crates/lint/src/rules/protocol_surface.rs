//! Protocol-surface conformance: the wire protocol's frame-kind consts
//! and typed error codes must stay in lockstep across three surfaces —
//! the encode sites, the decode matches, and the module-doc frame
//! table — with all codes unique.
//!
//! Concretely, for every `pub const NAME: u8 = 0x…` in `mod kind`:
//! the value must be unique; some usage file must *send* it (a
//! `kind::NAME` argument inside a `write_frame*` call); some usage
//! file must *match* it (a `kind::NAME` match-arm pattern, i.e.
//! followed by `=>`, possibly through a guard); and the doc frame
//! table must carry a `| \`0xNN\` | … | \`NAME\` | …` row. Stale table
//! rows whose code no longer exists are flagged too. For every
//! `ErrorCode` variant: the discriminant must be unique, `from_u8`
//! must decode it, and some usage file must construct it.

use crate::lexer::{Lexed, TokKind, Token};
use crate::manifest::Severity;
use crate::source::SourceFile;
use crate::{Finding, RULE_PROTOCOL_SURFACE};

/// A `pub const NAME: u8 = 0x…;` inside `mod kind`.
#[derive(Debug)]
pub struct KindConst {
    /// Const name (`HELLO`).
    pub name: String,
    /// Wire value.
    pub value: u8,
    /// 1-based declaration line.
    pub line: u32,
}

/// An `ErrorCode` enum variant and its discriminant.
#[derive(Debug)]
pub struct ErrorVariant {
    /// Variant name (`CorruptChunk`).
    pub name: String,
    /// Wire value.
    pub value: u8,
    /// 1-based declaration line.
    pub line: u32,
}

/// Finds the token range of the braced body following `kw name`
/// (e.g. `mod kind { … }`), returning `(start, end)` token indexes of
/// the body's interior.
fn braced_item(toks: &[Token], kw: &str, name: &str) -> Option<(usize, usize)> {
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_ident(kw) && toks[i + 1].is_ident(name) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let mut depth = 0i32;
            let body_start = j + 1;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some((body_start, j));
                    }
                }
                j += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

fn parse_u8(text: &str) -> Option<u8> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u8::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

/// Extracts the frame-kind consts from `mod kind { … }`.
pub fn kind_consts(lexed: &Lexed) -> Vec<KindConst> {
    let toks = &lexed.tokens;
    let Some((start, end)) = braced_item(toks, "mod", "kind") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if toks[i].is_ident("const") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            // const NAME : u8 = VALUE ;
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let mut j = i + 2;
            while j < end && !toks[j].is_punct('=') {
                j += 1;
            }
            if let Some(value) = toks.get(j + 1).and_then(|t| parse_u8(&t.text)) {
                out.push(KindConst { name, value, line });
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Extracts the `ErrorCode` variants (`Name = N,`).
pub fn error_variants(lexed: &Lexed) -> Vec<ErrorVariant> {
    let toks = &lexed.tokens;
    let Some((start, end)) = braced_item(toks, "enum", "ErrorCode") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut i = start;
    while i + 2 < end {
        if toks[i].kind == TokKind::Ident
            && toks[i + 1].is_punct('=')
            && toks[i + 2].kind == TokKind::Num
        {
            if let Some(value) = parse_u8(&toks[i + 2].text) {
                out.push(ErrorVariant { name: toks[i].text.clone(), value, line: toks[i].line });
            }
            i += 3;
            continue;
        }
        i += 1;
    }
    out
}

/// How a `path::NAME` reference is being used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UseKind {
    /// Argument of a `write_frame*` call — the encode side.
    Encode,
    /// A match-arm pattern (`kind::X =>`, possibly via a guard).
    Decode,
    /// Anything else (comparisons, table building, docs).
    Other,
}

/// Classifies every `prefix::NAME` reference in a token stream.
/// `callee_marker` marks encode calls (substring match on the callee
/// identifier, e.g. `write_frame` covers `write_frame_parts`).
fn classify_uses(toks: &[Token], prefix: &str, callee_marker: &str) -> Vec<(String, UseKind)> {
    let mut uses = Vec::new();
    // Call stack of callee identifiers, pushed per `(`.
    let mut callees: Vec<Option<String>> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('(') {
            let callee = i
                .checked_sub(1)
                .map(|p| &toks[p])
                .filter(|p| p.kind == TokKind::Ident)
                .map(|p| p.text.clone());
            callees.push(callee);
        } else if t.is_punct(')') {
            callees.pop();
        }
        if t.kind == TokKind::Ident
            && t.is_ident(prefix)
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident)
        {
            let name = toks[i + 3].text.clone();
            let kind = if callees.iter().rev().flatten().any(|c| c.contains(callee_marker)) {
                UseKind::Encode
            } else if is_match_pattern(toks, i + 4) {
                UseKind::Decode
            } else {
                UseKind::Other
            };
            uses.push((name, kind));
        }
    }
    uses
}

/// Looks ahead from just past a reference for a `=>` at bracket depth
/// zero — a match-arm pattern, guards included.
fn is_match_pattern(toks: &[Token], mut i: usize) -> bool {
    let mut depth = 0i32;
    let mut budget = 40usize;
    while let Some(t) = toks.get(i) {
        if budget == 0 {
            return false;
        }
        budget -= 1;
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if depth == 0 {
            if t.is_punct('=') && toks.get(i + 1).is_some_and(|n| n.is_punct('>')) {
                return true;
            }
            if t.is_punct(',') || t.is_punct(';') || t.is_punct('{') {
                return false;
            }
            // `|` joins or-patterns; keep scanning.
        }
        i += 1;
    }
    false
}

/// Runs the protocol-surface pass.
pub fn check(proto: &SourceFile, doc: &SourceFile, usage: &[&SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |file: &str, line: u32, message: String| {
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule: RULE_PROTOCOL_SURFACE,
            message,
            severity: Severity::Error,
        });
    };

    let consts = kind_consts(&proto.lexed);
    if consts.is_empty() {
        push(&proto.rel, 1, "no `mod kind` frame consts found".to_string());
        return findings;
    }
    // Uniqueness.
    for (i, a) in consts.iter().enumerate() {
        if let Some(b) = consts[..i].iter().find(|b| b.value == a.value) {
            push(
                &proto.rel,
                a.line,
                format!("frame code {:#04x} of `{}` duplicates `{}`", a.value, a.name, b.name),
            );
        }
    }
    // Encode/decode usage across the declared files.
    let mut uses: Vec<(String, UseKind)> = Vec::new();
    for file in usage {
        uses.extend(classify_uses(&file.lexed.tokens, "kind", "write_frame"));
    }
    for c in &consts {
        let encoded = uses.iter().any(|(n, k)| n == &c.name && *k == UseKind::Encode);
        let decoded = uses.iter().any(|(n, k)| n == &c.name && *k == UseKind::Decode);
        if !encoded {
            push(
                &proto.rel,
                c.line,
                format!(
                    "frame `{}` ({:#04x}) is never encoded (no write_frame site)",
                    c.name, c.value
                ),
            );
        }
        if !decoded {
            push(
                &proto.rel,
                c.line,
                format!("frame `{}` ({:#04x}) is never decoded (no match arm)", c.name, c.value),
            );
        }
    }
    // Doc frame table.
    let rows = parse_doc_table(doc);
    for c in &consts {
        match rows.iter().find(|(v, _, _)| *v == c.value) {
            None => push(
                &proto.rel,
                c.line,
                format!(
                    "frame `{}` ({:#04x}) missing from the doc frame table in {}",
                    c.name, c.value, doc.rel
                ),
            ),
            Some((_, doc_name, row_line)) => {
                if doc_name != &c.name {
                    push(
                        &doc.rel,
                        *row_line,
                        format!(
                            "doc frame table names {:#04x} `{}` but the const is `{}`",
                            c.value, doc_name, c.name
                        ),
                    );
                }
            }
        }
    }
    for (value, name, line) in &rows {
        if !consts.iter().any(|c| c.value == *value) {
            push(
                &doc.rel,
                *line,
                format!("doc frame table row `{name}` ({value:#04x}) has no matching const"),
            );
        }
    }

    // ErrorCode: unique discriminants, decoded by from_u8, constructed
    // somewhere.
    let variants = error_variants(&proto.lexed);
    if variants.is_empty() {
        push(&proto.rel, 1, "no `enum ErrorCode` variants found".to_string());
        return findings;
    }
    for (i, a) in variants.iter().enumerate() {
        if let Some(b) = variants[..i].iter().find(|b| b.value == a.value) {
            push(
                &proto.rel,
                a.line,
                format!("error code {} of `{}` duplicates `{}`", a.value, a.name, b.name),
            );
        }
    }
    let decoded = refs_in_fn(proto, "from_u8", "ErrorCode");
    for v in &variants {
        if !decoded.iter().any(|n| n == &v.name) {
            push(
                &proto.rel,
                v.line,
                format!("`ErrorCode::{}` is not decoded by `from_u8`", v.name),
            );
        }
        let constructed = usage.iter().any(|f| {
            errorcode_refs(f)
                .iter()
                .any(|(n, fn_name)| n == &v.name && fn_name.as_deref() != Some("from_u8"))
        });
        if !constructed {
            push(
                &proto.rel,
                v.line,
                format!("`ErrorCode::{}` is never constructed outside `from_u8`", v.name),
            );
        }
    }
    findings
}

/// Every `ErrorCode::Name` reference in `file` with its enclosing fn.
fn errorcode_refs(file: &SourceFile) -> Vec<(String, Option<String>)> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("ErrorCode")
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident)
        {
            if file.scan.ctx[i].in_test {
                continue;
            }
            out.push((toks[i + 3].text.clone(), file.scan.fn_name(i).map(str::to_string)));
        }
    }
    out
}

/// `prefix::Name` references inside the fn named `fn_name` of `file`.
fn refs_in_fn(file: &SourceFile, fn_name: &str, prefix: &str) -> Vec<String> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if file.scan.fn_name(i) == Some(fn_name)
            && t.is_ident(prefix)
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.kind == TokKind::Ident)
        {
            out.push(toks[i + 3].text.clone());
        }
    }
    out
}

/// Parses `| \`0xNN\` | dir | \`NAME\` | … |` rows out of a file's doc
/// comments.
fn parse_doc_table(doc: &SourceFile) -> Vec<(u8, String, u32)> {
    let mut rows = Vec::new();
    for (line, text) in &doc.lexed.doc_lines {
        let t = text.trim();
        if !t.starts_with('|') || !t.contains("`0x") {
            continue;
        }
        // Escaped pipes (`\|`) inside payload cells must not split.
        let unescaped = t.replace("\\|", "\u{1}");
        let cells: Vec<String> =
            unescaped.split('|').map(|c| c.trim().replace('\u{1}', "|")).collect();
        // cells[0] is the empty lead; code in cells[1], name in cells[3].
        let code = cells
            .get(1)
            .map(|c| c.trim_matches('`'))
            .and_then(|c| c.strip_prefix("0x").and_then(|h| u8::from_str_radix(h, 16).ok()));
        let name = cells.get(3).map(|c| c.trim_matches('`').to_string());
        if let (Some(code), Some(name)) = (code, name) {
            rows.push((code, name, *line));
        }
    }
    rows
}
