//! The rule passes. Each is a pure function from lexed/scanned sources
//! (plus its manifest section) to findings; the runner in the crate
//! root wires them to the invariants manifest and applies
//! suppressions.

pub mod gate_drift;
pub mod lock_order;
pub mod never_panic;
pub mod protocol_surface;
pub mod unsafe_attr;
