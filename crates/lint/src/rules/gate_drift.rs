//! Gate-drift: every bench ratio gate the CI workflow runs
//! (`cargo bench -p … --bench <target> -- <filter>`) must name a bench
//! target file that exists and a filter that matches a bench registered
//! in it — otherwise the gate silently runs zero benches and the
//! regression it was guarding walks in unnoticed.

use crate::lexer::{lex, TokKind};
use crate::manifest::{GatesCfg, Severity};
use crate::{Finding, RULE_GATE_DRIFT};
use std::path::Path;

/// One `cargo bench … --bench <target> -- <filter>` invocation found in
/// the workflow.
#[derive(Debug, PartialEq, Eq)]
pub struct Gate {
    /// 1-based workflow line.
    pub line: u32,
    /// The `--bench` target name (`micro`).
    pub target: String,
    /// The positional filter after `--`, if any (`fleet_query`).
    pub filter: Option<String>,
}

/// Extracts bench gates from workflow text.
pub fn parse_gates(workflow: &str) -> Vec<Gate> {
    let mut gates = Vec::new();
    for (idx, line) in workflow.lines().enumerate() {
        if !line.contains("cargo bench") || !line.contains("--bench") {
            continue;
        }
        let words: Vec<&str> = line.split_whitespace().collect();
        let Some(bench_pos) = words.iter().position(|w| *w == "--bench") else {
            continue;
        };
        let Some(target) = words.get(bench_pos + 1) else {
            continue;
        };
        let filter = words
            .iter()
            .position(|w| *w == "--")
            .and_then(|p| words.get(p + 1))
            .filter(|w| !w.starts_with('-'))
            .map(|w| w.to_string());
        gates.push(Gate { line: (idx + 1) as u32, target: target.to_string(), filter });
    }
    gates
}

/// The bench names registered in one bench target file: string literals
/// passed directly to `bench_function(…)`, plus string literals bound
/// by `let <ident> = "…";` (the `gate_name` idiom).
pub fn bench_names(src: &str) -> Vec<String> {
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("bench_function")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Str)
        {
            names.push(toks[i + 2].text.clone());
        }
        if t.is_ident("let")
            && toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 2).is_some_and(|n| n.is_punct('='))
            && toks.get(i + 3).is_some_and(|n| n.kind == TokKind::Str)
            && toks.get(i + 4).is_some_and(|n| n.is_punct(';'))
        {
            names.push(toks[i + 3].text.clone());
        }
    }
    names
}

/// Runs the gate-drift pass. `root` is the workspace root the
/// manifest's paths are relative to.
pub fn check(root: &Path, cfg: &GatesCfg) -> Vec<Finding> {
    let mut findings = Vec::new();
    let workflow_path = root.join(&cfg.workflow);
    let Ok(workflow) = std::fs::read_to_string(&workflow_path) else {
        findings.push(Finding {
            file: cfg.workflow.clone(),
            line: 1,
            rule: RULE_GATE_DRIFT,
            message: format!("cannot read workflow `{}`", workflow_path.display()),
            severity: Severity::Error,
        });
        return findings;
    };
    for gate in parse_gates(&workflow) {
        let bench_file = root.join(&cfg.bench_dir).join(format!("{}.rs", gate.target));
        let Ok(bench_src) = std::fs::read_to_string(&bench_file) else {
            findings.push(Finding {
                file: cfg.workflow.clone(),
                line: gate.line,
                rule: RULE_GATE_DRIFT,
                message: format!(
                    "gate runs `--bench {}` but {}/{}.rs does not exist",
                    gate.target, cfg.bench_dir, gate.target
                ),
                severity: Severity::Error,
            });
            continue;
        };
        let Some(filter) = gate.filter else {
            // `-- --test` smoke runs and unfiltered runs can't drift.
            continue;
        };
        let names = bench_names(&bench_src);
        if !names.iter().any(|n| n.contains(filter.as_str())) {
            findings.push(Finding {
                file: cfg.workflow.clone(),
                line: gate.line,
                rule: RULE_GATE_DRIFT,
                message: format!(
                    "gate filter `{filter}` matches no bench registered in {}/{}.rs",
                    cfg.bench_dir, gate.target
                ),
                severity: Severity::Error,
            });
        }
    }
    findings
}
