//! Panic-freedom: in functions declared never-panic by the manifest,
//! flag every construct that can abort the process — `unwrap()`,
//! `.expect(…)`, the panicking macros, non-debug asserts, and bare
//! slice/array indexing (`data[i]`, `&data[..4]`), which is the panic
//! the fuzz suite keeps finding in decode paths. `debug_assert*` is
//! exempt (compiled out of release), as is anything under
//! `#[cfg(test)]`.

use crate::lexer::{TokKind, Token};
use crate::manifest::NeverPanicScope;
use crate::source::SourceFile;
use crate::{Finding, RULE_NEVER_PANIC};

/// Keywords that may directly precede `[` without it being an index
/// expression (slice patterns, array types/literals after `=` are
/// covered by punctuation; these cover `let [a, b] = …`-style code).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "move", "as", "break", "continue",
    "loop", "while", "for", "where", "dyn", "impl", "fn", "pub", "use", "crate", "static", "const",
    "type", "enum", "struct", "trait", "unsafe", "extern", "super", "mod", "box", "yield", "await",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

fn construct_enabled(scope: &NeverPanicScope, name: &str) -> bool {
    scope.constructs.is_empty() || scope.constructs.iter().any(|c| c == name)
}

fn in_scope(scope: &NeverPanicScope, fn_name: Option<&str>) -> bool {
    match fn_name {
        Some(name) => scope.functions.iter().any(|p| p == "*" || name.starts_with(p.as_str())),
        // Code outside any fn (consts, statics) can't panic at runtime
        // on these paths; skip it.
        None => false,
    }
}

/// Runs the panic-freedom pass for one manifest scope over one file.
pub fn check(src: &SourceFile, scope: &NeverPanicScope) -> Vec<Finding> {
    let toks = &src.lexed.tokens;
    let mut findings = Vec::new();
    let mut push = |line: u32, message: String| {
        findings.push(Finding {
            file: src.rel.clone(),
            line,
            rule: RULE_NEVER_PANIC,
            message,
            severity: scope.severity,
        });
    };
    for (i, t) in toks.iter().enumerate() {
        let ctx = src.scan.ctx[i];
        if ctx.in_test || !in_scope(scope, src.scan.fn_name(i)) {
            continue;
        }
        let fn_name = src.scan.fn_name(i).unwrap_or("?");
        match t.kind {
            TokKind::Ident => {
                let prev_dot = i > 0 && toks[i - 1].is_punct('.');
                let next_open = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
                let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
                if t.text == "unwrap" && prev_dot && next_open && construct_enabled(scope, "unwrap")
                {
                    push(t.line, format!("`.unwrap()` in never-panic fn `{fn_name}`"));
                } else if t.text == "expect"
                    && prev_dot
                    && next_open
                    && construct_enabled(scope, "expect")
                {
                    push(t.line, format!("`.expect(…)` in never-panic fn `{fn_name}`"));
                } else if next_bang
                    && PANIC_MACROS.contains(&t.text.as_str())
                    && construct_enabled(scope, "panic-macro")
                {
                    push(t.line, format!("`{}!` in never-panic fn `{fn_name}`", t.text));
                } else if next_bang
                    && ASSERT_MACROS.contains(&t.text.as_str())
                    && construct_enabled(scope, "assert")
                {
                    push(
                        t.line,
                        format!(
                            "non-debug `{}!` in never-panic fn `{fn_name}` (use debug_assert)",
                            t.text
                        ),
                    );
                }
            }
            TokKind::Punct if t.is_punct('[') && construct_enabled(scope, "index") => {
                let Some(prev) = i.checked_sub(1).map(|p| &toks[p]) else {
                    continue;
                };
                let indexes_value = match prev.kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                    TokKind::Str => true, // "abc"[..] — indexing a literal
                    _ => false,
                };
                if indexes_value {
                    push(
                        t.line,
                        format!(
                            "bare slice indexing in never-panic fn `{fn_name}` \
                             (use .get()/split_first_chunk/slice patterns)"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    findings
}

/// `true` if any token of `src` contains a panicking construct at all —
/// a cheap pre-filter used by tests.
pub fn mentions_panic_construct(tokens: &[Token]) -> bool {
    tokens.iter().any(|t| {
        t.kind == TokKind::Ident
            && (t.text == "unwrap"
                || t.text == "expect"
                || PANIC_MACROS.contains(&t.text.as_str())
                || ASSERT_MACROS.contains(&t.text.as_str()))
    })
}
