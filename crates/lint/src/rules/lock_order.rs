//! Lock-order: checks every function of a file against the declared
//! lock hierarchy, flagging acquisitions that could deadlock.
//!
//! The model is shallow but honest about what the daemon actually
//! does. An acquisition is any `<recv>.lock()`; its lock name is the
//! last field identifier before `.lock()` (`self.sessions.lock()` →
//! `sessions`, `existing.state.lock()` → `state`). Names not in the
//! declared order are ignored. A guard is **named** when the statement
//! is exactly `let [mut] x = <recv>.lock()` followed only by an
//! optional `.unwrap_or_else(…)` / `?` and `;` — it is then held until
//! its block closes or `drop(x)`. Anything else is a **temporary**,
//! held to the end of its statement *including trailing blocks* (the
//! `if let Some(g) = m.lock().… { … }` extension), which
//! over-approximates plain `if` conditions — conservative in the
//! deadlock direction.
//!
//! Acquiring a lock of rank ≤ any held rank is an inversion (equal rank
//! covers re-entrant double-locking, which `std::sync::Mutex` turns
//! into deadlock or poison).

use crate::lexer::{TokKind, Token};
use crate::manifest::LockOrder;
use crate::manifest::Severity;
use crate::source::SourceFile;
use crate::{Finding, RULE_LOCK_ORDER};

#[derive(Debug)]
struct Guard {
    rank: usize,
    lock: String,
    /// The `let` binding, for `drop(x)` release; `None` for temporaries.
    binding: Option<String>,
    /// Brace depth at acquisition.
    depth: u32,
}

/// Walks back from the `.` of `.lock()` to the receiver's last field
/// identifier, skipping one trailing index/call group
/// (`shards[i].lock()` → `shards`).
fn lock_name(toks: &[Token], dot_idx: usize) -> Option<String> {
    let mut j = dot_idx.checked_sub(1)?;
    if toks[j].is_punct(']') || toks[j].is_punct(')') {
        let close = if toks[j].is_punct(']') { ']' } else { ')' };
        let open = if close == ']' { '[' } else { '(' };
        let mut depth = 0i32;
        loop {
            if toks[j].is_punct(close) {
                depth += 1;
            } else if toks[j].is_punct(open) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    (toks[j].kind == TokKind::Ident).then(|| toks[j].text.clone())
}

/// Does the statement starting at `stmt_start` bind a `let` guard, and
/// is the tail after the `.lock()` call (index of its `)`) only the
/// allowed recovery suffix? Returns the binding name if so.
fn named_binding(toks: &[Token], stmt_start: usize, close_idx: usize) -> Option<String> {
    let mut k = stmt_start;
    if !toks.get(k)?.is_ident("let") {
        return None;
    }
    k += 1;
    if toks.get(k)?.is_ident("mut") {
        k += 1;
    }
    let name = toks.get(k).filter(|t| t.kind == TokKind::Ident)?.text.clone();
    if !toks.get(k + 1)?.is_punct('=') {
        return None;
    }
    // Tail: ( `.` unwrap_or_else|unwrap_or_default ( … ) | `?` )* `;`
    let mut j = close_idx + 1;
    loop {
        let t = toks.get(j)?;
        if t.is_punct(';') {
            return Some(name);
        }
        if t.is_punct('?') {
            j += 1;
            continue;
        }
        if t.is_punct('.')
            && toks
                .get(j + 1)
                .is_some_and(|n| n.is_ident("unwrap_or_else") || n.is_ident("unwrap_or_default"))
        {
            // Skip the call's argument list.
            let mut depth = 0i32;
            j += 2;
            loop {
                let t = toks.get(j)?;
                if t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
            continue;
        }
        return None;
    }
}

/// Runs the lock-order pass over one file.
pub fn check(src: &SourceFile, cfg: &LockOrder) -> Vec<Finding> {
    let toks = &src.lexed.tokens;
    let mut findings = Vec::new();
    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0u32;
    let mut stmt_start = 0usize;
    let mut cur_fn: Option<u32> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let ctx = src.scan.ctx[i];
        // Function boundary: reset all tracking.
        if ctx.fn_idx != cur_fn {
            cur_fn = ctx.fn_idx;
            held.clear();
            stmt_start = i;
        }
        if t.is_punct('{') {
            depth += 1;
            stmt_start = i + 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            // Temporaries die when their statement's trailing block
            // chain returns to (or falls below) acquisition depth;
            // named guards only when their block closes.
            held.retain(|g| if g.binding.is_some() { g.depth <= depth } else { g.depth < depth });
            stmt_start = i + 1;
        } else if t.is_punct(';') {
            held.retain(|g| g.binding.is_some() || g.depth != depth);
            stmt_start = i + 1;
        } else if t.is_ident("drop") && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            if let Some(arg) = toks.get(i + 2).filter(|a| a.kind == TokKind::Ident) {
                if toks.get(i + 3).is_some_and(|n| n.is_punct(')')) {
                    held.retain(|g| g.binding.as_deref() != Some(arg.text.as_str()));
                }
            }
        } else if t.is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_ident("lock"))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            if !ctx.in_test {
                if let Some(name) = lock_name(toks, i) {
                    if let Some(rank) = cfg.order.iter().position(|l| *l == name) {
                        for g in &held {
                            if rank <= g.rank {
                                findings.push(Finding {
                                    file: src.rel.clone(),
                                    line: t.line,
                                    rule: RULE_LOCK_ORDER,
                                    message: format!(
                                        "acquired `{name}` (rank {rank}) while holding `{}` \
                                         (rank {}); declared order: {}",
                                        g.lock,
                                        g.rank,
                                        cfg.order.join(" → ")
                                    ),
                                    severity: Severity::Error,
                                });
                            }
                        }
                        let binding = named_binding(toks, stmt_start, i + 3);
                        held.push(Guard { rank, lock: name, binding, depth });
                    }
                }
            }
            i += 4;
            continue;
        }
        i += 1;
    }
    findings
}
