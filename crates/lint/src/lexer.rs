//! A comment/string/raw-string-aware lexer for Rust source.
//!
//! This is deliberately *not* a full Rust lexer: the analyses only need
//! identifiers, punctuation, numbers, and line positions, with string
//! bodies and comments reliably skipped so that `"panic!"` inside a
//! string literal or a commented-out `unwrap()` never produces a
//! finding. It handles the constructs that defeat naive scanners:
//! nested block comments, raw strings with arbitrary `#` fences, byte
//! and C strings, char literals (including escapes) versus lifetimes,
//! and raw identifiers.
//!
//! Two side channels ride along with the token stream:
//! [`Suppression`]s parsed from `// lint:allow(<rule>): <reason>`
//! comments, and module/item doc-comment lines (for the
//! protocol-surface check's frame-table parse).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `unwrap`, `r#type` → `type`).
    Ident,
    /// A numeric literal (`0x81`, `12`, `0.23`, `4u64`).
    Num,
    /// Any string literal (`"…"`, `r#"…"#`, `b"…"`, `c"…"`); `text`
    /// holds the *contents* (escapes unprocessed, fences stripped).
    Str,
    /// A char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// A single punctuation character.
    Punct,
}

/// One lexeme with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexeme kind.
    pub kind: TokKind,
    /// The lexeme text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line the lexeme starts on.
    pub line: u32,
}

impl Token {
    /// `true` if this is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// `true` if this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

/// A `// lint:allow(<rule>): <reason>` comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether a non-empty reason follows the closing paren.
    pub has_reason: bool,
}

/// The output of [`lex`]: tokens plus the comment side channels.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// Every `lint:allow` comment found, in source order.
    pub suppressions: Vec<Suppression>,
    /// Doc-comment lines (`//! …` and `/// …`) as `(line, text)`, with
    /// the comment marker stripped but interior whitespace kept.
    pub doc_lines: Vec<(u32, String)>,
}

/// Lexes `src`, skipping comments and classifying string-like literals
/// so downstream analyses never misread their contents as code.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comments: `//`, `///`, `//!`.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[start..j].iter().collect();
            note_comment(&mut out, line, &text);
            i = j;
            continue;
        }
        // Block comments, which nest in Rust.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // String-like prefixes: r"…", r#"…"#, b"…", br#"…"#, c"…",
        // b'…', and raw identifiers r#ident.
        if matches!(c, 'r' | 'b' | 'c') {
            if let Some(next) = lex_prefixed(&chars, i, &mut line, &mut out.tokens) {
                i = next;
                continue;
            }
        }
        if c == '"' {
            i = lex_string(&chars, i + 1, &mut line, &mut out.tokens, 0, true);
            continue;
        }
        if c == '\'' {
            i = lex_quote(&chars, i, line, &mut out.tokens);
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < chars.len() {
                let d = chars[i];
                if d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit))
                {
                    i += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }
        out.tokens.push(Token { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    out
}

/// Records a line comment's side-channel payloads: doc text and
/// `lint:allow` suppressions.
fn note_comment(out: &mut Lexed, line: u32, text: &str) {
    if let Some(rest) = text.strip_prefix('/').or_else(|| text.strip_prefix('!')) {
        out.doc_lines.push((line, rest.strip_prefix(' ').unwrap_or(rest).to_string()));
        return;
    }
    let trimmed = text.trim_start();
    if let Some(rest) = trimmed.strip_prefix("lint:allow(") {
        if let Some(close) = rest.find(')') {
            let rule = rest[..close].trim().to_string();
            let tail = &rest[close + 1..];
            let has_reason =
                tail.trim_start().strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
            out.suppressions.push(Suppression { line, rule, has_reason });
        }
    }
}

/// Tries to lex a prefixed literal (`r"`, `r#"`, `br"`, `b"`, `b'`,
/// `c"`, `r#ident`) starting at `i`. Returns the index after it, or
/// `None` when the characters at `i` are a plain identifier after all.
fn lex_prefixed(
    chars: &[char],
    i: usize,
    line: &mut u32,
    tokens: &mut Vec<Token>,
) -> Option<usize> {
    let start_line = *line;
    let c = chars[i];
    // b'…' byte char.
    if c == 'b' && chars.get(i + 1) == Some(&'\'') {
        let end = lex_quote(chars, i + 1, start_line, tokens);
        return Some(end);
    }
    // Raw-ish prefixes: optional leading b/c, optional r, optional #s,
    // then a quote.
    let mut j = i;
    let mut raw = false;
    if chars[j] == 'b' || chars[j] == 'c' {
        j += 1;
        if chars.get(j) == Some(&'r') {
            raw = true;
            j += 1;
        }
    } else if chars[j] == 'r' {
        raw = true;
        j += 1;
    }
    let mut hashes = 0usize;
    while raw && chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        let end = lex_string(chars, j + 1, line, tokens, hashes, !raw);
        return Some(end);
    }
    // r#ident raw identifier: strip the prefix, lex the ident.
    if raw && hashes == 1 && chars.get(j).is_some_and(|ch| ch.is_alphabetic() || *ch == '_') {
        let start = j;
        let mut k = j;
        while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
            k += 1;
        }
        tokens.push(Token {
            kind: TokKind::Ident,
            text: chars[start..k].iter().collect(),
            line: start_line,
        });
        return Some(k);
    }
    None
}

/// Lexes a string body starting just past the opening quote. `hashes`
/// is the raw fence length (0 for non-raw), `escapes` whether `\` is an
/// escape character. Returns the index past the closing quote.
fn lex_string(
    chars: &[char],
    mut i: usize,
    line: &mut u32,
    tokens: &mut Vec<Token>,
    hashes: usize,
    escapes: bool,
) -> usize {
    let start_line = *line;
    let start = i;
    let mut content_end;
    loop {
        if i >= chars.len() {
            content_end = i;
            break;
        }
        let c = chars[i];
        if c == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if escapes && c == '\\' {
            i += 2;
            continue;
        }
        if c == '"' {
            // A raw string only closes on `"` followed by its fence.
            let fence_ok = (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'));
            if fence_ok {
                content_end = i;
                i += 1 + hashes;
                break;
            }
        }
        i += 1;
    }
    content_end = content_end.min(chars.len());
    tokens.push(Token {
        kind: TokKind::Str,
        text: chars[start..content_end].iter().collect(),
        line: start_line,
    });
    i
}

/// Lexes at a `'`: a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
/// Returns the index past the lexeme.
fn lex_quote(chars: &[char], i: usize, line: u32, tokens: &mut Vec<Token>) -> usize {
    // Lifetime: 'ident not closed by a quote right after one char.
    let first = chars.get(i + 1).copied();
    if first.is_some_and(|ch| ch.is_alphabetic() || ch == '_') && chars.get(i + 2) != Some(&'\'') {
        let start = i + 1;
        let mut j = start;
        while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        tokens.push(Token {
            kind: TokKind::Lifetime,
            text: chars[start..j].iter().collect(),
            line,
        });
        return j;
    }
    // Char literal; handle escapes including '\u{…}'.
    let start = i + 1;
    let mut j = start;
    if chars.get(j) == Some(&'\\') {
        j += 1;
        if chars.get(j) == Some(&'u') && chars.get(j + 1) == Some(&'{') {
            j += 2;
            while j < chars.len() && chars[j] != '}' {
                j += 1;
            }
        }
        j += 1; // the escaped character (or the `}`)
    } else if j < chars.len() {
        j += 1;
    }
    let content: String = chars[start..j.min(chars.len())].iter().collect();
    if chars.get(j) == Some(&'\'') {
        j += 1;
    }
    tokens.push(Token { kind: TokKind::Char, text: content, line });
    j
}
