//! CLI for the workspace invariant checker. See the
//! [library docs](rlscope_lint) for the rule set; run as
//! `cargo run -p rlscope-lint -- --check` from anywhere in the
//! workspace.

#![forbid(unsafe_code)]

use rlscope_lint::manifest::Severity;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: rlscope-lint [--check] [--format text|json] [--root <dir>]

Checks the workspace against lint/invariants.toml. Exits 0 when clean
(warnings allowed), 1 on unsuppressed error-level findings, 2 on a
configuration or I/O problem.";

fn workspace_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return Some(root);
    }
    // When run via `cargo run -p rlscope-lint`, the manifest dir is
    // <root>/crates/lint; otherwise walk up from the cwd to the first
    // directory holding lint/invariants.toml.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(dir).join("..").join("..");
        if candidate.join("lint").join("invariants.toml").exists() {
            return Some(candidate);
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("lint").join("invariants.toml").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => {
                    eprintln!("--format takes `text` or `json`\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root takes a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = workspace_root(root_arg) else {
        eprintln!("rlscope-lint: could not locate a workspace root holding lint/invariants.toml");
        return ExitCode::from(2);
    };
    let manifest = match rlscope_lint::load_manifest(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("rlscope-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = match rlscope_lint::run(&root, &manifest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("rlscope-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", rlscope_lint::to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
    }
    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;
    if !json {
        if errors == 0 && warnings == 0 {
            println!("rlscope-lint: clean");
        } else {
            println!("rlscope-lint: {errors} error(s), {warnings} warning(s)");
        }
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
