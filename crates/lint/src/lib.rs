//! `rlscope-lint`: the workspace invariant checker.
//!
//! The collector's contracts — decode paths return typed errors and
//! never panic, the daemon's locks are acquired in one declared order,
//! the wire protocol's frame/error codes stay in lockstep with their
//! encode sites, decode matches, and docs table, and every CI bench
//! gate still names a real bench — are enforced *statically* here, so
//! a future PR's `unwrap()` in a decode path fails CI before any fuzz
//! input ever reaches it.
//!
//! The tool is self-contained and dependency-free (not even the
//! vendored stubs): a comment/string/raw-string-aware [`lexer`], a
//! shallow brace/function [`scan`] layer, and four rule passes under
//! [`rules`], driven by the checked-in manifest `lint/invariants.toml`
//! ([`manifest`]).
//!
//! # Rules
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `never-panic` | no `unwrap`/`expect`/panicking macros/non-debug asserts/bare indexing in manifest-declared decode/recover functions |
//! | `lock-order` | nested `.lock()` acquisitions follow the declared per-file lock hierarchy |
//! | `protocol-surface` | frame-kind consts and `ErrorCode` variants are unique, encoded, decoded, and documented in the frame table |
//! | `gate-drift` | every CI bench ratio gate filter matches a registered bench |
//! | `forbid-unsafe` | every first-party crate root carries `#![forbid(unsafe_code)]` (or reasoned `deny`) |
//! | `suppression` | every in-tree `lint:allow` carries a reason |
//!
//! # Suppressions
//!
//! A finding on line *N* is suppressed by a comment on line *N* or
//! *N − 1*:
//!
//! ```text
//! // lint:allow(never-panic): length checked two lines up
//! ```
//!
//! The reason after the colon is mandatory — a reasonless `lint:allow`
//! suppresses nothing and is itself reported under the `suppression`
//! rule.
//!
//! # Adding a rule
//!
//! Write a pass in [`rules`] taking [`source::SourceFile`]s (lex once,
//! reuse everywhere), give it a `RULE_*` name constant here, wire its
//! manifest section in [`manifest`], and call it from [`run`].
//! Suppression handling is free: the runner applies `lint:allow`
//! filtering to every rule uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod scan;
pub mod source;

use manifest::{Manifest, Severity};
use source::SourceFile;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Rule name: panic-freedom in declared never-panic functions.
pub const RULE_NEVER_PANIC: &str = "never-panic";
/// Rule name: declared lock-hierarchy conformance.
pub const RULE_LOCK_ORDER: &str = "lock-order";
/// Rule name: protocol frame/error-code surface conformance.
pub const RULE_PROTOCOL_SURFACE: &str = "protocol-surface";
/// Rule name: CI bench gate ↔ bench registration conformance.
pub const RULE_GATE_DRIFT: &str = "gate-drift";
/// Rule name: `#![forbid(unsafe_code)]` presence in crate roots.
pub const RULE_FORBID_UNSAFE: &str = "forbid-unsafe";
/// Rule name: `lint:allow` comments missing their mandatory reason.
pub const RULE_SUPPRESSION: &str = "suppression";

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule name (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Whether this fails the run.
    pub severity: Severity,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.severity == Severity::Warn {
            write!(f, "warning: ")?;
        }
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// A failure of the lint run itself (unreadable manifest or source) —
/// distinct from findings, and fatal.
#[derive(Debug)]
pub struct LintError(pub String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for LintError {}

/// Loads each referenced source exactly once, keyed by relative path.
#[derive(Default)]
struct Sources {
    files: BTreeMap<String, SourceFile>,
}

impl Sources {
    fn get(&mut self, root: &Path, rel: &str) -> Result<&SourceFile, LintError> {
        if !self.files.contains_key(rel) {
            let file = SourceFile::load(root, rel)
                .map_err(|e| LintError(format!("cannot read `{rel}`: {e}")))?;
            self.files.insert(rel.to_string(), file);
        }
        Ok(&self.files[rel])
    }
}

/// Runs every pass of `manifest` over the workspace at `root` and
/// returns the surviving (unsuppressed) findings, sorted by file, line,
/// then rule.
///
/// # Errors
/// Fails when the manifest or a referenced source file cannot be read —
/// configuration problems, as opposed to findings.
pub fn run(root: &Path, manifest: &Manifest) -> Result<Vec<Finding>, LintError> {
    let mut sources = Sources::default();
    let mut findings = Vec::new();

    for scope in &manifest.never_panic {
        let src = sources.get(root, &scope.file)?;
        findings.extend(rules::never_panic::check(src, scope));
    }
    for cfg in &manifest.lock_order {
        let src = sources.get(root, &cfg.file)?;
        findings.extend(rules::lock_order::check(src, cfg));
    }
    if !manifest.protocol.file.is_empty() {
        for rel in manifest
            .protocol
            .usage
            .iter()
            .chain([&manifest.protocol.file, &manifest.protocol.doc_table])
        {
            sources.get(root, rel)?;
        }
        let proto = &sources.files[&manifest.protocol.file];
        let doc = &sources.files[&manifest.protocol.doc_table];
        let usage: Vec<&SourceFile> =
            manifest.protocol.usage.iter().map(|rel| &sources.files[rel]).collect();
        findings.extend(rules::protocol_surface::check(proto, doc, &usage));
    }
    if !manifest.gates.workflow.is_empty() {
        findings.extend(rules::gate_drift::check(root, &manifest.gates));
    }
    for rel in &manifest.forbid_unsafe {
        let src = sources.get(root, rel)?;
        findings.extend(rules::unsafe_attr::check(src));
    }

    // Apply suppressions: a reasoned lint:allow on the finding's line
    // or the line above kills it; a reasonless one is itself a finding.
    let mut surviving = Vec::new();
    for f in findings {
        let suppressed = sources.files.get(&f.file).is_some_and(|src| {
            src.lexed.suppressions.iter().any(|s| {
                s.rule == f.rule && s.has_reason && (s.line == f.line || s.line + 1 == f.line)
            })
        });
        if !suppressed {
            surviving.push(f);
        }
    }
    for src in sources.files.values() {
        for s in &src.lexed.suppressions {
            if !s.has_reason {
                surviving.push(Finding {
                    file: src.rel.clone(),
                    line: s.line,
                    rule: RULE_SUPPRESSION,
                    message: format!(
                        "`lint:allow({})` requires a reason: `// lint:allow({}): <why>`",
                        s.rule, s.rule
                    ),
                    severity: Severity::Error,
                });
            }
        }
    }
    surviving
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(surviving)
}

/// Loads `lint/invariants.toml` under `root`.
///
/// # Errors
/// Fails when the manifest is missing or malformed.
pub fn load_manifest(root: &Path) -> Result<Manifest, LintError> {
    let path = root.join("lint").join("invariants.toml");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| LintError(format!("cannot read `{}`: {e}", path.display())))?;
    manifest::parse(&text).map_err(|e| LintError(e.to_string()))
}

/// Renders findings as a JSON array (machine-readable `--format json`),
/// stable field order, one object per finding.
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}{}\n",
            esc(&f.file),
            f.line,
            f.rule,
            f.severity,
            esc(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}
