//! Golden findings suite: runs the whole lint over the checked-in
//! fixture workspace under `tests/fixtures/demo` and asserts the exact
//! `file:line: rule: message` output — one fixture violation per rule
//! (decode-path unwrap, lock inversion, undocumented frame code,
//! nonexistent bench gate, missing forbid attr), plus the suppression
//! semantics (reasoned `lint:allow` kills a finding, reasonless is
//! itself a finding).

use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/demo")
}

fn fixture_findings() -> Vec<rlscope_lint::Finding> {
    let root = fixture_root();
    let manifest = rlscope_lint::load_manifest(&root).expect("fixture manifest parses");
    rlscope_lint::run(&root, &manifest).expect("lint runs over the fixture tree")
}

#[test]
fn golden_fixture_findings() {
    let got: Vec<String> = fixture_findings().iter().map(|f| f.to_string()).collect();
    let want = [
        ".github/workflows/ci.yml:6: gate-drift: gate filter `ghost_gate` matches no bench registered in benches/micro.rs",
        ".github/workflows/ci.yml:7: gate-drift: gate runs `--bench missing` but benches/missing.rs does not exist",
        "src/daemon.rs:25: lock-order: acquired `sessions` (rank 0) while holding `writer` (rank 2); declared order: sessions → state → writer",
        "src/decode.rs:4: never-panic: `.unwrap()` in never-panic fn `decode`",
        "src/decode.rs:5: never-panic: `.expect(…)` in never-panic fn `decode`",
        "src/decode.rs:7: never-panic: `panic!` in never-panic fn `decode`",
        "src/decode.rs:9: never-panic: non-debug `assert!` in never-panic fn `decode` (use debug_assert)",
        "src/decode.rs:11: never-panic: bare slice indexing in never-panic fn `decode` (use .get()/split_first_chunk/slice patterns)",
        "src/decode.rs:14: suppression: `lint:allow(never-panic)` requires a reason: `// lint:allow(never-panic): <why>`",
        "src/decode.rs:15: never-panic: bare slice indexing in never-panic fn `decode` (use .get()/split_first_chunk/slice patterns)",
        "src/decode.rs:20: never-panic: bare slice indexing in never-panic fn `read_header` (use .get()/split_first_chunk/slice patterns)",
        "src/deny_root.rs:2: forbid-unsafe: `#![deny(unsafe_code)]` needs a reasoned `// lint:allow(forbid-unsafe): <why>` beside it",
        "src/lib.rs:1: forbid-unsafe: crate root is missing `#![forbid(unsafe_code)]`",
        "src/proto.rs:7: protocol-surface: doc frame table row `GONE` (0x03) has no matching const",
        "src/proto.rs:11: protocol-surface: frame `ROGUE` (0x02) missing from the doc frame table in src/proto.rs",
        "src/proto.rs:17: protocol-surface: `ErrorCode::Internal` is not decoded by `from_u8`",
        "src/proto.rs:17: protocol-surface: `ErrorCode::Internal` is never constructed outside `from_u8`",
    ];
    assert_eq!(got, want.map(String::from), "golden findings drifted:\n{}", got.join("\n"));
}

#[test]
fn suppression_semantics() {
    let findings = fixture_findings();
    // The reasoned lint:allow on decode.rs:12 kills the line-13 index
    // finding; the reasonless one on line 14 kills nothing and is
    // itself reported.
    assert!(
        !findings.iter().any(|f| f.file == "src/decode.rs" && f.line == 13),
        "reasoned lint:allow failed to suppress"
    );
    assert!(findings
        .iter()
        .any(|f| f.file == "src/decode.rs" && f.line == 15 && f.rule == "never-panic"));
    assert!(findings
        .iter()
        .any(|f| f.file == "src/decode.rs" && f.line == 14 && f.rule == "suppression"));
    // The excused deny root (reasoned allow beside the attr) is clean.
    assert!(!findings.iter().any(|f| f.file == "src/excused_root.rs"));
}

#[test]
fn json_output_shape() {
    let findings = fixture_findings();
    let json = rlscope_lint::to_json(&findings);
    assert!(json.starts_with("[\n") && json.ends_with(']'));
    assert_eq!(json.matches("{\"file\":").count(), findings.len(), "one JSON object per finding");
    assert!(json.contains(
        "{\"file\":\"src/decode.rs\",\"line\":4,\"rule\":\"never-panic\",\"severity\":\"error\",\
         \"message\":\"`.unwrap()` in never-panic fn `decode`\"}"
    ));
}

/// The real workspace must lint clean at error severity — the same
/// assertion CI's `lint-invariants` job enforces, kept here so `cargo
/// test` alone catches a violation before CI does.
#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let manifest = rlscope_lint::load_manifest(&root).expect("workspace manifest parses");
    let findings = rlscope_lint::run(&root, &manifest).expect("lint runs over the workspace");
    let errors: Vec<String> = findings
        .iter()
        .filter(|f| f.severity == rlscope_lint::manifest::Severity::Error)
        .map(|f| f.to_string())
        .collect();
    assert!(errors.is_empty(), "workspace has lint errors:\n{}", errors.join("\n"));
}
