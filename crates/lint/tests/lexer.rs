//! Unit tests for the lexer: the constructs that defeat naive scanners
//! must never leak string/comment contents into the token stream, and
//! the side channels (suppressions, doc lines) must parse exactly.

use rlscope_lint::lexer::{lex, TokKind};

/// The identifier texts of a lexed snippet, for concise assertions.
fn idents(src: &str) -> Vec<String> {
    lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
}

#[test]
fn line_comments_are_skipped() {
    let l = lex("let a = 1; // unwrap() panic! here\nlet b = 2;");
    assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap") || t.is_ident("panic")));
    assert_eq!(idents("let a = 1; // unwrap()\nlet b = 2;"), ["let", "a", "let", "b"]);
}

#[test]
fn nested_block_comments_are_skipped() {
    let src = "before /* outer /* inner unwrap() */ still comment */ after";
    assert_eq!(idents(src), ["before", "after"]);
    // Line counting survives multi-line block comments.
    let l = lex("/* a\nb\nc */ x");
    assert_eq!(l.tokens[0].line, 3);
}

#[test]
fn string_contents_never_tokenize() {
    let l = lex(r#"let m = "call unwrap() and panic!";"#);
    assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap") || t.is_ident("panic")));
    let strs: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].text, "call unwrap() and panic!");
}

#[test]
fn raw_strings_with_fences() {
    // A raw string closes only on a quote followed by its full fence —
    // an interior `"#` must not end an `r##"…"##` literal.
    let l = lex(r####"let s = r##"inner "# quote and unwrap()"##;"####);
    let strs: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].text, r##"inner "# quote and unwrap()"##);
    assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")));
    // Byte and C strings lex as strings too.
    for src in [r#"b"bytes unwrap()""#, r#"c"cstr unwrap()""#, r##"br#"raw bytes"#"##] {
        let l = lex(src);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1, "{src}");
        assert!(!l.tokens.iter().any(|t| t.is_ident("unwrap")), "{src}");
    }
}

#[test]
fn escaped_quotes_inside_strings() {
    let l = lex(r#"let s = "a \" b"; next"#);
    let strs: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
    assert_eq!(strs.len(), 1);
    assert_eq!(strs[0].text, r#"a \" b"#);
    assert!(l.tokens.iter().any(|t| t.is_ident("next")));
}

#[test]
fn char_literals_vs_lifetimes() {
    let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = '\\''; }");
    let lifetimes: Vec<_> =
        l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text.as_str()).collect();
    assert_eq!(lifetimes, ["a", "a"]);
    let chars: Vec<_> =
        l.tokens.iter().filter(|t| t.kind == TokKind::Char).map(|t| t.text.as_str()).collect();
    assert_eq!(chars, ["x", "\\n", "\\'"]);
    // 'static is a lifetime, not an unterminated char.
    let l = lex("&'static str");
    assert!(l.tokens.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    // b'x' is a char literal, not ident `b` + lifetime.
    let l = lex("let y = b'x';");
    assert!(l.tokens.iter().any(|t| t.kind == TokKind::Char && t.text == "x"));
    // Unicode escapes span the braces.
    let l = lex("let u = '\\u{1F600}';");
    assert!(l.tokens.iter().any(|t| t.kind == TokKind::Char && t.text == "\\u{1F600}"));
}

#[test]
fn raw_identifiers_lex_as_idents() {
    assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
}

#[test]
fn numbers_and_punctuation() {
    let l = lex("x[0x81] = 12.5 + 4u64;");
    let nums: Vec<_> =
        l.tokens.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.as_str()).collect();
    assert_eq!(nums, ["0x81", "12.5", "4u64"]);
    assert!(l.tokens.iter().any(|t| t.is_punct('[')));
    assert!(l.tokens.iter().any(|t| t.is_punct(']')));
}

#[test]
fn suppression_side_channel() {
    let src = "\
// lint:allow(never-panic): length checked above
let a = 1;
// lint:allow(lock-order)
// lint:allow(gate-drift):
// not a suppression: lint:allow is mid-comment prose here
";
    let l = lex(src);
    assert_eq!(l.suppressions.len(), 3);
    assert_eq!(l.suppressions[0].line, 1);
    assert_eq!(l.suppressions[0].rule, "never-panic");
    assert!(l.suppressions[0].has_reason);
    assert_eq!(l.suppressions[1].rule, "lock-order");
    assert!(!l.suppressions[1].has_reason, "no colon means no reason");
    assert_eq!(l.suppressions[2].rule, "gate-drift");
    assert!(!l.suppressions[2].has_reason, "empty reason after colon is no reason");
}

#[test]
fn doc_line_side_channel() {
    let src = "//! module docs\n/// | `0x01` | c→d | `HELLO` | hi |\nfn f() {}\n";
    let l = lex(src);
    assert_eq!(
        l.doc_lines,
        vec![(1, "module docs".to_string()), (2, "| `0x01` | c→d | `HELLO` | hi |".to_string())]
    );
    // Doc lines never produce tokens.
    assert_eq!(idents(src), ["fn", "f"]);
}

#[test]
fn unterminated_string_does_not_hang_or_panic() {
    let l = lex("let s = \"never closed");
    assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    let l = lex("let s = r#\"never closed");
    assert_eq!(l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    let l = lex("/* never closed");
    assert!(l.tokens.is_empty());
}
