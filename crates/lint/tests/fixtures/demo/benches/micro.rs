//! Fixture bench target: registers exactly one gateable bench.

fn benches(c: &mut Criterion) {
    let gate_name = "real_gate_end_to_end";
    c.bench_function(gate_name, |b| b.iter(|| 1));
    c.bench_function("untargeted_extra", |b| b.iter(|| 2));
}
