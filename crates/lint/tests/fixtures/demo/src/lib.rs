//! Fixture crate root with no `#![forbid(unsafe_code)]` at all.

pub mod daemon;
pub mod decode;
pub mod proto;
