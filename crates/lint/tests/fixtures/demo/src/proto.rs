//! Fixture protocol module: `ROGUE` is wired but undocumented, the
//! table's `GONE` row is stale, and `ErrorCode::Internal` is dead.
//!
//! | code | dir | frame | payload |
//! |------|-----|-------|---------|
//! | `0x01` | c→d | `HELLO` | name |
//! | `0x03` | d→c | `GONE` | stale row |

pub mod kind {
    pub const HELLO: u8 = 0x01;
    pub const ROGUE: u8 = 0x02;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    Protocol = 1,
    Internal = 2,
}

impl ErrorCode {
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Protocol,
            _ => return None,
        })
    }
}

pub fn encode_all(w: &mut Vec<u8>) {
    write_frame(w, kind::HELLO, b"hi");
    write_frame(w, kind::ROGUE, b"??");
}

pub fn decode_one(k: u8) -> &'static str {
    match k {
        kind::HELLO => "hello",
        kind::ROGUE => "rogue",
        _ => "unknown",
    }
}

pub fn write_frame(w: &mut Vec<u8>, k: u8, payload: &[u8]) {
    w.push(k);
    w.extend_from_slice(payload);
}

pub fn fail() -> ErrorCode {
    ErrorCode::Protocol
}
