//! Fixture: one lock inversion against the declared hierarchy
//! `sessions -> state -> writer`, plus two conforming paths.

use std::sync::Mutex;

fn recover<T>(e: std::sync::PoisonError<T>) -> T {
    e.into_inner()
}

pub struct Daemon {
    sessions: Mutex<u32>,
    state: Mutex<u32>,
    writer: Mutex<u32>,
}

impl Daemon {
    pub fn in_order(&self) -> u32 {
        let sessions = self.sessions.lock().unwrap_or_else(recover);
        let state = self.state.lock().unwrap_or_else(recover);
        *sessions + *state
    }

    pub fn inverted(&self) -> u32 {
        let writer = self.writer.lock().unwrap_or_else(recover);
        let sessions = self.sessions.lock().unwrap_or_else(recover);
        *writer + *sessions
    }

    pub fn drop_releases(&self) -> u32 {
        let state = self.state.lock().unwrap_or_else(recover);
        let v = *state;
        drop(state);
        let sessions = self.sessions.lock().unwrap_or_else(recover);
        v + *sessions
    }
}
