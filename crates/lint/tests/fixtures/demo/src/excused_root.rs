//! Fixture: `deny` with the reasoned allow — clean.
// lint:allow(forbid-unsafe): fixture needs one unsafe trait impl
#![deny(unsafe_code)]
