//! Fixture: `deny` without the reasoned allow beside it.
#![deny(unsafe_code)]
