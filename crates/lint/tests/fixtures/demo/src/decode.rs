//! Fixture: a decode path with every class of panicking construct.

pub fn decode(data: &[u8]) -> u8 {
    let first = *data.first().unwrap();
    let second = *data.get(1).expect("second byte");
    if data.len() < 4 {
        panic!("too short");
    }
    assert!(!data.is_empty());
    debug_assert!(data.len() > 3);
    let third = data[2];
    // lint:allow(never-panic): length checked on entry
    let fourth = data[3];
    // lint:allow(never-panic)
    let fifth = data[3];
    first + second + third + fourth + fifth
}

pub fn read_header(data: &[u8]) -> u8 {
    data[0]
}

pub fn helper(data: &[u8]) -> u8 {
    data.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        assert_eq!(super::decode(&[1, 2, 3, 4]), 10);
        assert_eq!(super::helper(&[7]), 7);
    }
}
