//! Microbenchmarks of the profiler's hot paths: the overlap sweep, trace
//! encode/decode, tensor math, and GPU stream scheduling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rlscope_core::event::{CpuCategory, Event, EventKind, GpuCategory};
use rlscope_core::overlap::compute_overlap;
use rlscope_core::store::{decode_events, encode_events};
use rlscope_sim::gpu::{GpuDevice, KernelDesc};
use rlscope_sim::ids::{ProcessId, StreamId};
use rlscope_sim::time::{DurationNs, TimeNs};

fn synthetic_events(n: usize) -> Vec<Event> {
    let mut events = Vec::with_capacity(n);
    // One operation spanning everything plus interleaved CPU/GPU events.
    events.push(Event::new(
        ProcessId(0),
        EventKind::Operation,
        "train",
        TimeNs::ZERO,
        TimeNs::from_micros(n as u64 * 10),
    ));
    for i in 0..n {
        let t = i as u64 * 10;
        let kind = match i % 4 {
            0 => EventKind::Cpu(CpuCategory::Python),
            1 => EventKind::Cpu(CpuCategory::Backend),
            2 => EventKind::Cpu(CpuCategory::CudaApi),
            _ => EventKind::Gpu(GpuCategory::Kernel),
        };
        events.push(Event::new(
            ProcessId(0),
            kind,
            "e",
            TimeNs::from_micros(t),
            TimeNs::from_micros(t + 8),
        ));
    }
    events
}

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap_sweep");
    for n in [1_000usize, 10_000] {
        let events = synthetic_events(n);
        group.bench_function(format!("{n}_events"), |b| {
            b.iter(|| compute_overlap(std::hint::black_box(&events)))
        });
    }
    group.finish();
}

fn bench_trace_codec(c: &mut Criterion) {
    let events = synthetic_events(10_000);
    c.bench_function("trace_encode_10k", |b| {
        b.iter(|| encode_events(std::hint::black_box(&events)))
    });
    let encoded = encode_events(&events);
    c.bench_function("trace_decode_10k", |b| {
        b.iter(|| decode_events(std::hint::black_box(&encoded)).unwrap())
    });
}

fn bench_tensor(c: &mut Criterion) {
    use rlscope_backend::Tensor;
    let a = Tensor::full(64, 64, 0.5);
    let bm = Tensor::full(64, 64, 0.25);
    c.bench_function("matmul_64x64", |b| {
        b.iter(|| std::hint::black_box(&a).matmul(std::hint::black_box(&bm)))
    });
}

fn bench_gpu_scheduler(c: &mut Criterion) {
    c.bench_function("gpu_enqueue_10k_kernels", |b| {
        b.iter_batched(
            || GpuDevice::new(4),
            |mut gpu| {
                for i in 0..10_000u64 {
                    gpu.enqueue_kernel(
                        StreamId((i % 4) as u32),
                        &KernelDesc::new("k", DurationNs::from_micros(2)),
                        TimeNs::from_nanos(i * 500),
                    );
                }
                gpu
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_overlap, bench_trace_codec, bench_tensor, bench_gpu_scheduler);
criterion_main!(benches);
