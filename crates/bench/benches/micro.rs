//! Microbenchmarks of the profiler's hot paths: the overlap sweep (batch
//! and streaming), trace encode/decode, chunk-directory analysis, tensor
//! math, and GPU stream scheduling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rlscope_bench::gate;
use rlscope_core::analysis::{Analysis, Dim};
use rlscope_core::event::{CpuCategory, Event, EventKind, GpuCategory};
use rlscope_core::overlap::{compute_overlap, compute_overlap_columns, OverlapSweep};
use rlscope_core::store::{
    decode_columns, decode_events, encode_events, EventColumns, TraceWriter,
};
use rlscope_core::trace::streamed_breakdowns_by_process;
use rlscope_core::Trace;
use rlscope_sim::gpu::{GpuDevice, KernelDesc};
use rlscope_sim::ids::{ProcessId, StreamId};
use rlscope_sim::time::{DurationNs, TimeNs};

fn synthetic_events(n: usize) -> Vec<Event> {
    let mut events = Vec::with_capacity(n);
    // One operation spanning everything plus interleaved CPU/GPU events.
    events.push(Event::new(
        ProcessId(0),
        EventKind::Operation,
        "train",
        TimeNs::ZERO,
        TimeNs::from_micros(n as u64 * 10),
    ));
    for i in 0..n {
        let t = i as u64 * 10;
        let kind = match i % 4 {
            0 => EventKind::Cpu(CpuCategory::Python),
            1 => EventKind::Cpu(CpuCategory::Backend),
            2 => EventKind::Cpu(CpuCategory::CudaApi),
            _ => EventKind::Gpu(GpuCategory::Kernel),
        };
        events.push(Event::new(
            ProcessId(0),
            kind,
            "e",
            TimeNs::from_micros(t),
            TimeNs::from_micros(t + 8),
        ));
    }
    events
}

/// Deeply nested operation annotations: `blocks` repeated blocks of
/// `depth` properly-nested operations plus CPU/GPU activity, exercising
/// the scope-indexed operation stack (the old engine's `retain` was
/// `O(depth)` per close).
fn nested_events(blocks: usize, depth: usize) -> Vec<Event> {
    let block_ns = 100_000u64;
    let step = block_ns / (2 * depth as u64 + 2);
    let mut events = Vec::with_capacity(blocks * (depth + 2));
    for b in 0..blocks {
        let base = b as u64 * block_ns;
        for d in 0..depth {
            let off = d as u64 * step;
            events.push(Event::new(
                ProcessId(0),
                EventKind::Operation,
                format!("op_{d}"),
                TimeNs::from_nanos(base + off),
                TimeNs::from_nanos(base + block_ns - off),
            ));
        }
        events.push(Event::new(
            ProcessId(0),
            EventKind::Cpu(CpuCategory::Python),
            "py",
            TimeNs::from_nanos(base),
            TimeNs::from_nanos(base + block_ns),
        ));
        events.push(Event::new(
            ProcessId(0),
            EventKind::Gpu(GpuCategory::Kernel),
            "k",
            TimeNs::from_nanos(base + block_ns / 4),
            TimeNs::from_nanos(base + block_ns / 2),
        ));
    }
    events
}

/// Interleaved events rotating over `ops` distinct operation names and
/// `procs` processes, exercising the interner and the multi-process
/// partitioning path.
fn multi_op_events(n: usize, ops: usize, procs: u32) -> Vec<Event> {
    let names: Vec<String> = (0..ops).map(|i| format!("operation_{i}")).collect();
    let mut events = Vec::with_capacity(n + n / 10);
    for i in 0..n {
        let t = i as u64 * 10;
        let pid = ProcessId(i as u32 % procs);
        if i % 10 == 0 {
            events.push(Event::new(
                pid,
                EventKind::Operation,
                names[(i / 10) % ops].as_str(),
                TimeNs::from_nanos(t),
                TimeNs::from_nanos(t + 100),
            ));
        }
        let kind = match i % 4 {
            0 => EventKind::Cpu(CpuCategory::Python),
            1 => EventKind::Cpu(CpuCategory::Backend),
            2 => EventKind::Cpu(CpuCategory::CudaApi),
            _ => EventKind::Gpu(GpuCategory::Kernel),
        };
        events.push(Event::new(pid, kind, "e", TimeNs::from_nanos(t), TimeNs::from_nanos(t + 8)));
    }
    events
}

/// The active positional benchmark filter, parsed with the harness's
/// argument grammar (vendor/criterion): value-taking flags consume their
/// next token, the LAST positional token is the filter (and single-dash
/// tokens count as positionals). Shared by the inline regression gates so
/// filtered runs of unrelated benches can't die on them.
fn bench_filter() -> Option<String> {
    let mut filter: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--profile-time" | "--save-baseline" | "--baseline" | "--measurement-time"
            | "--warm-up-time" | "--sample-size" => {
                let _ = args.next();
            }
            a if a.starts_with("--") => {}
            positional => filter = Some(positional.to_string()),
        }
    }
    filter
}

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap_sweep");
    for n in [1_000usize, 10_000] {
        let events = synthetic_events(n);
        group.bench_function(format!("{n}_events"), |b| {
            b.iter(|| compute_overlap(std::hint::black_box(&events)))
        });
    }
    // ~10k events, 64 operations deep.
    let deep = nested_events(156, 64);
    group.bench_function("deep_nest_10k", |b| {
        b.iter(|| compute_overlap(std::hint::black_box(&deep)))
    });
    // ~11k events across 32 distinct operation names.
    let multi = multi_op_events(10_000, 32, 1);
    group.bench_function("multi_op_10k", |b| {
        b.iter(|| compute_overlap(std::hint::black_box(&multi)))
    });
    group.finish();

    // Regression gate for the deep-nest slowdown (ROADMAP follow-up of
    // PR 1): 64-deep annotation stacks produce descending end-boundary
    // runs that used to push the sweep to ~2.5x the per-event cost of a
    // flat stream; the run-reversing boundary sort holds the ratio down.
    // Measured directly (not via criterion) so it also runs under
    // `--test`. Skipped when a substring filter excludes the deep-nest
    // bench, so filtered runs of unrelated benches can't die on it.
    let gate_name = "overlap_sweep/deep_nest_10k";
    if bench_filter().is_some_and(|f| !gate_name.contains(f.as_str())) {
        return;
    }
    let flat = synthetic_events(10_000);
    let per_event = |events: &[Event]| {
        let reps = 8;
        let t = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(compute_overlap(std::hint::black_box(events)));
        }
        t.elapsed().as_nanos() as f64 / reps as f64 / events.len() as f64
    };
    let (deep_stats, flat_stats) = gate::sample_pair(5, || per_event(&deep), || per_event(&flat));
    // With the fix this measures ~1.3-1.8x; with the descending runs
    // handed straight to std's sort it measures ~3.4x. On the CI smoke
    // path (`--test`, shared noisy runners) only catastrophic regressions
    // are gated; real bench runs assert a 3.0x target — still clear of
    // the broken behavior.
    let target = if gate::is_smoke_run() { 8.0 } else { 3.0 };
    gate::assert_ratio(
        "deep_nest_regression_gate",
        &deep_stats,
        &flat_stats,
        target,
        "the descending-run end-array sort fix measures ~1.3-1.8x here",
    );
}

fn bench_analysis(c: &mut Criterion) {
    // The unified query API over the same 10k-event stream as
    // overlap_sweep/10000_events: the wrapper must stay within noise of
    // the direct engine call.
    let events = synthetic_events(10_000);
    c.bench_function("analysis_query/10000_events", |b| {
        b.iter(|| Analysis::of_events(std::hint::black_box(&events)).table().unwrap())
    });
    // The phase-tagged grouped query on a phase-annotated variant of the
    // same stream (the view the old pipeline could not produce).
    let mut phased = events.clone();
    let span = 10_000u64 * 10;
    for p in 0..4u64 {
        phased.push(Event::new(
            ProcessId(0),
            EventKind::Phase,
            format!("phase_{p}"),
            TimeNs::from_micros(p * span / 4),
            TimeNs::from_micros((p + 1) * span / 4),
        ));
    }
    c.bench_function("analysis_query/10000_events_by_phase", |b| {
        b.iter(|| {
            Analysis::of_events(std::hint::black_box(&phased))
                .group_by([Dim::Phase])
                .tables()
                .unwrap()
        })
    });

    // Regression ratio gate (CI bench-smoke entry): the `Analysis`
    // pipeline's plain table query must stay within 1.1x of the raw
    // batch engine (`compute_overlap_raw`) on the
    // overlap_sweep/10000_events workload. The baseline deliberately
    // bypasses the builder — `compute_overlap` is itself an `Analysis`
    // wrapper, so gating against it would compare identical code and
    // never detect pipeline overhead. Measured inline (median of 5
    // interleaved passes, see `gate`) so it also runs under `--test`;
    // skipped when a substring filter excludes it.
    let gate_name = "analysis_query/10000_events";
    if bench_filter().is_some_and(|f| !gate_name.contains(f.as_str())) {
        return;
    }
    let time_per_call = |f: &dyn Fn() -> rlscope_core::BreakdownTable| {
        let reps = 8;
        let t = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        t.elapsed().as_nanos() as f64 / reps as f64
    };
    let direct = || rlscope_core::overlap::compute_overlap_raw(std::hint::black_box(&events));
    let query = || Analysis::of_events(std::hint::black_box(&events)).table().unwrap();
    let (query_stats, direct_stats) =
        gate::sample_pair(5, || time_per_call(&query), || time_per_call(&direct));
    // The fast path dispatches straight to the raw engine, so the ratio
    // should sit at ~1.00. Bench runs assert the acceptance target
    // (1.1x); the noisy `--test` CI smoke only gates catastrophic
    // regressions.
    let target = if gate::is_smoke_run() { 2.0 } else { 1.1 };
    gate::assert_ratio(
        "analysis_query_regression_gate",
        &query_stats,
        &direct_stats,
        target,
        "Analysis::table() should dispatch straight to the raw engine (~1.0x)",
    );
}

fn bench_streaming(c: &mut Criterion) {
    // Streaming sweep throughput: same events as the 10k batch bench,
    // pushed one at a time through the exact incremental sweep.
    let events = synthetic_events(10_000);
    c.bench_function("overlap_stream_10k", |b| {
        b.iter(|| {
            let mut sweep = OverlapSweep::new();
            for e in std::hint::black_box(&events) {
                sweep.push(e).unwrap();
            }
            sweep.finalize()
        })
    });

    // Regression ratio gate (CI bench-smoke entry): the exact streaming
    // sweep's per-event cost must stay within 2x of the batch engine on
    // the same stream (tightened from 3x once the sweep adopted the
    // batch engine's flat accumulator, run-length coalescing, and
    // slab-indexed scope records — it measures ~1.1-1.5x now; the old
    // binary-heap pending set measured ~4x and the per-seq-HashMap
    // drain ~2.7x). Measured inline (median of 5 interleaved passes,
    // see `gate`) so it also runs under `--test`; skipped when a
    // substring filter excludes it.
    let gate_name = "overlap_stream_10k";
    if bench_filter().is_none_or(|f| gate_name.contains(f.as_str())) {
        let batch = || rlscope_core::overlap::compute_overlap_raw(std::hint::black_box(&events));
        let streamed = || {
            let mut sweep = OverlapSweep::new();
            for e in std::hint::black_box(&events) {
                sweep.push(e).unwrap();
            }
            sweep.finalize()
        };
        let time_per_call = |f: &dyn Fn() -> rlscope_core::BreakdownTable| {
            let reps = 8;
            let t = std::time::Instant::now();
            for _ in 0..reps {
                std::hint::black_box(f());
            }
            t.elapsed().as_nanos() as f64 / reps as f64
        };
        let (stream_stats, batch_stats) =
            gate::sample_pair(5, || time_per_call(&streamed), || time_per_call(&batch));
        let target = if gate::is_smoke_run() { 8.0 } else { 2.0 };
        gate::assert_ratio(
            "overlap_stream_regression_gate",
            &stream_stats,
            &batch_stats,
            target,
            "the flat-accumulator streaming sweep measures ~1.1-1.5x the batch engine here",
        );
    }
    // End-to-end chunk-directory analysis: decode + per-pid streaming
    // sweeps, against the materialize-then-shard baseline shape.
    let dir = std::env::temp_dir().join(format!("rlscope_bench_chunks_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let writer = TraceWriter::create(&dir, 64 * 1024).unwrap();
    for chunk in multi_op_events(40_000, 16, 4).chunks(1024) {
        writer.write(chunk.to_vec());
    }
    writer.finish().unwrap();
    c.bench_function("chunk_dir_streamed_4proc_40k", |b| {
        b.iter(|| streamed_breakdowns_by_process(std::hint::black_box(&dir), None).unwrap())
    });
    c.bench_function("chunk_dir_streamed_bounded_4proc_40k", |b| {
        b.iter(|| {
            streamed_breakdowns_by_process(
                std::hint::black_box(&dir),
                Some(DurationNs::from_millis(1)),
            )
            .unwrap()
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_pushdown(c: &mut Criterion) {
    // A 16-chunk directory with disjoint per-chunk time ranges — the
    // manifest-pushdown micro: a 3-chunk time-window query must skip the
    // other 13 chunks before any decode.
    let dir = std::env::temp_dir().join(format!("rlscope_bench_pushdown_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let writer = TraceWriter::create(&dir, 1).unwrap(); // rotate per batch
    for c_idx in 0..16u64 {
        let mut events = Vec::with_capacity(2_000);
        for i in 0..2_000u64 {
            let t = c_idx * 25_000 + i * 10;
            events.push(Event::new(
                ProcessId((i % 4) as u32),
                if i % 16 == 0 {
                    EventKind::Operation
                } else {
                    EventKind::Cpu(CpuCategory::Python)
                },
                if i % 16 == 0 { "op" } else { "py" },
                TimeNs::from_micros(t),
                TimeNs::from_micros(t + 8),
            ));
        }
        writer.write(events);
    }
    writer.finish().unwrap();
    let lo = TimeNs::from_micros(5 * 25_000);
    let hi = TimeNs::from_micros(8 * 25_000 - 10_000);
    let windowed = || Analysis::from_chunk_dir(&dir).time_window(lo, hi).table().unwrap();
    let full = || Analysis::from_chunk_dir(&dir).table().unwrap();
    let plan = Analysis::from_chunk_dir(&dir).time_window(lo, hi).chunk_plan().unwrap().unwrap();
    assert_eq!(plan.1, 16);
    assert!(plan.0 <= 3, "window should select at most 3 of 16 chunks, got {}", plan.0);

    c.bench_function("manifest_pushdown/time_window_16chunks", |b| b.iter(windowed));
    c.bench_function("manifest_pushdown/full_scan_16chunks", |b| b.iter(full));

    // Inline ratio gate (CI bench-smoke entry): the windowed query must
    // cost well under the full scan — it decodes ≤3 of 16 chunks, so
    // anything near parity means the pushdown stopped skipping. Measures
    // ~0.15-0.3x; bench runs assert 0.6x, the noisy `--test` smoke 1.0x.
    let gate_name = "manifest_pushdown/time_window_16chunks";
    if bench_filter().is_some_and(|f| !gate_name.contains(f.as_str())) {
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    let time_per_call = |f: &dyn Fn() -> rlscope_core::BreakdownTable| {
        let reps = 5;
        let t = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        t.elapsed().as_nanos() as f64 / reps as f64
    };
    let (windowed_stats, full_stats) =
        gate::sample_pair(5, || time_per_call(&windowed), || time_per_call(&full));
    println!("manifest_pushdown_gate: {} of {} chunks decoded by the window", plan.0, plan.1);
    let target = if gate::is_smoke_run() { 1.0 } else { 0.6 };
    gate::assert_ratio(
        "manifest_pushdown_gate",
        &windowed_stats,
        &full_stats,
        target,
        "a 3-of-16-chunk window measures ~0.15-0.3x the full scan here",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Writes the tiered-storage bench session: 16 close-ordered chunks of
/// 2,000 events each (operations rotating every 16 events, four
/// processes), plus per-process warmup/steady phase annotations appended
/// last — the same shape the collector's finished sessions have before
/// compaction.
fn tiered_session_dir(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
    let writer = TraceWriter::create(dir, 1).unwrap(); // rotate per batch
    let span_us = 16u64 * 25_000;
    for c_idx in 0..16u64 {
        let mut events = Vec::with_capacity(2_000);
        for i in 0..2_000u64 {
            let t = c_idx * 25_000 + i * 10;
            events.push(Event::new(
                ProcessId((i % 4) as u32),
                if i % 16 == 0 {
                    EventKind::Operation
                } else {
                    EventKind::Cpu(CpuCategory::Python)
                },
                if i % 16 == 0 {
                    if (i / 16) % 2 == 0 {
                        "train_step"
                    } else {
                        "collect_rollouts"
                    }
                } else {
                    "py"
                },
                TimeNs::from_micros(t),
                TimeNs::from_micros(t + 8),
            ));
        }
        if c_idx == 15 {
            for pid in 0..4u32 {
                let mid = span_us / 2;
                events.push(Event::new(
                    ProcessId(pid),
                    EventKind::Phase,
                    "warmup",
                    TimeNs::ZERO,
                    TimeNs::from_micros(mid),
                ));
                events.push(Event::new(
                    ProcessId(pid),
                    EventKind::Phase,
                    "steady",
                    TimeNs::from_micros(mid),
                    TimeNs::from_micros(span_us + 100),
                ));
            }
        }
        writer.write(events);
    }
    writer.finish().unwrap();
}

fn bench_rollup_query(c: &mut Criterion) {
    use rlscope_core::rollup::rollup_chunk_dir;
    use rlscope_core::store::reorder_chunk_dir;

    // The tiered-storage acceptance micro: a coarse (phase, op) query
    // served from segment-summary rollups versus decoding and sweeping
    // the raw 32k-event chunk directory it was rolled up from.
    let tag = std::process::id();
    let raw = std::env::temp_dir().join(format!("rlscope_bench_rollq_raw_{tag}"));
    let sorted = std::env::temp_dir().join(format!("rlscope_bench_rollq_sorted_{tag}"));
    let roll = std::env::temp_dir().join(format!("rlscope_bench_rollq_roll_{tag}"));
    tiered_session_dir(&raw);
    let _ = std::fs::remove_dir_all(&sorted);
    reorder_chunk_dir(&raw, &sorted, 1 << 20).unwrap();
    // ~50 segments over the 400 ms span: coarse enough that the index
    // stays tiny, fine enough that cross-segment merging is real work.
    rollup_chunk_dir(&sorted, &roll, 8_000_000).unwrap();

    let from_rollup = || {
        Analysis::from_rollup_dir(&roll)
            .group_by([Dim::Phase, Dim::Operation])
            .canonical_json()
            .unwrap()
    };
    let from_raw = || {
        Analysis::from_chunk_dir(&raw)
            .group_by([Dim::Phase, Dim::Operation])
            .canonical_json()
            .unwrap()
    };
    // The equivalence contract the speedup rides on: byte-identical
    // canonical JSON (the bench stream is start-ordered per chunk, so
    // raw and sorted group orders coincide).
    assert_eq!(from_rollup(), from_raw());

    c.bench_function("rollup_query/phase_op_32k_rollup", |b| b.iter(from_rollup));
    c.bench_function("rollup_query/phase_op_32k_raw", |b| b.iter(from_raw));

    // Inline ratio gate (CI bench entry): the rolled-up query must run
    // at least 5x faster than the raw sweep (bound 0.2x) — it reads ~50
    // pre-aggregated segment tables instead of decoding 32k events.
    let gate_name = "rollup_query/phase_op_32k_rollup";
    if bench_filter().is_some_and(|f| !gate_name.contains(f.as_str())) {
        for d in [&raw, &sorted, &roll] {
            let _ = std::fs::remove_dir_all(d);
        }
        return;
    }
    let time_per_call = |f: &dyn Fn() -> String| {
        let reps = 5;
        let t = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        t.elapsed().as_nanos() as f64 / reps as f64
    };
    let (rollup_stats, raw_stats) =
        gate::sample_pair(5, || time_per_call(&from_rollup), || time_per_call(&from_raw));
    let target = if gate::is_smoke_run() { 1.0 } else { 0.2 };
    gate::assert_ratio(
        "rollup_query_gate",
        &rollup_stats,
        &raw_stats,
        target,
        "the segment-summary read measures ~0.01-0.05x the raw 32k-event sweep here",
    );
    for d in [&raw, &sorted, &roll] {
        let _ = std::fs::remove_dir_all(d);
    }
}

fn bench_compaction(c: &mut Criterion) {
    use rlscope_core::rollup::rollup_chunk_dir;
    use rlscope_core::store::reorder_chunk_dir;

    // Compaction throughput: the two tier transitions the daemon's
    // background worker performs on a finished 32k-event session — the
    // start-ordered rewrite and the segment-summary rollup. Smoke-level
    // coverage (no ratio gate): regressions here cost background
    // bandwidth, not query latency.
    let tag = std::process::id();
    let raw = std::env::temp_dir().join(format!("rlscope_bench_compact_raw_{tag}"));
    let sorted = std::env::temp_dir().join(format!("rlscope_bench_compact_sorted_{tag}"));
    let out = std::env::temp_dir().join(format!("rlscope_bench_compact_out_{tag}"));
    tiered_session_dir(&raw);
    let _ = std::fs::remove_dir_all(&sorted);
    reorder_chunk_dir(&raw, &sorted, 1 << 20).unwrap();

    c.bench_function("compaction/sort_32k_events", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&out);
            std::hint::black_box(reorder_chunk_dir(&raw, &out, 1 << 20).unwrap())
        })
    });
    c.bench_function("compaction/rollup_32k_events", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&out);
            std::hint::black_box(rollup_chunk_dir(&sorted, &out, 8_000_000).unwrap())
        })
    });
    for d in [&raw, &sorted, &out] {
        let _ = std::fs::remove_dir_all(d);
    }
}

fn bench_multiprocess(c: &mut Criterion) {
    // ~44k events over 4 processes, analyzed with the sharded parallel
    // per-process path used by whole-experiment reports.
    let trace = Trace {
        pid: ProcessId(0),
        events: multi_op_events(40_000, 16, 4),
        counts: Default::default(),
        per_op_transitions: vec![],
        api_stats: vec![],
        iterations: 0,
        wall_end: TimeNs::from_nanos(400_000),
    };
    c.bench_function("multiprocess_breakdown_4proc_40k", |b| {
        b.iter(|| std::hint::black_box(&trace).breakdowns_by_process())
    });
}

fn bench_trace_codec(c: &mut Criterion) {
    let events = synthetic_events(10_000);
    c.bench_function("trace_encode_10k", |b| {
        b.iter(|| encode_events(std::hint::black_box(&events)))
    });
    let encoded = encode_events(&events);
    c.bench_function("trace_decode_10k", |b| {
        b.iter(|| decode_events(std::hint::black_box(&encoded)).unwrap())
    });
    // Many distinct names: stresses the v2 per-chunk string table.
    let multi = multi_op_events(10_000, 32, 1);
    c.bench_function("trace_encode_10k_multi_op", |b| {
        b.iter(|| encode_events(std::hint::black_box(&multi)))
    });
    let multi_encoded = encode_events(&multi);
    c.bench_function("trace_decode_10k_multi_op", |b| {
        b.iter(|| decode_events(std::hint::black_box(&multi_encoded)).unwrap())
    });
}

fn bench_columnar(c: &mut Criterion) {
    // The columnar pipeline against its row twins, on the same encoded
    // chunks as trace_decode_10k: `decode_columns` fills five flat
    // primitive columns with zero `Vec<Event>` materialization, and the
    // batch sweep consumes them without re-reading event structs.
    let events = synthetic_events(10_000);
    let encoded = encode_events(&events);
    c.bench_function("columnar_decode_10k", |b| {
        b.iter(|| decode_columns(std::hint::black_box(&encoded)).unwrap())
    });
    let multi = multi_op_events(10_000, 32, 1);
    let multi_encoded = encode_events(&multi);
    c.bench_function("columnar_decode_10k_multi_op", |b| {
        b.iter(|| decode_columns(std::hint::black_box(&multi_encoded)).unwrap())
    });
    let cols = decode_columns(&encoded).unwrap();
    c.bench_function("overlap_columnar_10k", |b| {
        b.iter(|| compute_overlap_columns(std::hint::black_box(&cols)))
    });

    // Inline ratio gates (CI bench-smoke entries). Decode: the columnar
    // decoder must run ≥1.5x the speed of the row decoder on the same
    // chunk bytes — i.e. wall-time ratio ≤ 0.67 — since it shares the
    // varint/zigzag cursors but skips per-event `Event`/`Arc<str>`
    // construction. Sweep: the columnar batch sweep must stay at or
    // under the row batch sweep on the equivalent input (same merge
    // loop; encode reads columns instead of event structs).
    // Each gate is guarded independently: a substring filter that
    // matches only one of them must still run that one (an early return
    // here would skip every gate after the first mismatch).
    let time_per_call = |f: &mut dyn FnMut()| {
        let reps = 8;
        let t = std::time::Instant::now();
        for _ in 0..reps {
            f();
        }
        t.elapsed().as_nanos() as f64 / reps as f64
    };

    let gate_name = "columnar_decode_ratio_gate";
    if bench_filter().is_none_or(|f| gate_name.contains(f.as_str())) {
        let (col_stats, row_stats) = gate::sample_pair(
            5,
            || time_per_call(&mut || drop(std::hint::black_box(decode_columns(&encoded).unwrap()))),
            || time_per_call(&mut || drop(std::hint::black_box(decode_events(&encoded).unwrap()))),
        );
        let target = if gate::is_smoke_run() { 1.5 } else { 0.67 };
        gate::assert_ratio(
            gate_name,
            &col_stats,
            &row_stats,
            target,
            "decode_columns skips Event/Arc<str> materialization and measures ~0.3-0.5x \
             the row decoder here (0.67 = the 1.5x-faster acceptance bound)",
        );
    }

    let gate_name = "overlap_columnar_ratio_gate";
    if bench_filter().is_none_or(|f| gate_name.contains(f.as_str())) {
        let row_cols = EventColumns::from_events(&events);
        let (colsweep_stats, rowsweep_stats) = gate::sample_pair(
            5,
            || {
                time_per_call(&mut || {
                    drop(std::hint::black_box(compute_overlap_columns(&row_cols)))
                })
            },
            || {
                time_per_call(&mut || {
                    drop(std::hint::black_box(rlscope_core::overlap::compute_overlap_raw(&events)))
                })
            },
        );
        let target = if gate::is_smoke_run() { 2.0 } else { 1.0 };
        gate::assert_ratio(
            gate_name,
            &colsweep_stats,
            &rowsweep_stats,
            target,
            "the columnar batch sweep shares the merge loop and encodes from flat columns; \
             it measures at or under the row sweep here",
        );
    }
}

fn bench_ingest(c: &mut Criterion) {
    use rlscope_collector::{Collector, CollectorClient, CollectorConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Live-collector ingest versus a direct TraceWriter over the same
    // 50k-event stream. The collector path pays encode (client), socket
    // transport, decode/validation, live-sweep pushes, and the verbatim
    // chunk persist; the direct path pays the writer thread's encode and
    // I/O alone. Both are measured to the durable end (finish acked /
    // writer joined, manifest written).
    let root = std::env::temp_dir().join(format!("rlscope_bench_ingest_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    // The direct writer rotates at roughly the byte size of the
    // collector path's 8192-event client batches, so both paths land
    // comparable chunk files and neither defers all encoding to a
    // serialized finish().
    const CHUNK_BYTES: usize = 256 << 10;
    let config = CollectorConfig::new(root.join("sock"), root.join("data"));
    let collector = Collector::bind(config).unwrap();
    let events = synthetic_events(50_000);
    let session_seq = AtomicUsize::new(0);
    let collector_run = || {
        let name = format!("ingest-{}", session_seq.fetch_add(1, Ordering::SeqCst));
        let mut client = CollectorClient::open_session(collector.socket(), &name).unwrap();
        for chunk in events.chunks(8_192) {
            client.send_events(chunk).unwrap();
        }
        let summary = client.finish().unwrap();
        // Session names must be unique per iteration, so reclaim each
        // finished dir immediately — criterion runs hundreds of
        // iterations and the accumulated chunks would otherwise grow to
        // gigabytes under temp. (The daemon's registry entry stays; it
        // is a few hundred bytes once the live state is released.)
        let _ = std::fs::remove_dir_all(root.join("data").join(&name));
        summary
    };
    let direct_dir = root.join("direct");
    let direct_run = || {
        let writer = TraceWriter::create(&direct_dir, CHUNK_BYTES).unwrap();
        for chunk in events.chunks(8_192) {
            writer.write(chunk.to_vec());
        }
        writer.finish().unwrap()
    };
    c.bench_function("ingest_throughput/collector_50k", |b| b.iter(collector_run));
    c.bench_function("ingest_throughput/direct_tracewriter_50k", |b| b.iter(direct_run));

    // Inline ratio gate (CI bench-smoke entry): events/sec through the
    // full collector pipeline must stay ≥ 0.5× the direct TraceWriter —
    // i.e. durable-ingest wall time ≤ 2×. Measures ~1.0-1.6x here (the
    // stages pipeline across threads); the noisy `--test` smoke gates
    // only catastrophic regressions.
    let gate_name = "ingest_throughput/collector_50k";
    if bench_filter().is_some_and(|f| !gate_name.contains(f.as_str())) {
        collector.shutdown();
        let _ = std::fs::remove_dir_all(&root);
        return;
    }
    // One run is already ~2-5 ms, so each sample is a single run and the
    // gated statistic is the median of several interleaved samples (see
    // `gate`). The timed span is exactly the durable ingest (open →
    // finish acked); reclaiming the per-run session dir is bench
    // hygiene, paid outside the clock.
    let coll = || {
        let name = format!("ingest-{}", session_seq.fetch_add(1, Ordering::SeqCst));
        let t = std::time::Instant::now();
        let mut client = CollectorClient::open_session(collector.socket(), &name).unwrap();
        for chunk in events.chunks(8_192) {
            client.send_events(chunk).unwrap();
        }
        std::hint::black_box(client.finish().unwrap());
        let elapsed = t.elapsed().as_nanos() as f64;
        let _ = std::fs::remove_dir_all(root.join("data").join(&name));
        elapsed
    };
    let direct = || {
        let t = std::time::Instant::now();
        std::hint::black_box(direct_run());
        t.elapsed().as_nanos() as f64
    };
    let (coll_stats, direct_stats) = gate::sample_pair(7, coll, direct);
    let events_per_sec = events.len() as f64 / (coll_stats.median / 1e9);
    println!("ingest_throughput_gate: collector median {:.1}k events/s", events_per_sec / 1e3);
    let target = if gate::is_smoke_run() { 6.0 } else { 2.0 };
    gate::assert_ratio(
        "ingest_throughput_gate",
        &coll_stats,
        &direct_stats,
        target,
        "2.0x wall = 0.5x events/sec vs the direct TraceWriter; \
         the columnar ingest path measures ~1.0-1.7x here",
    );
    collector.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

fn bench_fleet_query(c: &mut Criterion) {
    use rlscope_collector::{
        Collector, CollectorClient, CollectorConfig, Endpoint, FleetClient, QuerySpec,
    };

    // Federated query fan-out: the same 8 finished 5k-event sessions
    // served by one daemon and by four 2-session shards, queried through
    // `FleetClient` over TCP with `group_by([Dim::Session])`, versus a
    // local single-dir `Analysis` over the identical 40k events. The
    // fleet paths pay the QUERY_ALL codec, socket round-trips, and the
    // cross-shard merge on top of the baseline's decode + sweep.
    const SESSIONS_TOTAL: usize = 8;
    const EVENTS_PER_SESSION: usize = 5_000;
    let root = std::env::temp_dir().join(format!("rlscope_bench_fleet_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let events = multi_op_events(EVENTS_PER_SESSION, 8, 2);

    let spawn_shards = |tag: &str, daemons: usize| -> Vec<Collector> {
        (0..daemons)
            .map(|d| {
                let base = root.join(format!("{tag}_{d}"));
                let mut config = CollectorConfig::new(base.join("sock"), base.join("data"));
                config.tcp_listen = Some("127.0.0.1:0".into());
                let collector = Collector::bind(config).unwrap();
                for s in 0..SESSIONS_TOTAL / daemons {
                    let name = format!("fleet-{tag}-{d}-{s}");
                    let mut client =
                        CollectorClient::open_session(collector.socket(), &name).unwrap();
                    for chunk in events.chunks(1_024) {
                        client.send_events(chunk).unwrap();
                    }
                    client.finish().unwrap();
                }
                collector
            })
            .collect()
    };
    let single = spawn_shards("one", 1);
    let sharded = spawn_shards("four", 4);
    let fleet_of = |shards: &[Collector]| {
        FleetClient::connect(
            shards.iter().map(|s| Endpoint::tcp(s.tcp_addr().unwrap().to_string())),
        )
    };
    let mut fleet1 = fleet_of(&single);
    let mut fleet4 = fleet_of(&sharded);
    let spec = QuerySpec::all_sessions().group_by([Dim::Session]);
    let query = |fleet: &mut FleetClient| {
        let result = fleet.query_all(&spec);
        assert!(result.complete(), "fleet query lost a shard: {:?}", result.gaps());
        result
    };
    c.bench_function("fleet_query/1daemon_8sessions", |b| b.iter(|| query(&mut fleet1)));
    c.bench_function("fleet_query/4daemons_2sessions", |b| b.iter(|| query(&mut fleet4)));

    // The local baseline: one chunk dir holding the same 40k events,
    // swept in-process with no sockets and no per-session split.
    let base_dir = root.join("baseline");
    let writer = TraceWriter::create(&base_dir, 256 << 10).unwrap();
    for _ in 0..SESSIONS_TOTAL {
        for chunk in events.chunks(1_024) {
            writer.write(chunk.to_vec());
        }
    }
    writer.finish().unwrap();
    let baseline = || Analysis::from_chunk_dir(&base_dir).table().unwrap();
    c.bench_function("fleet_query/single_dir_baseline_40k", |b| b.iter(baseline));

    let shutdown_all = |single: Vec<Collector>, sharded: Vec<Collector>| {
        for collector in single.into_iter().chain(sharded) {
            collector.shutdown();
        }
        let _ = std::fs::remove_dir_all(&root);
    };

    // Inline ratio gate (CI bench-smoke entry): a federated rollup of
    // the fleet must stay within 4x the wall time of the local
    // single-dir sweep over the same events — the overhead is framing,
    // round-trips, and the cross-shard merge, all of which must remain
    // small next to decode + sweep. Measured inline (median of 3
    // interleaved passes, see `gate`) so it also runs under `--test`;
    // skipped when a substring filter excludes it.
    let gate_name = "fleet_query/1daemon_8sessions";
    if bench_filter().is_some_and(|f| !gate_name.contains(f.as_str())) {
        drop(fleet1);
        drop(fleet4);
        shutdown_all(single, sharded);
        return;
    }
    let reps = 5;
    let time_fleet = |fleet: &mut FleetClient| {
        let t = std::time::Instant::now();
        for _ in 0..reps {
            let result = fleet.query_all(&spec);
            assert!(result.complete(), "fleet query lost a shard: {:?}", result.gaps());
            std::hint::black_box(result);
        }
        t.elapsed().as_nanos() as f64 / reps as f64
    };
    let time_baseline = || {
        let t = std::time::Instant::now();
        for _ in 0..reps {
            std::hint::black_box(baseline());
        }
        t.elapsed().as_nanos() as f64 / reps as f64
    };
    let (one_stats, base_stats) = gate::sample_pair(3, || time_fleet(&mut fleet1), time_baseline);
    let (four_stats, base4_stats) = gate::sample_pair(3, || time_fleet(&mut fleet4), time_baseline);
    let target = if gate::is_smoke_run() { 12.0 } else { 4.0 };
    gate::assert_ratio(
        "fleet_query_gate(1x8)",
        &one_stats,
        &base_stats,
        target,
        "eight 5k-event per-session sweeps usually beat one 40k merged sweep (~0.8x)",
    );
    gate::assert_ratio(
        "fleet_query_gate(4x2)",
        &four_stats,
        &base4_stats,
        target,
        "eight 5k-event per-session sweeps usually beat one 40k merged sweep (~0.8x)",
    );
    drop(fleet1);
    drop(fleet4);
    shutdown_all(single, sharded);
}

fn bench_tensor(c: &mut Criterion) {
    use rlscope_backend::Tensor;
    let a = Tensor::full(64, 64, 0.5);
    let bm = Tensor::full(64, 64, 0.25);
    c.bench_function("matmul_64x64", |b| {
        b.iter(|| std::hint::black_box(&a).matmul(std::hint::black_box(&bm)))
    });
}

fn bench_gpu_scheduler(c: &mut Criterion) {
    c.bench_function("gpu_enqueue_10k_kernels", |b| {
        b.iter_batched(
            || GpuDevice::new(4),
            |mut gpu| {
                for i in 0..10_000u64 {
                    gpu.enqueue_kernel(
                        StreamId((i % 4) as u32),
                        &KernelDesc::new("k", DurationNs::from_micros(2)),
                        TimeNs::from_nanos(i * 500),
                    );
                }
                gpu
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_overlap,
    bench_analysis,
    bench_streaming,
    bench_pushdown,
    bench_rollup_query,
    bench_compaction,
    bench_multiprocess,
    bench_trace_codec,
    bench_columnar,
    bench_ingest,
    bench_fleet_query,
    bench_tensor,
    bench_gpu_scheduler
);
criterion_main!(benches);
