//! End-to-end experiment benches: one per paper table/figure family, at
//! reduced step counts so `cargo bench` completes quickly.

use criterion::{criterion_group, criterion_main, Criterion};
use rlscope_bench::{
    render_c4, render_fig11, render_fig4_breakdown, render_fig5, render_fig7, render_fig8,
    render_fig9_10, render_table1,
};
use rlscope_rl::AlgoKind;
use rlscope_workloads::MinigoConfig;

const BENCH_STEPS: usize = 60;

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);

    group.bench_function("table1", |b| b.iter(render_table1));
    group.bench_function("fig4a_td3_frameworks", |b| {
        b.iter(|| render_fig4_breakdown(AlgoKind::Td3, BENCH_STEPS))
    });
    group.bench_function("fig4b_ddpg_frameworks", |b| {
        b.iter(|| render_fig4_breakdown(AlgoKind::Ddpg, BENCH_STEPS))
    });
    group.bench_function("fig5_algorithms", |b| b.iter(|| render_fig5(BENCH_STEPS)));
    group.bench_function("fig7_simulators", |b| b.iter(|| render_fig7(BENCH_STEPS)));
    group.bench_function("fig8_minigo", |b| {
        let cfg = MinigoConfig {
            workers: 2,
            board: 5,
            max_moves: 10,
            sims_per_move: 4,
            ..MinigoConfig::default()
        };
        b.iter(|| render_fig8(&cfg))
    });
    group.bench_function("fig9_10_calibration", |b| b.iter(|| render_fig9_10(BENCH_STEPS)));
    group.bench_function("fig11_correction", |b| b.iter(|| render_fig11(BENCH_STEPS)));
    group.bench_function("c4_ablation", |b| b.iter(|| render_c4(BENCH_STEPS)));

    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
