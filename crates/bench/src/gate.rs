//! Variance-aware ratio gating shared by the inline bench gates in
//! `benches/micro.rs`.
//!
//! Every CI gate compares two timed code paths and asserts a bound on
//! their ratio. Single-sample minima (the gates' original statistic)
//! under-report contention: one lucky sample of the numerator against
//! one unlucky sample of the denominator can mask a real regression, and
//! the reverse aborts a healthy run. The gates therefore sample both
//! sides **interleaved** (so drift in machine load hits both equally),
//! report min/median/max and the spread, and assert on the **ratio of
//! medians** with a documented tolerance band:
//!
//! * The `target` passed to [`assert_ratio`] is the documented steady-
//!   state bound for the ratio (e.g. "streaming sweep within 2.0× of
//!   batch").
//! * The gate trips only when the median ratio exceeds
//!   `target × TOLERANCE` — the band absorbs run-to-run jitter that the
//!   median alone cannot (CI runners share cores; ±10% medians round to
//!   round), while staying far below any real regression, which shifts
//!   the ratio by integer factors.

/// Multiplicative tolerance band applied on top of every gate target:
/// the documented bound is the target, the enforced bound is
/// `target × TOLERANCE`. 15% covers observed median-to-median jitter on
/// shared runners without masking 2×-class regressions.
pub const TOLERANCE: f64 = 1.15;

/// Order statistics of one gate side's interleaved samples
/// (each sample is nanoseconds per call).
#[derive(Debug, Clone, Copy)]
pub struct GateStats {
    /// Fastest sample — the old gates' sole statistic, kept for display.
    pub min: f64,
    /// Median sample — the gated statistic.
    pub median: f64,
    /// Slowest sample.
    pub max: f64,
}

impl GateStats {
    /// Stats over one side's samples (sorts in place).
    pub fn from_samples(samples: &mut [f64]) -> Self {
        assert!(!samples.is_empty(), "gate stats need at least one sample");
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let median =
            if n % 2 == 1 { samples[n / 2] } else { (samples[n / 2 - 1] + samples[n / 2]) / 2.0 };
        GateStats { min: samples[0], median, max: samples[n - 1] }
    }

    /// Relative spread `(max − min) / median` — printed so a gate
    /// failure log shows whether the run was quiet or thrashing.
    pub fn spread(&self) -> f64 {
        if self.median == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.median
        }
    }
}

/// Samples two timed closures interleaved (`a b a b …`) after one warmup
/// call each, returning each side's [`GateStats`]. Each closure returns
/// one sample in nanoseconds per call; interleaving means load drift
/// during the measurement biases both sides alike instead of whichever
/// side ran last.
pub fn sample_pair(
    rounds: usize,
    mut a: impl FnMut() -> f64,
    mut b: impl FnMut() -> f64,
) -> (GateStats, GateStats) {
    let _ = (a(), b());
    let mut sa = Vec::with_capacity(rounds);
    let mut sb = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        sa.push(a());
        sb.push(b());
    }
    (GateStats::from_samples(&mut sa), GateStats::from_samples(&mut sb))
}

/// Whether this process is the CI smoke pass (`--test`): one iteration
/// per bench on a noisy shared runner, where only catastrophic
/// regressions should gate. Callers pass a correspondingly loose target.
pub fn is_smoke_run() -> bool {
    std::env::args().any(|arg| arg == "--test")
}

/// Prints both sides' statistics and asserts
/// `num.median / den.median < target × TOLERANCE`.
///
/// `detail` is appended to the panic message — name the fix-shaped
/// expectation ("the columnar decoder measures ~0.4–0.6x here") so a
/// tripped gate reads as a diagnosis, not a number.
///
/// # Panics
///
/// When the median ratio exceeds the tolerance-banded target.
pub fn assert_ratio(label: &str, num: &GateStats, den: &GateStats, target: f64, detail: &str) {
    let ratio = num.median / den.median;
    println!(
        "{label}: num median {:.1} us (min {:.1}, spread {:.0}%), \
         den median {:.1} us (min {:.1}, spread {:.0}%), \
         ratio {ratio:.3} (target {target}, tolerance x{TOLERANCE})",
        num.median / 1e3,
        num.min / 1e3,
        num.spread() * 100.0,
        den.median / 1e3,
        den.min / 1e3,
        den.spread() * 100.0,
    );
    let bound = target * TOLERANCE;
    assert!(
        ratio < bound,
        "{label}: median ratio {ratio:.3} exceeded {bound:.3} \
         (target {target} x tolerance {TOLERANCE}); \
         num median {:.0} ns, den median {:.0} ns. {detail}",
        num.median,
        den.median,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_order_and_median() {
        let mut s = [5.0, 1.0, 3.0];
        let g = GateStats::from_samples(&mut s);
        assert_eq!((g.min, g.median, g.max), (1.0, 3.0, 5.0));
        let mut s = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(GateStats::from_samples(&mut s).median, 2.5);
    }

    #[test]
    fn sample_pair_interleaves_and_counts() {
        let (a, b) = sample_pair(5, || 10.0, || 20.0);
        assert_eq!(a.median, 10.0);
        assert_eq!(b.median, 20.0);
        assert_eq!(a.spread(), 0.0);
    }

    #[test]
    fn ratio_within_tolerance_passes() {
        let num = GateStats { min: 1.0, median: 1.1, max: 1.2 };
        let den = GateStats { min: 1.0, median: 1.0, max: 1.0 };
        assert_ratio("test_gate", &num, &den, 1.0, "should absorb 10% via tolerance");
    }

    #[test]
    #[should_panic(expected = "median ratio")]
    fn ratio_beyond_tolerance_panics() {
        let num = GateStats { min: 2.0, median: 2.0, max: 2.0 };
        let den = GateStats { min: 1.0, median: 1.0, max: 1.0 };
        assert_ratio("test_gate", &num, &den, 1.0, "2.0 is past 1.15");
    }
}
