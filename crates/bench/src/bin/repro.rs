//! `repro` — regenerates every table and figure of the RL-Scope paper.
//!
//! ```text
//! repro [--experiment <id>] [--steps N]
//!   ids: table1 fig4a fig4b fig4c fig4d fig5 fig7 fig8 fig8p fig9 fig10
//!        fig11a fig11b c4 all
//! ```

use rlscope_bench::*;
use rlscope_rl::AlgoKind;
use rlscope_workloads::MinigoConfig;

/// Every experiment id `--experiment` accepts, besides `all`.
const EXPERIMENTS: &[&str] = &[
    "table1", "fig4a", "fig4b", "fig4c", "fig4d", "fig5", "fig7", "fig8", "fig8p", "fig9", "fig10",
    "fig11a", "fig11b", "c4",
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut experiment = "all".to_string();
    let mut steps = DEFAULT_STEPS;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--experiment" | "-e" => {
                experiment = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--experiment requires a value");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--steps" | "-s" => {
                steps = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--steps requires a number");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--help" | "-h" => {
                println!("repro [--experiment {}|all] [--steps N]", EXPERIMENTS.join("|"));
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    // An unknown experiment id used to print nothing and exit 0, making
    // typos indistinguishable from success in scripts.
    if experiment != "all" && !EXPERIMENTS.contains(&experiment.as_str()) {
        eprintln!("unknown experiment id `{experiment}`");
        eprintln!("valid ids: {} (or `all`)", EXPERIMENTS.join(", "));
        std::process::exit(2);
    }

    let want = |id: &str| experiment == "all" || experiment == id;

    if want("table1") {
        println!("{}", render_table1());
    }
    if want("fig4a") || want("fig4c") {
        let (text, runs) = render_fig4_breakdown(AlgoKind::Td3, steps);
        if want("fig4a") {
            println!("{text}");
        }
        if want("fig4c") {
            println!("{}", render_fig4_transitions(&runs, AlgoKind::Td3));
        }
    }
    if want("fig4b") || want("fig4d") {
        let (text, runs) = render_fig4_breakdown(AlgoKind::Ddpg, steps);
        if want("fig4b") {
            println!("{text}");
        }
        if want("fig4d") {
            println!("{}", render_fig4_transitions(&runs, AlgoKind::Ddpg));
        }
    }
    if want("fig5") {
        println!("{}", render_fig5(steps).0);
    }
    if want("fig7") {
        println!("{}", render_fig7(steps).0);
    }
    if want("fig8") || want("fig8p") {
        // One Minigo round serves both views: the workload is the
        // heaviest in the suite and nondeterministic, so rendering both
        // figures from the same round keeps them cross-checkable.
        let result = rlscope_workloads::run_minigo(&MinigoConfig::default());
        if want("fig8") {
            println!("{}", render_fig8_result(&result));
        }
        if want("fig8p") {
            println!("{}", render_fig8_phases_result(&result));
        }
    }
    if want("fig9") || want("fig10") {
        println!("{}", render_fig9_10(steps));
    }
    if want("fig11a") || want("fig11b") {
        println!("{}", render_fig11(steps));
    }
    if want("c4") {
        println!("{}", render_c4(steps));
    }
}
