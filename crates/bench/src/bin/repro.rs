//! `repro` — regenerates every table and figure of the RL-Scope paper,
//! and fronts the live collector daemon.
//!
//! ```text
//! repro [--experiment <id>] [--steps N]
//!   ids: table1 fig4a fig4b fig4c fig4d fig5 fig7 fig8 fig8p fig9 fig10
//!        fig11a fig11b c4 all
//!
//! repro --serve <socket> [--data-dir <dir>]
//!   runs the collector daemon (rlscoped in-process) until killed
//!
//! repro --connect <socket> [--steps N]
//!   streams a profiled DDPG run into a live collector session, queries
//!   it mid-flight and after finish, and prints both breakdowns
//! ```

use rlscope_bench::*;
use rlscope_collector::{Collector, CollectorConfig, CollectorSink, QuerySpec};
use rlscope_core::analysis::Dim;
use rlscope_core::profiler::Toggles;
use rlscope_rl::AlgoKind;
use rlscope_workloads::{MinigoConfig, ScaleConfig, TrainSpec};

/// Every experiment id `--experiment` accepts, besides `all`.
const EXPERIMENTS: &[&str] = &[
    "table1", "fig4a", "fig4b", "fig4c", "fig4d", "fig5", "fig7", "fig8", "fig8p", "fig9", "fig10",
    "fig11a", "fig11b", "c4",
];

/// `repro --serve`: run the collector daemon in-process until killed.
fn serve(socket: &str, data_dir: &str) -> ! {
    let collector = match Collector::bind(CollectorConfig::new(socket, data_dir)) {
        Ok(collector) => collector,
        Err(e) => {
            eprintln!("repro --serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    for (dir, outcome) in collector.upgraded_dirs() {
        println!("upgraded legacy chunk dir {} ({} chunks)", dir.display(), outcome.chunks);
    }
    println!("collector listening on {}", collector.socket().display());
    rlscope_collector::daemon::serve_forever(collector)
}

/// `repro --connect`: stream one profiled run into a live session and
/// query it while (and after) it runs.
fn connect(socket: &str, steps: usize) {
    let session = format!("repro-{}", std::process::id());
    let sink = match CollectorSink::connect(std::path::Path::new(socket), &session) {
        Ok(sink) => sink,
        Err(e) => {
            eprintln!("repro --connect: {e}");
            std::process::exit(1);
        }
    };
    let spec = TrainSpec {
        scale: ScaleConfig { hidden: 8, batch: 4, freq_div: 25, ppo: None },
        ..TrainSpec::new(
            AlgoKind::Ddpg,
            "Walker2D",
            rlscope_workloads::frameworks::STABLE_BASELINES,
            steps,
        )
    };
    let outcome = spec.run_streamed(Toggles::all(), sink.clone(), 1024);
    let fail = |e: rlscope_collector::CollectorError| -> ! {
        eprintln!("repro --connect: {e}");
        std::process::exit(1);
    };
    let live = sink
        .query(&QuerySpec::session(&session).group_by([Dim::Operation]))
        .unwrap_or_else(|e| fail(e));
    println!(
        "live query over session {session} ({} events observed):\n{}",
        live.events_observed, live.canonical_json
    );
    let summary = sink.finish().unwrap_or_else(|e| fail(e));
    println!("session finished: {} chunks, {} events durable", summary.chunks, summary.events);
    let done = sink
        .query(&QuerySpec::session(&session).group_by([Dim::Operation]))
        .unwrap_or_else(|e| fail(e));
    println!("post-finish query (pushdown + cache):\n{}", done.canonical_json);
    let Some(trace) = outcome.trace else {
        eprintln!("repro --connect: profiled run produced no trace");
        std::process::exit(2);
    };
    println!("local event count for cross-check: {}", trace.events.len());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut experiment = "all".to_string();
    let mut steps = DEFAULT_STEPS;
    let mut serve_socket: Option<String> = None;
    let mut connect_socket: Option<String> = None;
    let mut data_dir = "rlscope-collector-data".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--serve" => {
                serve_socket = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--serve requires a socket path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--connect" => {
                connect_socket = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--connect requires a socket path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--data-dir" => {
                data_dir = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--data-dir requires a path");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--experiment" | "-e" => {
                experiment = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--experiment requires a value");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--steps" | "-s" => {
                steps = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--steps requires a number");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "repro [--experiment {}|all] [--steps N]\n\
                     repro --serve <socket> [--data-dir <dir>]\n\
                     repro --connect <socket> [--steps N]",
                    EXPERIMENTS.join("|")
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(socket) = serve_socket {
        serve(&socket, &data_dir);
    }
    if let Some(socket) = connect_socket {
        connect(&socket, steps.min(120));
        return;
    }

    // An unknown experiment id used to print nothing and exit 0, making
    // typos indistinguishable from success in scripts.
    if experiment != "all" && !EXPERIMENTS.contains(&experiment.as_str()) {
        eprintln!("unknown experiment id `{experiment}`");
        eprintln!("valid ids: {} (or `all`)", EXPERIMENTS.join(", "));
        std::process::exit(2);
    }

    let want = |id: &str| experiment == "all" || experiment == id;

    if want("table1") {
        println!("{}", render_table1());
    }
    if want("fig4a") || want("fig4c") {
        let (text, runs) = render_fig4_breakdown(AlgoKind::Td3, steps);
        if want("fig4a") {
            println!("{text}");
        }
        if want("fig4c") {
            println!("{}", render_fig4_transitions(&runs, AlgoKind::Td3));
        }
    }
    if want("fig4b") || want("fig4d") {
        let (text, runs) = render_fig4_breakdown(AlgoKind::Ddpg, steps);
        if want("fig4b") {
            println!("{text}");
        }
        if want("fig4d") {
            println!("{}", render_fig4_transitions(&runs, AlgoKind::Ddpg));
        }
    }
    if want("fig5") {
        println!("{}", render_fig5(steps).0);
    }
    if want("fig7") {
        println!("{}", render_fig7(steps).0);
    }
    if want("fig8") || want("fig8p") {
        // One Minigo round serves both views: the workload is the
        // heaviest in the suite and nondeterministic, so rendering both
        // figures from the same round keeps them cross-checkable.
        let result = rlscope_workloads::run_minigo(&MinigoConfig::default());
        if want("fig8") {
            println!("{}", render_fig8_result(&result));
        }
        if want("fig8p") {
            println!("{}", render_fig8_phases_result(&result));
        }
    }
    if want("fig9") || want("fig10") {
        println!("{}", render_fig9_10(steps));
    }
    if want("fig11a") || want("fig11b") {
        println!("{}", render_fig11(steps));
    }
    if want("c4") {
        println!("{}", render_c4(steps));
    }
}
