//! # rlscope-bench — experiment harness shared by the `repro` binary and
//! the criterion benches.
//!
//! Each `render_*` function regenerates the rows/series of one table or
//! figure from the RL-Scope paper and renders them as text. The `repro`
//! binary prints them; `EXPERIMENTS.md` records paper-vs-measured.

#![forbid(unsafe_code)]

pub mod gate;

use rlscope_core::event::CpuCategory;
use rlscope_core::profiler::TransitionKind;
use rlscope_rl::AlgoKind;
use rlscope_workloads::{
    fig11a, fig11b, run_algorithm_survey, run_correction_ablation, run_framework_comparison,
    run_minigo, run_simulator_survey, table1, ExperimentRun, MinigoConfig, ScaleConfig, TrainSpec,
};
use std::fmt::Write as _;

/// Number of environment steps per experiment run (scaled-down workload).
pub const DEFAULT_STEPS: usize = 300;

/// Default hyperparameter scaling for experiments.
pub fn default_scale() -> ScaleConfig {
    ScaleConfig { hidden: 16, batch: 8, freq_div: 10, ppo: None }
}

fn breakdown_block(out: &mut String, run: &ExperimentRun) {
    let table = &run.profile.table;
    let total = table.total();
    let _ = writeln!(
        out,
        "  {:<22} total {:>10}  GPU {:>5.1}%  CUDA/GPU {:>4.1}x",
        run.label,
        format!("{total}"),
        run.gpu_percent(),
        run.cuda_over_gpu()
    );
    for op in ["backpropagation", "inference", "simulation"] {
        let op_total = table.operation_total(op);
        if op_total.is_zero() {
            continue;
        }
        let pct = |cat: CpuCategory| {
            100.0 * table.total_where(|k| &*k.operation == op && k.cpu == Some(cat)).ratio(op_total)
        };
        let gpu = 100.0 * table.total_where(|k| &*k.operation == op && k.gpu).ratio(op_total);
        let _ = writeln!(
            out,
            "    {:<18} {:>6.1}% of total | py {:>5.1}% sim {:>5.1}% backend {:>5.1}% cuda {:>5.1}% gpu {:>5.1}%",
            op,
            100.0 * op_total.ratio(total),
            pct(CpuCategory::Python),
            pct(CpuCategory::Simulator),
            pct(CpuCategory::Backend),
            pct(CpuCategory::CudaApi),
            gpu,
        );
    }
}

/// Table 1: the framework configuration matrix.
pub fn render_table1() -> String {
    let mut out = String::from("Table 1 — RL framework configurations\n");
    let _ = writeln!(out, "  {:<18} {:<11} {:<12}", "RL framework", "Exec model", "ML backend");
    for fw in table1() {
        let _ = writeln!(
            out,
            "  {:<18} {:<11} {:<12}",
            fw.name,
            fw.model.to_string(),
            fw.backend.to_string()
        );
    }
    out
}

/// Figure 4a/4b: framework comparison time breakdown for one algorithm.
pub fn render_fig4_breakdown(algo: AlgoKind, steps: usize) -> (String, Vec<ExperimentRun>) {
    let runs = run_framework_comparison(algo, steps, default_scale());
    let mut out = format!("Figure 4 ({algo}, Walker2D) — time breakdown per framework\n");
    for run in &runs {
        breakdown_block(&mut out, run);
    }
    (out, runs)
}

/// Figure 4c/4d: transitions per iteration for one algorithm.
pub fn render_fig4_transitions(runs: &[ExperimentRun], algo: AlgoKind) -> String {
    let mut out = format!("Figure 4c/d ({algo}) — language transitions per iteration\n");
    for run in runs {
        let _ = writeln!(out, "  {}", run.label);
        for op in ["backpropagation", "inference", "simulation"] {
            // `+ 0.0` normalizes IEEE negative zero for display.
            let be = run.transitions.per_iteration(op, TransitionKind::Backend) + 0.0;
            let sim = run.transitions.per_iteration(op, TransitionKind::Simulator) + 0.0;
            let cuda = run.transitions.per_iteration(op, TransitionKind::Cuda) + 0.0;
            if be + sim + cuda > 0.0 {
                let _ = writeln!(
                    out,
                    "    {:<18} backend {:>8.1}  simulator {:>6.1}  cuda {:>8.1}",
                    op, be, sim, cuda
                );
            }
        }
    }
    out
}

/// Figure 5: algorithm survey.
pub fn render_fig5(steps: usize) -> (String, Vec<ExperimentRun>) {
    let runs = run_algorithm_survey(steps, default_scale());
    let mut out = String::from("Figure 5 — algorithm choice (Walker2D)\n");
    for run in &runs {
        let _ = writeln!(
            out,
            "  {:<6} sim {:>5.1}%  gpu {:>5.1}%",
            run.label,
            run.simulation_percent(),
            run.gpu_percent(),
        );
        breakdown_block(&mut out, run);
    }
    (out, runs)
}

/// Figure 7: simulator survey.
pub fn render_fig7(steps: usize) -> (String, Vec<ExperimentRun>) {
    let runs = run_simulator_survey(steps, default_scale());
    let mut out = String::from("Figure 7 — simulator choice (PPO2)\n");
    for run in &runs {
        let _ = writeln!(
            out,
            "  {:<12} total {:>10}  sim {:>5.1}%  gpu {:>5.1}%",
            run.label,
            format!("{}", run.profile.table.total()),
            run.simulation_percent(),
            run.gpu_percent(),
        );
    }
    (out, runs)
}

/// Figure 8: the Minigo multi-process view, rendered from an
/// already-computed round (the workload is the heaviest in the suite and
/// nondeterministic, so callers wanting both the per-process and
/// per-phase views should run it once and render twice).
pub fn render_fig8_result(result: &rlscope_workloads::MinigoResult) -> String {
    let mut out = String::from("Figure 8 — Minigo multi-process view\n");
    out.push_str(&result.report.render());
    let _ = writeln!(
        out,
        "F.11: reported utilization {:.0}% vs true GPU-bound {:.3}%",
        result.report.smi_reported_percent, result.report.true_gpu_percent
    );
    out
}

/// Figure 8: runs one Minigo round and renders the multi-process view.
pub fn render_fig8(cfg: &MinigoConfig) -> String {
    render_fig8_result(&run_minigo(cfg))
}

/// Figure 8, per-phase variant, rendered from an already-computed round:
/// the Minigo round broken down by training phase (selfplay /
/// sgd_updates / evaluation) via the unified analysis pipeline
/// (`Analysis::of(&merged).group_by([Dim::Phase])`) — a view the paper
/// shows per process only, and the pre-`Analysis` sweep could not
/// produce at all (phase events were dropped).
pub fn render_fig8_phases_result(result: &rlscope_workloads::MinigoResult) -> String {
    let mut out = String::from("Figure 8 (per-phase) — Minigo time breakdown by training phase\n");
    out.push_str(&result.phase_report.render());
    out
}

/// Figure 8 per-phase variant: runs one Minigo round and renders it.
pub fn render_fig8_phases(cfg: &MinigoConfig) -> String {
    render_fig8_phases_result(&run_minigo(cfg))
}

/// Figures 9/10: calibration means for one workload.
pub fn render_fig9_10(steps: usize) -> String {
    let spec = TrainSpec {
        scale: default_scale(),
        ..TrainSpec::new(
            AlgoKind::Ddpg,
            "Walker2D",
            rlscope_workloads::frameworks::STABLE_BASELINES,
            steps,
        )
    };
    let cal = rlscope_workloads::calibration_for(&spec);
    let mut out = String::from("Figures 9/10 — calibration (DDPG, Walker2D)\n");
    let _ = writeln!(
        out,
        "  delta calibration: annotation {} / transition {} / CUDA API {}",
        cal.annotation_mean, cal.py_interception_mean, cal.cuda_interception_mean
    );
    for (api, infl) in &cal.cupti_means {
        let _ = writeln!(out, "  difference-of-average: {api} CUPTI inflation {infl}");
    }
    out
}

/// Figure 11a/11b: correction-accuracy validation.
pub fn render_fig11(steps: usize) -> String {
    let mut out = String::from("Figure 11 — overhead correction validation\n");
    out.push_str("  (a) algorithm choice, Walker2D\n");
    for row in fig11a(steps, default_scale()) {
        let _ = writeln!(
            out,
            "    {:<6} uninstrumented {:>10} corrected {:>10} bias {:>+6.1}%  inflation {:.2}x",
            row.label,
            format!("{}", row.uninstrumented),
            format!("{}", row.corrected),
            row.bias_percent,
            row.inflation(),
        );
    }
    out.push_str("  (b) simulator choice, PPO2\n");
    for row in fig11b(steps, default_scale()) {
        let _ = writeln!(
            out,
            "    {:<12} uninstrumented {:>10} corrected {:>10} bias {:>+6.1}%  inflation {:.2}x",
            row.label,
            format!("{}", row.uninstrumented),
            format!("{}", row.corrected),
            row.bias_percent,
            row.inflation(),
        );
    }
    out
}

/// §C.4: effect of skipping overhead correction.
pub fn render_c4(steps: usize) -> String {
    let spec = TrainSpec {
        scale: default_scale(),
        ..TrainSpec::new(
            AlgoKind::Ddpg,
            "Walker2D",
            rlscope_workloads::frameworks::STABLE_BASELINES,
            steps,
        )
    };
    let (corrected, raw) = run_correction_ablation(&spec);
    let ratio = |p: &rlscope_core::CorrectedProfile| {
        p.table.cpu_category_total(CpuCategory::CudaApi).ratio(p.table.gpu_total())
    };
    let mut out = String::from("§C.4 — effect of skipping correction (DDPG, Walker2D)\n");
    let _ = writeln!(
        out,
        "  corrected total {} | uncorrected total {} | inflation {:.2}x",
        corrected.corrected_total,
        raw.corrected_total,
        raw.corrected_total.ratio(corrected.corrected_total)
    );
    let _ = writeln!(
        out,
        "  CUDA/GPU ratio: corrected {:.1}x, uncorrected {:.1}x",
        ratio(&corrected),
        ratio(&raw)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_four_rows() {
        let t = render_table1();
        assert_eq!(t.lines().count(), 6);
        assert!(t.contains("stable-baselines"));
        assert!(t.contains("ReAgent"));
    }
}
