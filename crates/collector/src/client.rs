//! The client half: the raw protocol client and the profiler sink that
//! streams a live workload into the daemon.

use crate::protocol::{
    decode_error, kind, CollectorError, QueryReply, QuerySpec, PROTOCOL_VERSION,
};
use parking_lot::Mutex;
use rlscope_core::event::Event;
use rlscope_core::profiler::EventSink;
use rlscope_core::store::{encode_events, read_frame, write_frame};
use std::fmt;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;

/// What the daemon reported at session finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSummary {
    /// Chunks the daemon accepted for the session.
    pub chunks: u64,
    /// Events the daemon accepted for the session.
    pub events: u64,
}

/// A synchronous protocol client over one Unix-socket connection.
///
/// [`CollectorClient::open_session`] performs the handshake and streams
/// chunks with credit-window backpressure ([crate docs](crate));
/// [`CollectorClient::connect`] opens a query-only connection. Chunks
/// are encoded with the standard codec ([`encode_events`]), so the bytes
/// on the wire are exactly the bytes a [`rlscope_core::store::TraceWriter`]
/// would put on disk.
pub struct CollectorClient {
    stream: UnixStream,
    session: Option<String>,
    session_id: u64,
    credits: u32,
    max_credits: u32,
    events_sent: u64,
}

impl fmt::Debug for CollectorClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectorClient")
            .field("session", &self.session)
            .field("credits", &self.credits)
            .field("events_sent", &self.events_sent)
            .finish_non_exhaustive()
    }
}

impl CollectorClient {
    /// Opens a query-only connection (no session handshake).
    ///
    /// # Errors
    ///
    /// Socket connection failures.
    pub fn connect(socket: &Path) -> Result<CollectorClient, CollectorError> {
        let stream = UnixStream::connect(socket)?;
        Ok(CollectorClient {
            stream,
            session: None,
            session_id: 0,
            credits: 0,
            max_credits: 0,
            events_sent: 0,
        })
    }

    /// Connects and opens a profiling session named `name`.
    ///
    /// # Errors
    ///
    /// Connection failures, or the server's rejection (bad name, name
    /// already in use, version mismatch) as [`CollectorError::Remote`].
    pub fn open_session(socket: &Path, name: &str) -> Result<CollectorClient, CollectorError> {
        let mut stream = UnixStream::connect(socket)?;
        let mut hello = PROTOCOL_VERSION.to_be_bytes().to_vec();
        hello.extend_from_slice(&(name.len() as u16).to_be_bytes());
        hello.extend_from_slice(name.as_bytes());
        write_frame(&mut stream, kind::HELLO, &hello)?;
        let (frame_kind, payload) = expect_frame(&mut stream)?;
        match frame_kind {
            kind::HELLO_ACK if payload.len() == 12 => {
                let mut word = [0u8; 8];
                word.copy_from_slice(&payload[..8]);
                let session_id = u64::from_be_bytes(word);
                let credits =
                    u32::from_be_bytes(payload[8..].try_into().expect("4-byte slice")).max(1);
                Ok(CollectorClient {
                    stream,
                    session: Some(name.to_string()),
                    session_id,
                    credits,
                    max_credits: credits,
                    events_sent: 0,
                })
            }
            kind::ERROR => Err(decode_error(&payload)),
            other => {
                Err(CollectorError::Protocol(format!("unexpected HELLO reply kind {other:#04x}")))
            }
        }
    }

    /// The session name, when this connection opened one.
    pub fn session(&self) -> Option<&str> {
        self.session.as_deref()
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// Events sent so far over this connection.
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    /// Encodes `events` as one codec-v3 chunk and streams it, blocking
    /// on the credit window when the daemon applies backpressure.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side rejection of an earlier
    /// chunk.
    pub fn send_events(&mut self, events: &[Event]) -> Result<(), CollectorError> {
        let chunk = encode_events(events);
        self.send_chunk_bytes(&chunk)?;
        self.events_sent += events.len() as u64;
        Ok(())
    }

    /// Streams an already-encoded chunk (any format [`decode_events`]
    /// accepts — the zero-copy path for relaying existing chunk files).
    ///
    /// [`decode_events`]: rlscope_core::store::decode_events
    ///
    /// # Errors
    ///
    /// See [`CollectorClient::send_events`].
    pub fn send_chunk_bytes(&mut self, chunk: &[u8]) -> Result<(), CollectorError> {
        if self.session.is_none() {
            return Err(CollectorError::Protocol("no open session".into()));
        }
        while self.credits == 0 {
            self.recv_ack()?;
        }
        if let Err(e) = write_frame(&mut self.stream, kind::CHUNK, chunk) {
            // A write failure mid-stream usually means the server
            // rejected an earlier chunk and closed: its typed ERROR
            // frame is sitting in our receive buffer behind any acks —
            // surface that instead of an opaque broken pipe.
            return Err(self.pending_server_error().unwrap_or(CollectorError::Io(e)));
        }
        self.credits -= 1;
        Ok(())
    }

    /// Drains buffered incoming frames looking for a server `ERROR`
    /// (skipping acks), without blocking for more than a short grace
    /// period. Used to explain transport failures.
    fn pending_server_error(&mut self) -> Option<CollectorError> {
        let _ = self.stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
        let mut found = None;
        for _ in 0..self.max_credits.max(1) + 1 {
            match read_frame(&mut self.stream) {
                Ok(Some((kind::ERROR, payload))) => {
                    found = Some(decode_error(&payload));
                    break;
                }
                Ok(Some((kind::CHUNK_ACK, _))) => continue,
                _ => break,
            }
        }
        let _ = self.stream.set_read_timeout(None);
        found
    }

    fn recv_ack(&mut self) -> Result<(), CollectorError> {
        let (frame_kind, payload) = expect_frame(&mut self.stream)?;
        match frame_kind {
            kind::CHUNK_ACK => {
                self.credits += 1;
                Ok(())
            }
            kind::ERROR => Err(decode_error(&payload)),
            other => {
                Err(CollectorError::Protocol(format!("unexpected ack frame kind {other:#04x}")))
            }
        }
    }

    /// Blocks until every in-flight chunk is acknowledged — the barrier
    /// before a query or finish, so replies cannot interleave with acks.
    fn drain_acks(&mut self) -> Result<(), CollectorError> {
        while self.credits < self.max_credits {
            self.recv_ack()?;
        }
        Ok(())
    }

    /// Runs a query. On a session connection, outstanding chunk acks are
    /// drained first, so the reply reflects at least every chunk this
    /// client has sent (its own writes are always visible).
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side error reply.
    pub fn query(&mut self, spec: &QuerySpec) -> Result<QueryReply, CollectorError> {
        if self.session.is_some() {
            self.drain_acks()?;
        }
        write_frame(&mut self.stream, kind::QUERY, &spec.encode())?;
        let (frame_kind, payload) = expect_frame(&mut self.stream)?;
        match frame_kind {
            kind::QUERY_OK => QueryReply::decode(&payload),
            kind::ERROR => Err(decode_error(&payload)),
            other => {
                Err(CollectorError::Protocol(format!("unexpected query reply kind {other:#04x}")))
            }
        }
    }

    /// Finishes the session durably: drains acks, sends `FINISH`, and
    /// waits for the daemon's acknowledgment (chunk files flushed,
    /// manifest written). The connection stays usable for queries.
    ///
    /// # Errors
    ///
    /// Transport failures or a server-side error reply.
    pub fn finish(&mut self) -> Result<SessionSummary, CollectorError> {
        if self.session.is_none() {
            return Err(CollectorError::Protocol("no open session to finish".into()));
        }
        self.drain_acks()?;
        write_frame(&mut self.stream, kind::FINISH, &[])?;
        let (frame_kind, payload) = expect_frame(&mut self.stream)?;
        match frame_kind {
            kind::FINISH_ACK if payload.len() == 16 => {
                let mut word = [0u8; 8];
                word.copy_from_slice(&payload[..8]);
                let chunks = u64::from_be_bytes(word);
                word.copy_from_slice(&payload[8..]);
                let events = u64::from_be_bytes(word);
                self.session = None;
                Ok(SessionSummary { chunks, events })
            }
            kind::ERROR => Err(decode_error(&payload)),
            other => {
                Err(CollectorError::Protocol(format!("unexpected finish reply kind {other:#04x}")))
            }
        }
    }
}

fn expect_frame(stream: &mut UnixStream) -> Result<(u8, Vec<u8>), CollectorError> {
    match read_frame(stream)? {
        Some(frame) => Ok(frame),
        None => Err(CollectorError::Protocol("server closed the connection".into())),
    }
}

/// An [`EventSink`] that streams a profiler's events into a collector
/// session — attach with
/// [`Profiler::stream_to`](rlscope_core::profiler::Profiler::stream_to)
/// and the workload's trace flows to the daemon while it runs.
///
/// `emit` cannot return errors through the profiler, so transport
/// failures are latched: the first error stops further sends and is
/// surfaced by [`CollectorSink::finish`] (or [`CollectorSink::take_error`]).
pub struct CollectorSink {
    client: Mutex<Option<CollectorClient>>,
    error: Mutex<Option<CollectorError>>,
}

impl fmt::Debug for CollectorSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectorSink").finish_non_exhaustive()
    }
}

impl CollectorSink {
    /// Connects and opens a session (see
    /// [`CollectorClient::open_session`]).
    ///
    /// # Errors
    ///
    /// Connection or handshake failures.
    pub fn connect(socket: &Path, session: &str) -> Result<Arc<CollectorSink>, CollectorError> {
        let client = CollectorClient::open_session(socket, session)?;
        Ok(Arc::new(CollectorSink { client: Mutex::new(Some(client)), error: Mutex::new(None) }))
    }

    /// Finishes the session durably, surfacing any latched streaming
    /// error first. The underlying connection stays open for queries.
    ///
    /// # Errors
    ///
    /// A latched transport error from `emit`, or the finish exchange's
    /// own failure.
    pub fn finish(&self) -> Result<SessionSummary, CollectorError> {
        if let Some(e) = self.error.lock().take() {
            return Err(e);
        }
        let mut guard = self.client.lock();
        let client =
            guard.as_mut().ok_or_else(|| CollectorError::Protocol("sink disconnected".into()))?;
        client.finish()
    }

    /// Runs a query over this sink's connection (e.g. asking about the
    /// session itself, mid-run).
    ///
    /// # Errors
    ///
    /// See [`CollectorClient::query`].
    pub fn query(&self, spec: &QuerySpec) -> Result<QueryReply, CollectorError> {
        let mut guard = self.client.lock();
        let client =
            guard.as_mut().ok_or_else(|| CollectorError::Protocol("sink disconnected".into()))?;
        client.query(spec)
    }

    /// Takes the latched streaming error, if any.
    pub fn take_error(&self) -> Option<CollectorError> {
        self.error.lock().take()
    }
}

impl EventSink for CollectorSink {
    fn emit(&self, events: Vec<Event>) {
        if self.error.lock().is_some() {
            return; // poisoned: the session already failed
        }
        let mut guard = self.client.lock();
        let Some(client) = guard.as_mut() else { return };
        if let Err(e) = client.send_events(&events) {
            *self.error.lock() = Some(e);
        }
    }
}
