//! The client half: the raw protocol client (with resumable reconnect)
//! and the profiler sink that streams a live workload into the daemon.

use crate::protocol::{
    decode_error, kind, CollectorError, ErrorCode, HelloAck, HelloRequest, QueryAllReply,
    QueryReply, QuerySpec, SessionList,
};
use crate::transport::{Endpoint, Stream};
use parking_lot::Mutex;
use rlscope_core::event::Event;
use rlscope_core::profiler::EventSink;
use rlscope_core::store::{encode_events, read_frame, write_frame, write_frame_parts};
use std::collections::VecDeque;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// What the daemon reported at session finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSummary {
    /// Chunks the daemon accepted for the session.
    pub chunks: u64,
    /// Events the daemon accepted for the session.
    pub events: u64,
}

/// Bounded retry-with-exponential-backoff schedule for transparent
/// reconnects. Only **transport** failures are retried; a typed server
/// rejection ([`CollectorError::Remote`]) always surfaces immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// Reconnect attempts per outage before giving up (0 disables
    /// reconnecting entirely).
    pub max_attempts: u32,
    /// Backoff before the first attempt; doubles per attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for ReconnectPolicy {
    /// 5 attempts, 25ms initial backoff doubling to a 1s ceiling —
    /// rides out a daemon restart of up to roughly a second.
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl ReconnectPolicy {
    /// A policy that never reconnects (every transport error is final).
    pub fn disabled() -> Self {
        ReconnectPolicy { max_attempts: 0, ..ReconnectPolicy::default() }
    }
}

/// A synchronous protocol client over one collector connection (Unix
/// socket or TCP — the wire bytes are identical, see [`Endpoint`]).
///
/// [`CollectorClient::open_session`] performs the handshake and streams
/// chunks with credit-window backpressure ([crate docs](crate));
/// [`CollectorClient::connect`] opens a query-only connection. Chunks
/// are encoded with the standard codec ([`encode_events`]), so the bytes
/// on the wire are exactly the bytes a [`rlscope_core::store::TraceWriter`]
/// would put on disk.
///
/// # Crash safety
///
/// Every sent chunk is buffered until its durable `CHUNK_ACK` arrives.
/// When the transport fails mid-session, the client reconnects under
/// its [`ReconnectPolicy`], resumes via the epoch handshake, trims the
/// buffer to the daemon's acked watermark, and replays only the unacked
/// tail — exactly-once, in-order delivery across daemon restarts. A
/// typed server rejection (epoch mismatch, abort, name in use) is never
/// retried.
pub struct CollectorClient {
    stream: Stream,
    endpoint: Endpoint,
    policy: ReconnectPolicy,
    session: Option<String>,
    session_id: u64,
    epoch: u64,
    credits: u32,
    max_credits: u32,
    events_sent: u64,
    /// Next chunk sequence number to assign.
    next_seq: u64,
    /// Sent-but-unacked chunks, oldest first: the replay buffer. Bounded
    /// by the credit window.
    unacked: VecDeque<(u64, Vec<u8>)>,
}

impl fmt::Debug for CollectorClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectorClient")
            .field("session", &self.session)
            .field("epoch", &self.epoch)
            .field("credits", &self.credits)
            .field("next_seq", &self.next_seq)
            .field("events_sent", &self.events_sent)
            .finish_non_exhaustive()
    }
}

impl CollectorClient {
    /// Opens a query-only connection (no session handshake, no
    /// reconnect).
    ///
    /// # Errors
    ///
    /// Socket connection failures.
    pub fn connect(socket: &Path) -> Result<CollectorClient, CollectorError> {
        Self::connect_to(&Endpoint::from(socket))
    }

    /// [`CollectorClient::connect`] for any [`Endpoint`] (Unix or TCP).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_to(endpoint: &Endpoint) -> Result<CollectorClient, CollectorError> {
        let stream = endpoint.connect()?;
        Ok(CollectorClient {
            stream,
            endpoint: endpoint.clone(),
            policy: ReconnectPolicy::disabled(),
            session: None,
            session_id: 0,
            epoch: 0,
            credits: 0,
            max_credits: 0,
            events_sent: 0,
            next_seq: 0,
            unacked: VecDeque::new(),
        })
    }

    /// Connects and opens a profiling session named `name`, with the
    /// default [`ReconnectPolicy`].
    ///
    /// # Errors
    ///
    /// Connection failures, or the server's rejection (bad name, name
    /// already in use, version mismatch) as [`CollectorError::Remote`].
    pub fn open_session(socket: &Path, name: &str) -> Result<CollectorClient, CollectorError> {
        Self::open_session_with(socket, name, ReconnectPolicy::default())
    }

    /// [`CollectorClient::open_session`] with an explicit reconnect
    /// policy.
    ///
    /// # Errors
    ///
    /// See [`CollectorClient::open_session`].
    pub fn open_session_with(
        socket: &Path,
        name: &str,
        policy: ReconnectPolicy,
    ) -> Result<CollectorClient, CollectorError> {
        Self::open_session_at(&Endpoint::from(socket), name, policy)
    }

    /// [`CollectorClient::open_session_with`] for any [`Endpoint`]
    /// (Unix or TCP) — reconnects re-dial the same endpoint.
    ///
    /// # Errors
    ///
    /// See [`CollectorClient::open_session`].
    pub fn open_session_at(
        endpoint: &Endpoint,
        name: &str,
        policy: ReconnectPolicy,
    ) -> Result<CollectorClient, CollectorError> {
        let (stream, ack) = handshake(endpoint, &HelloRequest::new_session(name))?;
        Ok(CollectorClient {
            stream,
            endpoint: endpoint.clone(),
            policy,
            session: Some(name.to_string()),
            session_id: ack.session_id,
            epoch: ack.epoch,
            credits: ack.credits.max(1),
            max_credits: ack.credits.max(1),
            events_sent: 0,
            next_seq: 0,
            unacked: VecDeque::new(),
        })
    }

    /// Reattaches to a detached session — e.g. one a previous process
    /// streamed before crashing, or one recovered by a restarted daemon.
    /// The returned client continues the stream at the daemon's acked
    /// watermark (chunks below it are durable; the caller re-sends from
    /// there).
    ///
    /// # Errors
    ///
    /// Connection failures, or the typed rejection: epoch mismatch,
    /// session aborted/finished/attached, unknown name.
    pub fn resume_session(
        socket: &Path,
        name: &str,
        epoch: u64,
        policy: ReconnectPolicy,
    ) -> Result<CollectorClient, CollectorError> {
        Self::resume_session_at(&Endpoint::from(socket), name, epoch, policy)
    }

    /// [`CollectorClient::resume_session`] for any [`Endpoint`] — a
    /// session opened over one transport may resume over the other; the
    /// epoch handshake, not the transport, identifies the stream.
    ///
    /// # Errors
    ///
    /// See [`CollectorClient::resume_session`].
    pub fn resume_session_at(
        endpoint: &Endpoint,
        name: &str,
        epoch: u64,
        policy: ReconnectPolicy,
    ) -> Result<CollectorClient, CollectorError> {
        let (stream, ack) = handshake(endpoint, &HelloRequest::resume(name, epoch))?;
        Ok(CollectorClient {
            stream,
            endpoint: endpoint.clone(),
            policy,
            session: Some(name.to_string()),
            session_id: ack.session_id,
            epoch: ack.epoch,
            credits: ack.credits.max(1),
            max_credits: ack.credits.max(1),
            events_sent: 0,
            next_seq: ack.acked_chunks,
            unacked: VecDeque::new(),
        })
    }

    /// The session name, when this connection opened one.
    pub fn session(&self) -> Option<&str> {
        self.session.as_deref()
    }

    /// The server-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The session's incarnation epoch (what a resume handshake must
    /// echo).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Events sent so far over this client (across reconnects).
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    /// Encodes `events` as one codec-v3 chunk and streams it, blocking
    /// on the credit window when the daemon applies backpressure.
    ///
    /// # Errors
    ///
    /// Transport failures that outlive the reconnect policy, or a typed
    /// server-side rejection.
    pub fn send_events(&mut self, events: &[Event]) -> Result<(), CollectorError> {
        let chunk = encode_events(events);
        self.send_chunk_bytes(&chunk)?;
        self.events_sent += events.len() as u64;
        Ok(())
    }

    /// Streams an already-encoded chunk (any format [`decode_events`]
    /// accepts — the zero-copy path for relaying existing chunk files).
    ///
    /// [`decode_events`]: rlscope_core::store::decode_events
    ///
    /// # Errors
    ///
    /// See [`CollectorClient::send_events`].
    pub fn send_chunk_bytes(&mut self, chunk: &[u8]) -> Result<(), CollectorError> {
        if self.session.is_none() {
            return Err(CollectorError::Protocol("no open session".into()));
        }
        loop {
            while self.credits == 0 {
                match self.recv_ack() {
                    Ok(()) => {}
                    Err(CollectorError::Io(e)) => {
                        self.recover(CollectorError::Io(e))?;
                    }
                    Err(e) => return Err(e),
                }
            }
            let seq = self.next_seq;
            match write_frame_parts(&mut self.stream, kind::CHUNK, &seq.to_be_bytes(), chunk) {
                Ok(()) => {
                    // Buffered only after a successful write: a failed
                    // write retries the send itself, and buffering first
                    // would replay the chunk twice.
                    self.unacked.push_back((seq, chunk.to_vec()));
                    self.next_seq += 1;
                    self.credits -= 1;
                    return Ok(());
                }
                Err(e) => {
                    // A write failure can also mean the server rejected an
                    // earlier chunk and closed: its typed ERROR frame is
                    // sitting in our receive buffer behind any acks —
                    // surface that instead of an opaque broken pipe.
                    if let Some(remote) = self.pending_server_error() {
                        return Err(remote);
                    }
                    self.recover(CollectorError::Io(e))?;
                }
            }
        }
    }

    /// Drains buffered incoming frames looking for a server `ERROR`
    /// (skipping acks), without blocking for more than a short grace
    /// period. Used to explain transport failures.
    fn pending_server_error(&mut self) -> Option<CollectorError> {
        let _ = self.stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut found = None;
        for _ in 0..self.max_credits.max(1) + 1 {
            match read_frame(&mut self.stream) {
                Ok(Some((kind::ERROR, payload))) => {
                    found = Some(decode_error(&payload));
                    break;
                }
                Ok(Some((kind::CHUNK_ACK, payload))) => {
                    self.note_ack(&payload);
                    continue;
                }
                _ => break,
            }
        }
        let _ = self.stream.set_read_timeout(None);
        found
    }

    /// Applies one `CHUNK_ACK` payload to the replay buffer and credit
    /// window.
    fn note_ack(&mut self, payload: &[u8]) {
        if payload.len() != 12 {
            return;
        }
        let Some((seq_bytes, _)) = payload.split_first_chunk::<8>() else {
            return;
        };
        let seq = u64::from_be_bytes(*seq_bytes);
        while self.unacked.front().is_some_and(|(s, _)| *s <= seq) {
            self.unacked.pop_front();
        }
        self.credits = (self.credits + 1).min(self.max_credits);
    }

    fn recv_ack(&mut self) -> Result<(), CollectorError> {
        let (frame_kind, payload) = expect_frame(&mut self.stream)?;
        match frame_kind {
            kind::CHUNK_ACK => {
                self.note_ack(&payload);
                Ok(())
            }
            kind::ERROR => Err(decode_error(&payload)),
            other => {
                Err(CollectorError::Protocol(format!("unexpected ack frame kind {other:#04x}")))
            }
        }
    }

    /// Blocks until every in-flight chunk is acknowledged — the barrier
    /// before a query or finish, so replies cannot interleave with acks.
    /// Transport failures reconnect and replay under the policy.
    fn drain_acks(&mut self) -> Result<(), CollectorError> {
        while self.credits < self.max_credits || !self.unacked.is_empty() {
            match self.recv_ack() {
                Ok(()) => {}
                Err(CollectorError::Io(e)) => self.recover(CollectorError::Io(e))?,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// The reconnect loop: backoff, reconnect, resume at this epoch,
    /// trim the replay buffer to the daemon's acked watermark, replay
    /// the unacked tail. Gives up (returning `last`) when the policy is
    /// exhausted; returns a typed server rejection immediately.
    fn recover(&mut self, last: CollectorError) -> Result<(), CollectorError> {
        let Some(name) = self.session.clone() else { return Err(last) };
        let mut backoff = self.policy.initial_backoff;
        let mut last = last;
        for _ in 0..self.policy.max_attempts {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(self.policy.max_backoff);
            match self.try_resume(&name) {
                Ok(()) => return Ok(()),
                Err(CollectorError::Io(e)) => last = CollectorError::Io(e),
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// One resume attempt: handshake, trim, replay.
    fn try_resume(&mut self, name: &str) -> Result<(), CollectorError> {
        let (stream, ack) = handshake(&self.endpoint, &HelloRequest::resume(name, self.epoch))?;
        self.stream = stream;
        self.max_credits = ack.credits.max(1);
        self.credits = self.max_credits;
        // Chunks below the watermark are durable on the daemon; replay
        // starts at the watermark — never before it, never past a gap.
        while self.unacked.front().is_some_and(|(seq, _)| *seq < ack.acked_chunks) {
            self.unacked.pop_front();
        }
        let pending: Vec<(u64, Vec<u8>)> = self.unacked.iter().cloned().collect();
        for (seq, chunk) in pending {
            while self.credits == 0 {
                self.recv_ack()?;
            }
            write_frame_parts(&mut self.stream, kind::CHUNK, &seq.to_be_bytes(), &chunk)?;
            self.credits -= 1;
        }
        Ok(())
    }

    /// Runs a query. On a session connection, outstanding chunk acks are
    /// drained first, so the reply reflects at least every chunk this
    /// client has sent (its own writes are always visible).
    ///
    /// # Errors
    ///
    /// Transport failures (after reconnect attempts, for session
    /// connections) or a server-side error reply.
    pub fn query(&mut self, spec: &QuerySpec) -> Result<QueryReply, CollectorError> {
        if self.session.is_none() {
            return self.query_once(spec);
        }
        loop {
            self.drain_acks()?;
            match self.query_once(spec) {
                Err(CollectorError::Io(e)) => self.recover(CollectorError::Io(e))?,
                other => return other,
            }
        }
    }

    fn query_once(&mut self, spec: &QuerySpec) -> Result<QueryReply, CollectorError> {
        write_frame(&mut self.stream, kind::QUERY, &spec.encode())?;
        let (frame_kind, payload) = expect_frame(&mut self.stream)?;
        match frame_kind {
            kind::QUERY_OK => QueryReply::decode(&payload),
            kind::ERROR => Err(decode_error(&payload)),
            other => {
                Err(CollectorError::Protocol(format!("unexpected query reply kind {other:#04x}")))
            }
        }
    }

    /// Lists every session the daemon holds (name-sorted), with
    /// liveness and the daemon's event count.
    ///
    /// # Errors
    ///
    /// Transport failures (after reconnect attempts, for session
    /// connections) or a server-side error reply.
    pub fn list_sessions(&mut self) -> Result<SessionList, CollectorError> {
        if self.session.is_none() {
            return self.list_sessions_once();
        }
        loop {
            self.drain_acks()?;
            match self.list_sessions_once() {
                Err(CollectorError::Io(e)) => self.recover(CollectorError::Io(e))?,
                other => return other,
            }
        }
    }

    fn list_sessions_once(&mut self) -> Result<SessionList, CollectorError> {
        write_frame(&mut self.stream, kind::LIST_SESSIONS, &[])?;
        let (frame_kind, payload) = expect_frame(&mut self.stream)?;
        match frame_kind {
            kind::SESSIONS => SessionList::decode(&payload),
            kind::ERROR => Err(decode_error(&payload)),
            other => Err(CollectorError::Protocol(format!(
                "unexpected session-list reply kind {other:#04x}"
            ))),
        }
    }

    /// Runs one query across every session the daemon holds (the
    /// `QUERY_ALL` frame; the spec must carry
    /// [`QueryTarget::AllSessions`](crate::protocol::QueryTarget::AllSessions)).
    /// The reply's grouped tables are machine-mergeable — what a
    /// [`FleetClient`](crate::fleet::FleetClient) folds across daemons.
    ///
    /// # Errors
    ///
    /// See [`CollectorClient::query`].
    pub fn query_all(&mut self, spec: &QuerySpec) -> Result<QueryAllReply, CollectorError> {
        if self.session.is_none() {
            return self.query_all_once(spec);
        }
        loop {
            self.drain_acks()?;
            match self.query_all_once(spec) {
                Err(CollectorError::Io(e)) => self.recover(CollectorError::Io(e))?,
                other => return other,
            }
        }
    }

    fn query_all_once(&mut self, spec: &QuerySpec) -> Result<QueryAllReply, CollectorError> {
        write_frame(&mut self.stream, kind::QUERY_ALL, &spec.encode())?;
        let (frame_kind, payload) = expect_frame(&mut self.stream)?;
        match frame_kind {
            kind::QUERY_ALL_OK => QueryAllReply::decode(&payload),
            kind::ERROR => Err(decode_error(&payload)),
            other => Err(CollectorError::Protocol(format!(
                "unexpected query-all reply kind {other:#04x}"
            ))),
        }
    }

    /// Finishes the session durably: drains acks, sends `FINISH`, and
    /// waits for the daemon's acknowledgment (chunk files flushed,
    /// manifest written). The connection stays usable for queries.
    ///
    /// If the transport fails around the finish exchange, the client
    /// reconnects and retries; a resume handshake answered "already
    /// finished" means the daemon committed before the failure, and the
    /// finish reports success.
    ///
    /// # Errors
    ///
    /// Transport failures that outlive the reconnect policy, or a
    /// server-side error reply.
    pub fn finish(&mut self) -> Result<SessionSummary, CollectorError> {
        if self.session.is_none() {
            return Err(CollectorError::Protocol("no open session to finish".into()));
        }
        loop {
            self.drain_acks()?;
            match self.finish_once() {
                Ok(summary) => {
                    self.session = None;
                    return Ok(summary);
                }
                Err(CollectorError::Io(e)) => match self.recover(CollectorError::Io(e)) {
                    Ok(()) => {}
                    Err(CollectorError::Remote {
                        code: Some(ErrorCode::SessionExists), ..
                    }) => {
                        // The FINISH committed; only its ack was lost.
                        self.session = None;
                        return Ok(SessionSummary {
                            chunks: self.next_seq,
                            events: self.events_sent,
                        });
                    }
                    Err(e) => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
    }

    fn finish_once(&mut self) -> Result<SessionSummary, CollectorError> {
        write_frame(&mut self.stream, kind::FINISH, &[])?;
        let (frame_kind, payload) = expect_frame(&mut self.stream)?;
        match frame_kind {
            kind::FINISH_ACK if payload.len() == 16 => {
                match (payload.first_chunk::<8>(), payload.last_chunk::<8>()) {
                    (Some(chunk_bytes), Some(event_bytes)) => Ok(SessionSummary {
                        chunks: u64::from_be_bytes(*chunk_bytes),
                        events: u64::from_be_bytes(*event_bytes),
                    }),
                    _ => Err(CollectorError::Protocol("short FINISH_ACK payload".into())),
                }
            }
            kind::ERROR => Err(decode_error(&payload)),
            other => {
                Err(CollectorError::Protocol(format!("unexpected finish reply kind {other:#04x}")))
            }
        }
    }
}

/// One connect + HELLO exchange.
fn handshake(
    endpoint: &Endpoint,
    hello: &HelloRequest,
) -> Result<(Stream, HelloAck), CollectorError> {
    let mut stream = endpoint.connect()?;
    write_frame(&mut stream, kind::HELLO, &hello.encode())?;
    let (frame_kind, payload) = expect_frame(&mut stream)?;
    match frame_kind {
        kind::HELLO_ACK => {
            let ack = HelloAck::decode(&payload)?;
            Ok((stream, ack))
        }
        kind::ERROR => Err(decode_error(&payload)),
        other => Err(CollectorError::Protocol(format!("unexpected HELLO reply kind {other:#04x}"))),
    }
}

fn expect_frame(stream: &mut Stream) -> Result<(u8, Vec<u8>), CollectorError> {
    match read_frame(stream)? {
        Some(frame) => Ok(frame),
        None => Err(CollectorError::Protocol("server closed the connection".into())),
    }
}

/// An [`EventSink`] that streams a profiler's events into a collector
/// session — attach with
/// [`Profiler::stream_to`](rlscope_core::profiler::Profiler::stream_to)
/// and the workload's trace flows to the daemon while it runs. The
/// underlying client reconnects and replays transparently under its
/// [`ReconnectPolicy`], so a daemon restart pauses the stream instead
/// of killing the run.
///
/// `emit` cannot return errors through the profiler, so transport
/// failures that outlive the policy are latched: the first error stops
/// further sends and is surfaced by [`CollectorSink::finish`] (or
/// [`CollectorSink::take_error`]).
pub struct CollectorSink {
    client: Mutex<Option<CollectorClient>>,
    error: Mutex<Option<CollectorError>>,
}

impl fmt::Debug for CollectorSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectorSink").finish_non_exhaustive()
    }
}

impl CollectorSink {
    /// Connects and opens a session with the default reconnect policy
    /// (see [`CollectorClient::open_session`]).
    ///
    /// # Errors
    ///
    /// Connection or handshake failures.
    pub fn connect(socket: &Path, session: &str) -> Result<Arc<CollectorSink>, CollectorError> {
        Self::connect_with(socket, session, ReconnectPolicy::default())
    }

    /// [`CollectorSink::connect`] with an explicit reconnect policy.
    ///
    /// # Errors
    ///
    /// Connection or handshake failures.
    pub fn connect_with(
        socket: &Path,
        session: &str,
        policy: ReconnectPolicy,
    ) -> Result<Arc<CollectorSink>, CollectorError> {
        let client = CollectorClient::open_session_with(socket, session, policy)?;
        Ok(Arc::new(CollectorSink { client: Mutex::new(Some(client)), error: Mutex::new(None) }))
    }

    /// Finishes the session durably, surfacing any latched streaming
    /// error first. The underlying connection stays open for queries.
    ///
    /// # Errors
    ///
    /// A latched transport error from `emit`, or the finish exchange's
    /// own failure.
    pub fn finish(&self) -> Result<SessionSummary, CollectorError> {
        if let Some(e) = self.error.lock().take() {
            return Err(e);
        }
        let mut guard = self.client.lock();
        let client =
            guard.as_mut().ok_or_else(|| CollectorError::Protocol("sink disconnected".into()))?;
        client.finish()
    }

    /// Runs a query over this sink's connection (e.g. asking about the
    /// session itself, mid-run).
    ///
    /// # Errors
    ///
    /// See [`CollectorClient::query`].
    pub fn query(&self, spec: &QuerySpec) -> Result<QueryReply, CollectorError> {
        let mut guard = self.client.lock();
        let client =
            guard.as_mut().ok_or_else(|| CollectorError::Protocol("sink disconnected".into()))?;
        client.query(spec)
    }

    /// Takes the latched streaming error, if any.
    pub fn take_error(&self) -> Option<CollectorError> {
        self.error.lock().take()
    }
}

impl EventSink for CollectorSink {
    fn emit(&self, events: Vec<Event>) {
        if self.error.lock().is_some() {
            return; // poisoned: the session already failed
        }
        let mut guard = self.client.lock();
        let Some(client) = guard.as_mut() else { return };
        if let Err(e) = client.send_events(&events) {
            *self.error.lock() = Some(e);
        }
    }
}
