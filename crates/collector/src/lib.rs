//! # rlscope-collector — the live trace collector daemon
//!
//! The paper's workflow is strictly post-hoc: profilers dump chunk
//! files, analysis runs later. This crate makes measurement
//! infrastructure **always-on**: a daemon (`rlscoped`, [`Collector`])
//! accepts many concurrent profiling sessions over Unix-domain sockets,
//! shards each session onto its own chunk directory (the exact on-disk
//! format a [`TraceWriter`] produces — `chunk_NNNNN.rls` files plus a
//! `MANIFEST` — but with validated chunk payloads persisted **verbatim**,
//! so ingest never re-encodes a byte), feeds every accepted chunk into
//! per-session incremental
//! sweeps ([`rlscope_core::analysis::LiveState`]), and answers
//! [`Analysis`]-shaped queries — filters, `group_by`, canonical JSON —
//! over sessions that are **still streaming** as well as over finished
//! directories (the latter through [`Manifest`] predicate pushdown and a
//! result cache keyed by manifest checksum).
//!
//! The client half is [`CollectorClient`] (the raw protocol) and
//! [`CollectorSink`] (a [`rlscope_core::profiler::EventSink`], so an
//! existing workload streams live by calling
//! [`Profiler::stream_to`](rlscope_core::profiler::Profiler::stream_to)
//! instead of writing files).
//!
//! # Wire protocol
//!
//! Transport framing is [`rlscope_core::store::write_frame`] /
//! [`read_frame`]: `len:u32 BE | kind:u8 | payload`, payloads capped at
//! [`MAX_FRAME_LEN`](rlscope_core::store::MAX_FRAME_LEN). **Chunk
//! payloads are codec-v3 chunk bodies** ([`encode_events`] bytes), so
//! ingest reuses [`decode_events`] and inherits its fuzz-hardened error
//! paths — every malformed byte surfaces as a protocol error, never a
//! panic or a silently dropped event.
//!
//! | kind | dir | name | payload |
//! |------|-----|------------|---------|
//! | `0x01` | C→S | `HELLO` | `version:u32` \| `name_len:u16` \| session name |
//! | `0x02` | C→S | `CHUNK` | one codec-v3 chunk ([`encode_events`]) |
//! | `0x03` | C→S | `FINISH` | empty |
//! | `0x04` | C→S | `QUERY` | a [`QuerySpec`] (see its docs for the byte layout) |
//! | `0x81` | S→C | `HELLO_ACK` | `session_id:u64` \| `credits:u32` |
//! | `0x82` | S→C | `CHUNK_ACK` | `events:u32` accepted from the acked chunk |
//! | `0x83` | S→C | `FINISH_ACK` | `chunks:u64` \| `events:u64` (durable, manifest written) |
//! | `0x84` | S→C | `QUERY_OK` | `flags:u8` (bit 0 live, bit 1 cache hit) \| `events_observed:u64` \| canonical JSON |
//! | `0xFF` | S→C | `ERROR` | `code:u8` \| `msg_len:u16` \| message |
//!
//! **Handshake.** A session connection opens with `HELLO` (protocol
//! version [`PROTOCOL_VERSION`], session name `[A-Za-z0-9_.-]{1,64}` —
//! it names the on-disk chunk directory, so path characters are
//! rejected). The server replies `HELLO_ACK` with the session id and
//! the **credit window**. Query-only connections skip the handshake and
//! send `QUERY` directly.
//!
//! **Backpressure.** Credits bound the unacknowledged `CHUNK` frames a
//! client may have in flight: each `CHUNK` spends one credit, each
//! `CHUNK_ACK` returns one, and a client at zero credits must block
//! until an ack arrives ([`CollectorClient`] does). The server applies
//! each chunk synchronously — decode, live-sweep push, writer enqueue —
//! before acking, so per-connection server memory is bounded by one
//! decoded chunk plus the socket buffer, and a slow disk or a heavy
//! live-sweep propagates to the producer instead of ballooning the
//! daemon.
//!
//! **Error codes** ([`ErrorCode`]): any server-side failure is reported
//! as an `ERROR` frame and closes the connection; a session that errors
//! (or whose connection drops before `FINISH`) is marked **aborted** —
//! its data so far stays queryable live, but it is never reported
//! finished.
//!
//! # Query semantics
//!
//! A [`QuerySpec`] targets a session by name or a chunk directory by
//! path. Live sessions answer from a [`LiveState`] snapshot taken under
//! the session lock — a consistent chunk prefix; see the `analysis`
//! module docs ("Live-query consistency") for exactly what a mid-run
//! query observes. Finished sessions and directory targets run
//! [`Analysis::from_chunk_dir`] (manifest predicate pushdown included);
//! their results are cached keyed by `(target, query bytes)` and
//! invalidated by [`Manifest::checksum`], so a repeated dashboard query
//! costs one manifest load, not a re-analysis, until the directory's
//! chunk set actually changes.
//!
//! [`Analysis`]: rlscope_core::analysis::Analysis
//! [`Analysis::from_chunk_dir`]: rlscope_core::analysis::Analysis::from_chunk_dir
//! [`LiveState`]: rlscope_core::analysis::LiveState
//! [`Manifest`]: rlscope_core::store::Manifest
//! [`Manifest::checksum`]: rlscope_core::store::Manifest::checksum
//! [`TraceWriter`]: rlscope_core::store::TraceWriter
//! [`encode_events`]: rlscope_core::store::encode_events
//! [`decode_events`]: rlscope_core::store::decode_events
//! [`read_frame`]: rlscope_core::store::read_frame

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod daemon;
pub mod protocol;

pub use client::{CollectorClient, CollectorSink, SessionSummary};
pub use daemon::{Collector, CollectorConfig};
pub use protocol::{
    CollectorError, ErrorCode, QueryReply, QuerySpec, QueryTarget, PROTOCOL_VERSION,
};
