//! # rlscope-collector — the live trace collector daemon
//!
//! The paper's workflow is strictly post-hoc: profilers dump chunk
//! files, analysis runs later. This crate makes measurement
//! infrastructure **always-on**: a daemon (`rlscoped`, [`Collector`])
//! accepts many concurrent profiling sessions over Unix-domain sockets,
//! shards each session onto its own chunk directory (the exact on-disk
//! format a [`TraceWriter`] produces — `chunk_NNNNN.rls` files plus a
//! `MANIFEST` — but with validated chunk payloads persisted **verbatim**,
//! so ingest never re-encodes a byte), feeds every accepted chunk into
//! per-session incremental
//! sweeps ([`rlscope_core::analysis::LiveState`]), and answers
//! [`Analysis`]-shaped queries — filters, `group_by`, canonical JSON —
//! over sessions that are **still streaming** as well as over finished
//! directories (the latter through [`Manifest`] predicate pushdown and a
//! result cache keyed by manifest checksum).
//!
//! The client half is [`CollectorClient`] (the raw protocol) and
//! [`CollectorSink`] (a [`rlscope_core::profiler::EventSink`], so an
//! existing workload streams live by calling
//! [`Profiler::stream_to`](rlscope_core::profiler::Profiler::stream_to)
//! instead of writing files).
//!
//! # Durability and consistency contract
//!
//! The collector is built to be the most reliable process on the box;
//! everything below survives a daemon SIGKILL at any byte boundary.
//!
//! **Acked means durable.** The daemon writes a `CHUNK_ACK` only after
//! the chunk is applied to the live sweeps *and* persisted to the
//! session's chunk directory. A crash can therefore lose only chunks
//! that were never acked — and those are exactly the chunks the client
//! still holds in its replay buffer.
//!
//! **What survives a daemon crash.** Every session directory carries a
//! durable registry record ([`registry::SessionRecord`]: epoch, status,
//! acked-chunk watermark), rewritten atomically at each lifecycle
//! transition. On startup the daemon runs a recovery scan: finished
//! sessions are re-served by name; sessions that were mid-stream have
//! any torn tail chunk truncated through the full decode + footer
//! validation path (so the surviving on-disk prefix is exactly some
//! acked prefix), their [`LiveState`] rebuilt by replaying that prefix,
//! and are registered **detached**, awaiting resume; aborted sessions
//! keep their data queryable and their names reusable.
//!
//! **What a client may assume after reconnect.** A resume handshake
//! (`HELLO` with the session name + epoch) returns the daemon's acked
//! watermark. Chunks below the watermark are durable and must not be
//! re-sent; chunks at or above it were lost and must be. [`CollectorClient`]
//! does this transparently under a bounded-backoff [`ReconnectPolicy`],
//! replaying only its unacked buffer — exactly-once, in-order delivery
//! across daemon restarts. The daemon additionally dedupes any replay
//! overlap by sequence number, so a racing reconnect cannot double-apply
//! a chunk.
//!
//! **Epoch semantics.** Each incarnation of a session *name* gets a
//! monotonically increasing epoch, assigned at `HELLO` and persisted in
//! the registry record. Resume requires the exact epoch: a client
//! holding a stale epoch (the name was aborted and recreated since) is
//! fenced off with [`ErrorCode::EpochMismatch`] rather than silently
//! splicing two different runs into one trace.
//!
//! **Detach vs abort.** A connection that closes *cleanly* (EOF at a
//! frame boundary, or daemon shutdown) detaches its session — state is
//! kept, the registry stays `Active`, and the session waits for a
//! resume. A connection that fails mid-frame, violates the protocol, or
//! hits a server-side I/O error (including injected disk-full faults)
//! **aborts** the session with a typed error: the durable prefix stays
//! queryable (as a directory target or by name), the name becomes
//! reusable, and a later resume attempt gets
//! [`ErrorCode::SessionAborted`]. Sessions silent past the configurable
//! idle timeout are aborted the same way
//! ([`ErrorCode::IdleTimeout`]).
//!
//! **Query consistency.** A live query always observes a consistent
//! chunk prefix (flush barrier + whole-chunk applies) — never a torn
//! chunk, never a non-acked suffix. A session whose abort is pending
//! finalization refuses queries with its typed error instead of
//! answering over in-limbo state; once finalized, queries serve exactly
//! the durable prefix from disk.
//!
//! # Wire protocol (version 2)
//!
//! Transport framing is [`rlscope_core::store::write_frame`] /
//! [`read_frame`]: `len:u32 BE | kind:u8 | payload`, payloads capped at
//! [`MAX_FRAME_LEN`](rlscope_core::store::MAX_FRAME_LEN). **Chunk
//! payloads are codec-v3 chunk bodies** ([`encode_events`] bytes)
//! prefixed with a sequence number, so ingest reuses [`decode_events`]
//! and inherits its fuzz-hardened error paths — every malformed byte
//! surfaces as a protocol error, never a panic or a silently dropped
//! event.
//!
//! | kind | dir | name | payload |
//! |------|-----|------------|---------|
//! | `0x01` | C→S | `HELLO` | [`HelloRequest`]: `version:u32` \| `mode:u8` (0 new, 1 resume) \| `name_len:u16` \| name \| `epoch:u64` if resuming |
//! | `0x02` | C→S | `CHUNK` | `seq:u64` \| one codec-v3 chunk ([`encode_events`]) |
//! | `0x03` | C→S | `FINISH` | empty |
//! | `0x04` | C→S | `QUERY` | a [`QuerySpec`] (see its docs for the byte layout) |
//! | `0x05` | C→S | `LIST_SESSIONS` | empty |
//! | `0x06` | C→S | `QUERY_ALL` | a [`QuerySpec`] with the all-sessions target |
//! | `0x81` | S→C | `HELLO_ACK` | [`HelloAck`]: `session_id:u64` \| `credits:u32` \| `epoch:u64` \| `acked_chunks:u64` |
//! | `0x82` | S→C | `CHUNK_ACK` | `seq:u64` \| `events:u32` — the chunk is applied **and durable** |
//! | `0x83` | S→C | `FINISH_ACK` | `chunks:u64` \| `events:u64` (durable, manifest written) |
//! | `0x84` | S→C | `QUERY_OK` | `flags:u8` (bit 0 live, bit 1 cache hit) \| `events_observed:u64` \| canonical JSON |
//! | `0x85` | S→C | `SESSIONS` | a [`SessionList`] (see its docs for the byte layout) |
//! | `0x86` | S→C | `QUERY_ALL_OK` | a [`QueryAllReply`]: machine-mergeable grouped tables (see its docs) |
//! | `0xFF` | S→C | `ERROR` | `code:u8` \| `msg_len:u16` \| message |
//!
//! **Handshake.** A session connection opens with `HELLO` (protocol
//! version [`PROTOCOL_VERSION`], session name `[A-Za-z0-9_.-]{1,64}` —
//! it names the on-disk chunk directory, so path characters are
//! rejected). The server replies `HELLO_ACK` with the session id, the
//! **credit window**, the session **epoch**, and the acked-chunk
//! watermark (0 for a new session). Query-only connections skip the
//! handshake and send `QUERY` directly.
//!
//! **Backpressure.** Credits bound the unacknowledged `CHUNK` frames a
//! client may have in flight: each `CHUNK` spends one credit, each
//! `CHUNK_ACK` returns one, and a client at zero credits must block
//! until an ack arrives ([`CollectorClient`] does). Acks are written
//! after the decode → live-sweep → persist pipeline completes for the
//! chunk, so per-connection server memory is bounded by the apply queue
//! plus the socket buffer, and a slow disk or a heavy live sweep
//! propagates to the producer instead of ballooning the daemon. A
//! slow-*reading* client that never drains its acks eventually fills
//! its socket buffer and stalls the ack writer — its own session only;
//! other sessions keep streaming.
//!
//! # Fleet topology: transports and federation
//!
//! The daemon serves the identical framed protocol over **two
//! transports**: the Unix-domain socket (always) and an optional TCP
//! listener ([`CollectorConfig::tcp_listen`], `rlscoped --listen
//! tcp://host:port`). Clients address either through an [`Endpoint`]
//! (`unix://path` or `tcp://host:port`).
//!
//! **Unix vs TCP trade-offs.** The Unix socket is same-host only, with
//! filesystem-permission access control and the lowest latency — the
//! right default for a profiler streaming to its local daemon. TCP
//! crosses hosts (profiling rig → collector box, and daemon → daemon
//! for federation), sets `TCP_NODELAY` (small ack/credit frames must
//! not wait on Nagle), and carries **no authentication or encryption**
//! — bind loopback or a trusted network. Everything above the byte
//! stream — framing, the protocol-v2 resume handshake, credit-window
//! backpressure, the durability contract — is transport-independent.
//!
//! **Resume across transports.** A session is identified by its name +
//! epoch handshake, not by its connection, so a stream opened over one
//! transport may detach and resume over the other
//! ([`CollectorClient::resume_session_at`]) — e.g. a local Unix
//! producer resumed through a TCP endpoint after a host move.
//!
//! **Federation.** A [`FleetClient`] holds one query connection per
//! daemon endpoint and fans a single serialized spec out as `QUERY_ALL`
//! (each daemon composes **its own** sessions via
//! [`Analysis::of_sessions`](rlscope_core::analysis::Analysis::of_sessions)
//! and returns machine-mergeable grouped tables), then folds the shard
//! tables together with
//! [`BreakdownTable::merge`](rlscope_core::overlap::BreakdownTable::merge)
//! — so a fleet rollup is identical to one daemon holding every
//! session. The **failure model** is partial-and-typed: a dead or
//! unreachable daemon becomes a *named gap* (a [`ShardReport`] carrying
//! its endpoint and typed [`CollectorError`]) rather than a wrong
//! total; [`FleetResult::complete`] says whether the rollup is
//! fleet-wide, and the gap shard is re-dialed on the next query. There
//! is no cross-daemon snapshot barrier: each shard answers over its own
//! sessions' consistent acked prefixes (see the `analysis` module docs
//! on multi-session consistency).
//!
//! **Error codes** ([`ErrorCode`]): any server-side failure is reported
//! as an `ERROR` frame and closes the connection with the session
//! **aborted** (see the durability contract above for what aborted
//! means and which codes are retryable — none of them; only transport
//! failures are).
//!
//! # Query semantics
//!
//! A [`QuerySpec`] targets a session by name or a chunk directory by
//! path. Live sessions answer from a [`LiveState`] snapshot taken under
//! the session lock — a consistent chunk prefix; see the `analysis`
//! module docs ("Live-query consistency") for exactly what a mid-run
//! query observes. Live results are cached keyed by `(name, epoch,
//! events observed, query bytes)` — a prefix is immutable once
//! observed, so equal keys are answer-equal, including across a restart
//! that replayed the same prefix. Finished sessions and directory
//! targets run [`Analysis::from_chunk_dir`] (manifest predicate
//! pushdown included); their results are cached keyed by `(target,
//! query bytes)` and invalidated by [`Manifest::checksum`]. Both caches
//! evict LRU, so a repeated dashboard query costs one manifest load,
//! not a re-analysis, until the directory's chunk set actually changes.
//! Cross-session `QUERY_ALL` answers are never cached: ingest on *any*
//! session invalidates them, so the daemon recomposes per query —
//! per-session sub-results still benefit from the caches above.
//!
//! # Tiered storage: compaction and retention
//!
//! Finished sessions age down a three-rung storage ladder, trading
//! resolution for footprint:
//!
//! | tier | layout | answers |
//! |------|--------|---------|
//! | `Raw` | close-ordered chunks at the session dir top level | everything |
//! | `Sorted` | start-sorted v3 chunks under `sorted/` | everything, with tighter manifest pushdown |
//! | `Rollup` | segment summaries under `rollup/` ([`rlscope_core::rollup`]) | coarse grouped/aligned-window queries from pre-aggregated tables, without touching events |
//!
//! Transitions run on a **background compaction worker** (a job per
//! session, [`Collector::compact_session`] to force one) and follow a
//! crash-safe four-step dance: build the next tier into a `.tier.tmp`
//! directory, atomically rename it into place, rewrite the session's
//! registry record with the new [`registry::StorageTier`], then delete
//! the prior tier. A daemon killed between any two steps recovers on
//! the next bind: the registry record is the source of truth, and tier
//! reconciliation removes temp debris, unrecorded tier directories, and
//! prior-tier leftovers — some recorded tier is always fully present
//! and queryable. Rollup granularity is
//! [`CollectorConfig::rollup_segment_ns`].
//!
//! **Retention is a dial**, not a cron job you write: `rlscoped
//! --retention raw=<dur>,sorted=<dur>,rollup=<dur>` (a
//! [`RetentionPolicy`]) bounds how long a finished session may dwell in
//! each tier before the worker ages it down — and past the last rung it
//! is pruned entirely: directory removed, registry record dropped, name
//! reusable. Aborted sessions never compact; they prune after the raw
//! dwell. Queries are **tier-transparent**: the same `QUERY` /
//! `QUERY_ALL` frames answer over whatever tier a session occupies, and
//! a query needing sub-segment resolution from a rolled-up session
//! fails typed ([`ErrorCode::UnsupportedQuery`]) rather than
//! approximating.
//!
//! [`Analysis`]: rlscope_core::analysis::Analysis
//! [`Analysis::from_chunk_dir`]: rlscope_core::analysis::Analysis::from_chunk_dir
//! [`LiveState`]: rlscope_core::analysis::LiveState
//! [`Manifest`]: rlscope_core::store::Manifest
//! [`Manifest::checksum`]: rlscope_core::store::Manifest::checksum
//! [`TraceWriter`]: rlscope_core::store::TraceWriter
//! [`encode_events`]: rlscope_core::store::encode_events
//! [`decode_events`]: rlscope_core::store::decode_events
//! [`read_frame`]: rlscope_core::store::read_frame

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod compact;
pub mod daemon;
pub mod fleet;
pub mod protocol;
pub mod registry;
pub mod transport;

pub use client::{CollectorClient, CollectorSink, ReconnectPolicy, SessionSummary};
pub use compact::RetentionPolicy;
pub use daemon::{Collector, CollectorConfig, RecoveredSession, SessionPhase};
pub use fleet::{FleetClient, FleetResult, ShardReport};
pub use protocol::{
    CollectorError, ErrorCode, HelloAck, HelloRequest, QueryAllReply, QueryReply, QuerySpec,
    QueryTarget, SessionInfo, SessionList, PROTOCOL_VERSION,
};
pub use registry::StorageTier;
pub use transport::{Endpoint, Stream};
