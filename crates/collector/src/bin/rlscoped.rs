//! `rlscoped` — the live trace collector daemon.
//!
//! ```text
//! rlscoped --socket <path> --data-dir <dir> [--credits N]
//! ```
//!
//! Binds the Unix-domain socket, upgrades any legacy session
//! directories under the data dir (one-shot manifest rebuild), and
//! serves profiling sessions and queries until killed. See the
//! `rlscope-collector` crate docs for the wire protocol.

use rlscope_collector::daemon::serve_forever;
use rlscope_collector::{Collector, CollectorConfig};

fn usage() -> ! {
    eprintln!("usage: rlscoped --socket <path> --data-dir <dir> [--credits N]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut socket: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut credits: Option<u32> = None;
    let mut i = 1;
    while i < args.len() {
        let value = |i: usize| -> String {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} requires a value", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--socket" | "-s" => socket = Some(value(i)),
            "--data-dir" | "-d" => data_dir = Some(value(i)),
            "--credits" => credits = Some(value(i).parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => {
                println!("rlscoped --socket <path> --data-dir <dir> [--credits N]");
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
        i += 2;
    }
    let (Some(socket), Some(data_dir)) = (socket, data_dir) else { usage() };
    let mut config = CollectorConfig::new(socket, data_dir);
    if let Some(credits) = credits {
        config.credits = credits.max(1);
    }
    let collector = match Collector::bind(config) {
        Ok(collector) => collector,
        Err(e) => {
            eprintln!("rlscoped: bind failed: {e}");
            std::process::exit(1);
        }
    };
    for (dir, outcome) in collector.upgraded_dirs() {
        println!(
            "rlscoped: upgraded legacy chunk dir {} ({} chunks, {} events, manifest {})",
            dir.display(),
            outcome.chunks,
            outcome.events,
            if outcome.written { "written" } else { "not writable" }
        );
    }
    println!("rlscoped: listening on {}", collector.socket().display());
    serve_forever(collector);
}
