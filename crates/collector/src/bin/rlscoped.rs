//! `rlscoped` — the live trace collector daemon.
//!
//! ```text
//! rlscoped --socket <path> --data-dir <dir> [--listen tcp://host:port]
//!          [--credits N] [--idle-timeout-secs N]
//!          [--retention raw=<dur>,sorted=<dur>,rollup=<dur>]
//! ```
//!
//! Binds the Unix-domain socket (plus an optional TCP listener carrying
//! the identical framed protocol), runs the crash-recovery scan over the
//! data dir (re-serving finished sessions, truncating torn tails and
//! rebuilding live state for interrupted ones, upgrading legacy
//! directories), and serves profiling sessions and queries until
//! killed. See the `rlscope-collector` crate docs for the wire protocol
//! and the durability contract.

use rlscope_collector::daemon::serve_forever;
use rlscope_collector::{Collector, CollectorConfig, RetentionPolicy, SessionPhase};
use std::time::Duration;

const USAGE: &str = "usage: rlscoped --socket <path> --data-dir <dir> \
[--listen tcp://host:port] [--credits N] [--idle-timeout-secs N] \
[--retention raw=<dur>,sorted=<dur>,rollup=<dur>]
  --retention ages finished sessions down the storage ladder: after the
  raw= dwell a session's chunks are rewritten start-sorted, after the
  sorted= dwell they are rolled up into segment summaries (coarse
  queries only), and after the rollup= dwell the session is pruned.
  Durations take ms/s/m/h/d suffixes; omitted keys mean sessions stay
  at that tier forever (e.g. --retention raw=30m,sorted=12h).";

fn usage() -> ! {
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut socket: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut credits: Option<u32> = None;
    let mut idle_timeout_secs: Option<u64> = None;
    let mut retention: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        let value = |i: usize| -> String {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} requires a value", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--socket" | "-s" => socket = Some(value(i)),
            "--data-dir" | "-d" => data_dir = Some(value(i)),
            "--listen" | "-l" => listen = Some(value(i)),
            "--credits" => credits = Some(value(i).parse().unwrap_or_else(|_| usage())),
            "--idle-timeout-secs" => {
                idle_timeout_secs = Some(value(i).parse().unwrap_or_else(|_| usage()));
            }
            "--retention" | "-r" => retention = Some(value(i)),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
        i += 2;
    }
    let (Some(socket), Some(data_dir)) = (socket, data_dir) else { usage() };
    let mut config = CollectorConfig::new(socket, data_dir);
    if let Some(listen) = listen {
        if !listen.starts_with("tcp://") {
            eprintln!("rlscoped: --listen takes a tcp://host:port address (got {listen:?})");
            std::process::exit(2);
        }
        config.tcp_listen = Some(listen);
    }
    if let Some(credits) = credits {
        config.credits = credits.max(1);
    }
    if let Some(secs) = idle_timeout_secs {
        config.idle_timeout = Some(Duration::from_secs(secs.max(1)));
    }
    if let Some(retention) = retention {
        match RetentionPolicy::parse(&retention) {
            Ok(policy) => config.retention = Some(policy),
            Err(e) => {
                eprintln!("rlscoped: bad --retention value: {e}");
                std::process::exit(2);
            }
        }
    }
    let collector = match Collector::bind(config) {
        Ok(collector) => collector,
        Err(e) => {
            eprintln!("rlscoped: bind failed: {e}");
            std::process::exit(1);
        }
    };
    for (dir, outcome) in collector.upgraded_dirs() {
        println!(
            "rlscoped: upgraded legacy chunk dir {} ({} chunks, {} events, manifest {})",
            dir.display(),
            outcome.chunks,
            outcome.events,
            if outcome.written { "written" } else { "not writable" }
        );
    }
    for recovered in collector.recovered_sessions() {
        let phase = match recovered.phase {
            SessionPhase::Finished => "finished, re-serving",
            SessionPhase::Detached => "interrupted, awaiting resume",
            SessionPhase::Aborted => "aborted, data queryable",
            SessionPhase::Attached => "attached",
        };
        // Only interrupted sessions replay events into live sweeps at
        // recovery; finished/aborted dirs are served through the batch
        // path, so an event count there would always read 0.
        let events = match recovered.phase {
            SessionPhase::Detached => format!(", {} events replayed", recovered.events),
            _ => String::new(),
        };
        println!(
            "rlscoped: recovered session '{}' ({phase}; {} chunks{events}{})",
            recovered.name,
            recovered.chunks,
            if recovered.removed_chunks > 0 {
                format!(", {} torn tail chunk(s) truncated", recovered.removed_chunks)
            } else {
                String::new()
            }
        );
    }
    println!("rlscoped: listening on {}", collector.socket().display());
    if let Some(addr) = collector.tcp_addr() {
        println!("rlscoped: listening on tcp://{addr}");
    }
    serve_forever(collector);
}
