//! The collector daemon: socket accept loop, per-session ingest, the
//! durable session registry and restart recovery scan, live and
//! finished-dir query execution, and the keyed result caches.

use crate::compact::{self, CompactionJob, JobKind, JobQueue, RetentionPolicy};
use crate::protocol::{
    encode_error, kind, CollectorError, ErrorCode, HelloAck, HelloRequest, QueryAllReply,
    QueryReply, QuerySpec, QueryTarget, SessionInfo, SessionList, PROTOCOL_VERSION,
};
use crate::registry::{SessionRecord, SessionStatus, StorageTier};
use crate::transport::Stream;
use parking_lot::Mutex;
use rlscope_core::analysis::{Analysis, AnalysisError, LiveState, LiveTables, SessionSource};
use rlscope_core::rollup::Rollup;
use rlscope_core::store::{
    compute_footer_columns, decode_columns, list_chunk_files, read_chunk_footer, read_frame,
    recover_chunk_prefix, upgrade_chunk_dir, write_frame, EventColumns, Manifest, ManifestEntry,
    ManifestUpgrade, TraceIoError, MANIFEST_FILE,
};
use rlscope_sim::ids::ProcessId;
use rlscope_sim::time::TimeNs;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::hash::Hash;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Test-only fault injection for the daemon's durable I/O path, compiled
/// only under the `fault-inject` feature (release builds carry no hook).
///
/// A [`fault::FaultPlan`] is shared between a chaos test and the daemon
/// config; the daemon consults it before every chunk persist and
/// manifest write, so tests can inject ENOSPC-style failures and torn
/// writes at exact points in the stream without touching the filesystem
/// layer. The chunk-write counter is global to the plan, so fault
/// schedules are easiest to reason about with one streaming session per
/// plan.
#[cfg(feature = "fault-inject")]
pub mod fault {
    use parking_lot::Mutex;
    use rlscope_core::store::TraceIoError;
    use std::sync::Arc;

    #[derive(Debug, Default)]
    struct Inner {
        chunk_writes_seen: u64,
        fail_chunk_writes_from: Option<u64>,
        torn_bytes: Option<usize>,
        fail_manifest_writes: bool,
        fail_compaction: bool,
    }

    /// A mutable fault schedule for the daemon's chunk and manifest
    /// writes (see the module docs).
    #[derive(Debug, Default)]
    pub struct FaultPlan {
        inner: Mutex<Inner>,
    }

    pub(crate) enum ChunkWriteFault {
        Pass,
        Torn(usize),
        Fail,
    }

    impl FaultPlan {
        /// A plan with no faults scheduled.
        pub fn new() -> Arc<FaultPlan> {
            Arc::new(FaultPlan::default())
        }

        /// Every chunk persist from the `nth` (0-based, counted across
        /// the plan's lifetime) fails with an injected ENOSPC-style
        /// error before any byte lands.
        pub fn fail_chunk_writes_from(&self, nth: u64) {
            let mut inner = self.inner.lock();
            inner.fail_chunk_writes_from = Some(nth);
            inner.torn_bytes = None;
        }

        /// Like [`FaultPlan::fail_chunk_writes_from`], but each failing
        /// write first leaves a torn `keep_bytes`-byte prefix on disk —
        /// the partial-write shape a real crash leaves behind.
        pub fn tear_chunk_writes_from(&self, nth: u64, keep_bytes: usize) {
            let mut inner = self.inner.lock();
            inner.fail_chunk_writes_from = Some(nth);
            inner.torn_bytes = Some(keep_bytes);
        }

        /// Make every manifest write fail with an injected error.
        pub fn fail_manifest_writes(&self, fail: bool) {
            self.inner.lock().fail_manifest_writes = fail;
        }

        /// Make every compaction job fail mid-build with an injected
        /// ENOSPC-style error (a partial temp dir is left behind, like a
        /// real mid-build crash would).
        pub fn fail_compaction(&self, fail: bool) {
            self.inner.lock().fail_compaction = fail;
        }

        /// Clears all scheduled faults and resets the write counter, so
        /// the next schedule counts from the next chunk persist.
        pub fn clear(&self) {
            let mut inner = self.inner.lock();
            inner.chunk_writes_seen = 0;
            inner.fail_chunk_writes_from = None;
            inner.torn_bytes = None;
            inner.fail_manifest_writes = false;
        }

        pub(crate) fn next_chunk_write(&self) -> ChunkWriteFault {
            let mut inner = self.inner.lock();
            let n = inner.chunk_writes_seen;
            inner.chunk_writes_seen += 1;
            match inner.fail_chunk_writes_from {
                Some(from) if n >= from => match inner.torn_bytes {
                    Some(keep) => ChunkWriteFault::Torn(keep),
                    None => ChunkWriteFault::Fail,
                },
                _ => ChunkWriteFault::Pass,
            }
        }

        pub(crate) fn manifest_writes_fail(&self) -> bool {
            self.inner.lock().fail_manifest_writes
        }

        pub(crate) fn compaction_fails(&self) -> bool {
            self.inner.lock().fail_compaction
        }
    }

    pub(crate) fn injected_enospc() -> TraceIoError {
        std::io::Error::other("injected ENOSPC (fault plan)").into()
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Unix-domain socket path to listen on (created at bind, removed at
    /// shutdown; a stale file from a dead daemon is replaced).
    pub socket: PathBuf,
    /// Additional TCP listen address (`host:port`, or the full
    /// `tcp://host:port` form the `rlscoped --listen` flag takes; port 0
    /// picks an ephemeral port — [`Collector::tcp_addr`] reports the
    /// bound address). The framed protocol is transport-agnostic, so TCP
    /// connections get the identical handshake, backpressure, resume,
    /// and query surface as Unix ones. `None` serves Unix only.
    pub tcp_listen: Option<String>,
    /// Directory under which each session gets its chunk directory.
    /// Session chunk files are the client's flush batches persisted
    /// verbatim (see [`Collector`]'s session store), so chunk
    /// granularity is chosen client-side.
    pub data_dir: PathBuf,
    /// Credit window granted to each session connection (max unacked
    /// `CHUNK` frames in flight — the explicit backpressure bound).
    pub credits: u32,
    /// Query results cached per cache (finished-dir and live), LRU
    /// eviction.
    pub cache_capacity: usize,
    /// Force the decode→apply pipeline on (`Some(true)`) or off
    /// (`Some(false)`); `None` picks by available parallelism — a
    /// dedicated apply thread per session only pays when there is a core
    /// for it.
    pub apply_pipeline: Option<bool>,
    /// Abort sessions (typed [`ErrorCode::IdleTimeout`]) that receive no
    /// frames for this long, so a crashed client cannot pin daemon
    /// memory forever. `None` disables the reaper.
    pub idle_timeout: Option<Duration>,
    /// Retention dial: how long finished sessions dwell at each storage
    /// tier before the background compactor ages them down the ladder
    /// (raw → sorted → rollup → gone). `None` (and an empty policy)
    /// disables the retention timer; compaction is still available
    /// through [`Collector::compact_session`].
    pub retention: Option<RetentionPolicy>,
    /// Trace-time window width (nanoseconds) of each rollup segment —
    /// the granularity floor for time-windowed queries against the
    /// rollup tier.
    pub rollup_segment_ns: u64,
    /// Fault schedule for the durable I/O path (chaos tests only).
    #[cfg(feature = "fault-inject")]
    pub faults: Option<Arc<fault::FaultPlan>>,
}

impl CollectorConfig {
    /// A config with default tuning (8 credits, 256 cached results, no
    /// idle timeout).
    pub fn new(socket: impl Into<PathBuf>, data_dir: impl Into<PathBuf>) -> Self {
        CollectorConfig {
            socket: socket.into(),
            tcp_listen: None,
            data_dir: data_dir.into(),
            credits: 8,
            cache_capacity: 256,
            apply_pipeline: None,
            idle_timeout: None,
            retention: None,
            rollup_segment_ns: 1_000_000_000,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }
}

/// Where a session currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// A connection is streaming into (or holding) the session.
    Attached,
    /// No connection holds the session; a client may resume it with the
    /// matching epoch.
    Detached,
    /// `FINISH` committed; the directory is immutable and served
    /// read-only by name.
    Finished,
    /// Aborted with a typed error; the data so far is queryable and the
    /// name is reusable.
    Aborted,
}

/// One session re-registered by the startup recovery scan.
#[derive(Debug, Clone)]
pub struct RecoveredSession {
    /// Session (and chunk directory) name.
    pub name: String,
    /// Lifecycle phase after recovery ([`SessionPhase::Detached`] for
    /// sessions that were mid-stream — they await a resume).
    pub phase: SessionPhase,
    /// Durable chunks in the recovered prefix.
    pub chunks: u64,
    /// Events across the recovered prefix (0 for finished sessions,
    /// whose manifest is the source of truth).
    pub events: u64,
    /// Torn/corrupt tail chunk files the scan deleted.
    pub removed_chunks: usize,
}

/// One profiling session's server-side state.
///
/// Ingest is a two-stage pipeline per session: the connection thread
/// decodes and validates each chunk straight into columnar buffers
/// ([`rlscope_core::store::decode_columns`] — no `Vec<Event>` is ever
/// materialized on the ingest path), then hands the columns to the
/// session's **apply thread** over a bounded channel (the bounded
/// per-connection buffer — at most [`APPLY_QUEUE_CHUNKS`] decoded chunks
/// in flight). The apply thread pushes them into the live sweeps and
/// the chunk store, **then writes the `CHUNK_ACK`** — an ack therefore
/// means the chunk is durable, which is what makes client-side replay
/// after a daemon crash exactly-once. (On single-core hosts the
/// pipeline is skipped and chunks apply inline before the ack — same
/// [`Session::apply_chunk`] path, same durability contract.)
///
/// Chunks apply atomically — the whole-chunk sweep push under the
/// `live` lock, then counters and the verbatim persist under the
/// `state` lock — and live snapshots run **after** a flush barrier
/// (queries wait until every chunk enqueued before them has applied).
/// That is what makes a live query a *consistent prefix*: it observes
/// whole chunks, in order, including every chunk the querying client
/// has been acked.
struct Session {
    name: String,
    /// Server-assigned id, stable across detach/resume.
    id: u64,
    /// Incarnation epoch (see [`SessionRecord::epoch`]); immutable for
    /// the session's lifetime, echoed by resuming clients.
    epoch: u64,
    dir: PathBuf,
    state: Mutex<SessionState>,
    /// The live sweeps, under their own lock so a whole-chunk sweep push
    /// never blocks the connection thread's (short) state accesses —
    /// only the apply thread and snapshots touch it. Lock order: `state`
    /// may be held while taking `live`, never the reverse.
    live: Mutex<LiveState>,
    /// Monotonic enqueue/apply counters driving the flush barrier. (std
    /// primitives: the vendored parking_lot stub has no Condvar.)
    progress: std::sync::Mutex<ApplyProgress>,
    applied: std::sync::Condvar,
}

/// Monotonic pipeline counters: `enqueued` advances when the connection
/// thread hands a chunk to the apply stage, `applied` when the apply
/// stage resolves it (applied, or discarded after a failure — the
/// counters must stay reconciled so barriers never wait forever).
#[derive(Debug, Default, Clone, Copy)]
struct ApplyProgress {
    enqueued: u64,
    applied: u64,
}

/// Decoded chunks the apply queue may hold — the bound on per-session
/// in-flight memory between decode and apply.
const APPLY_QUEUE_CHUNKS: usize = 8;

/// `(seq, raw payload, decoded columns)` handed to the apply stage.
type ApplyItem = (u64, Vec<u8>, EventColumns);

/// The session's durable half: received chunk payloads are persisted
/// **verbatim** — they are codec-v3 chunks, already validated end to end
/// by the ingest decode — so the collector never re-encodes a byte, and
/// the on-disk directory is exactly what a [`TraceWriter`] run would
/// leave behind (`chunk_NNNNN.rls` files plus a `MANIFEST` at finish,
/// with chunk granularity set by the client's flush batches).
///
/// [`TraceWriter`]: rlscope_core::store::TraceWriter
struct ChunkStore {
    dir: PathBuf,
    entries: Vec<ManifestEntry>,
    seq: u32,
    #[cfg(feature = "fault-inject")]
    faults: Option<Arc<fault::FaultPlan>>,
}

impl ChunkStore {
    /// Creates the session directory, clearing stale chunks and any old
    /// `MANIFEST` (same reused-directory semantics as
    /// `TraceWriter::create`).
    fn create(dir: &Path, config: &CollectorConfig) -> Result<ChunkStore, TraceIoError> {
        let _ = config;
        fs::create_dir_all(dir)?;
        for stale in list_chunk_files(dir)? {
            fs::remove_file(stale)?;
        }
        let manifest = dir.join(MANIFEST_FILE);
        if manifest.exists() {
            fs::remove_file(&manifest)?;
        }
        Ok(ChunkStore {
            dir: dir.to_path_buf(),
            entries: Vec::new(),
            seq: 0,
            #[cfg(feature = "fault-inject")]
            faults: config.faults.clone(),
        })
    }

    /// Reopens a recovered directory without wiping it: `entries` is the
    /// validated prefix a [`recover_chunk_prefix`] scan produced, and
    /// new chunks continue its contiguous `chunk_NNNNN` numbering.
    fn resume(dir: &Path, entries: Vec<ManifestEntry>, config: &CollectorConfig) -> ChunkStore {
        let _ = config;
        ChunkStore {
            dir: dir.to_path_buf(),
            seq: entries.len() as u32,
            entries,
            #[cfg(feature = "fault-inject")]
            faults: config.faults.clone(),
        }
    }

    /// Persists one validated chunk payload verbatim and indexes its
    /// footer (parsed from the v3 trailer; computed from the decoded
    /// events for v1-fallback payloads, whose wire format carries none).
    fn append(&mut self, payload: &[u8], cols: &EventColumns) -> Result<(), TraceIoError> {
        let file = format!("chunk_{:05}.rls", self.seq);
        self.write_chunk(&self.dir.join(&file), payload)?;
        self.seq += 1;
        let footer = match read_chunk_footer(payload)? {
            Some(footer) => footer,
            None => compute_footer_columns(cols),
        };
        self.entries.push(ManifestEntry { file, size: payload.len() as u64, footer });
        Ok(())
    }

    #[cfg(feature = "fault-inject")]
    fn write_chunk(&self, path: &Path, payload: &[u8]) -> Result<(), TraceIoError> {
        if let Some(plan) = &self.faults {
            match plan.next_chunk_write() {
                fault::ChunkWriteFault::Pass => {}
                fault::ChunkWriteFault::Torn(keep) => {
                    let _ = fs::write(path, &payload[..keep.min(payload.len())]);
                    return Err(fault::injected_enospc());
                }
                fault::ChunkWriteFault::Fail => return Err(fault::injected_enospc()),
            }
        }
        fs::write(path, payload)?;
        Ok(())
    }

    #[cfg(not(feature = "fault-inject"))]
    fn write_chunk(&self, path: &Path, payload: &[u8]) -> Result<(), TraceIoError> {
        fs::write(path, payload)?;
        Ok(())
    }

    /// Writes the manifest; the directory is then fully query-ready
    /// (pushdown included) without any scan.
    fn finish(&mut self) -> Result<(), TraceIoError> {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.faults {
            if plan.manifest_writes_fail() {
                return Err(fault::injected_enospc());
            }
        }
        Manifest::from_entries(&self.dir, std::mem::take(&mut self.entries)).write()
    }
}

struct SessionState {
    /// `Some` while the session accepts chunks; taken at finish (which
    /// writes the manifest) and flushed best-effort on abort.
    store: Option<ChunkStore>,
    /// Decoded-chunk channel into the apply thread; dropped at finish,
    /// detach, or abort so the thread drains and exits.
    apply_tx: Option<crossbeam::channel::Sender<ApplyItem>>,
    apply_thread: Option<JoinHandle<()>>,
    /// First apply-stage failure; poisons the session (the apply thread
    /// reports it to the client, and it is re-reported, with its error
    /// class, on the next chunk, query, or finish).
    apply_error: Option<(ErrorCode, String)>,
    /// Chunks durably applied (== acked).
    chunks: u64,
    events: u64,
    /// Next chunk sequence number expected on the wire; while detached
    /// this equals `chunks` (the queue is drained at detach), which is
    /// the watermark a resume handshake returns.
    recv_seq: u64,
    finished: bool,
    /// Typed abort reason, latched by whichever party aborts first (the
    /// connection handler, the apply stage, or the idle reaper).
    abort: Option<(ErrorCode, String)>,
    /// Connection id currently attached, if any.
    attached: Option<u64>,
    /// Last frame receipt on the attached connection — the idle reaper's
    /// clock.
    last_frame: Instant,
    /// Storage tier the session's durable data lives in. Always
    /// [`StorageTier::Raw`] while streaming; the compaction worker
    /// advances it (after the new tier is durably recorded), and query
    /// routing reads it under this same lock.
    tier: StorageTier,
}

impl Session {
    /// Applies one validated chunk: live sweeps, then counters and the
    /// verbatim persist — the single code path both the pipelined apply
    /// thread and the single-core inline mode run. Sweep rejections are
    /// client-data problems ([`ErrorCode::Protocol`]); store failures
    /// are server-side [`ErrorCode::Io`].
    fn apply_chunk(&self, payload: &[u8], cols: &EventColumns) -> Result<(), ConnError> {
        {
            let mut live = self.live.lock();
            live.push_columns(cols).map_err(|e| (ErrorCode::Protocol, e.to_string()))?;
        }
        let mut state = self.state.lock();
        if let Some(store) = &mut state.store {
            store.append(payload, cols).map_err(|e| (ErrorCode::Io, e.to_string()))?;
            state.events += cols.len() as u64;
            state.chunks += 1;
        }
        Ok(())
    }

    /// Blocks until every chunk enqueued **before this call** has been
    /// applied — the barrier before any live snapshot. Deliberately not
    /// "wait for an empty queue": under sustained ingest a saturated
    /// pipeline may never drain, and a query only needs the chunks its
    /// sender was acked, all of which were enqueued before the query
    /// frame was read.
    fn flush_applies(&self) {
        let mut progress = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        let target = progress.enqueued;
        while progress.applied < target {
            progress = self.applied.wait(progress).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops the apply thread (drains the queue first) — finish, detach,
    /// and abort all funnel through here.
    fn stop_apply_thread(&self) {
        let (tx, thread) = {
            let mut state = self.state.lock();
            (state.apply_tx.take(), state.apply_thread.take())
        };
        drop(tx);
        if let Some(thread) = thread {
            let _ = thread.join();
        }
    }

    fn phase_locked(state: &SessionState) -> SessionPhase {
        if state.finished {
            SessionPhase::Finished
        } else if state.abort.is_some() {
            SessionPhase::Aborted
        } else if state.attached.is_some() {
            SessionPhase::Attached
        } else {
            SessionPhase::Detached
        }
    }
}

/// A minimal LRU map: recency is a monotonic tick per entry, eviction
/// scans for the stalest (O(capacity), fine at the daemon's cache
/// sizes).
struct LruCache<K, V> {
    map: HashMap<K, (V, u64)>,
    tick: u64,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    fn new(capacity: usize) -> Self {
        LruCache { map: HashMap::new(), tick: 0, capacity: capacity.max(1) }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(value, used)| {
            *used = tick;
            value.clone()
        })
    }

    fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(stalest) =
                self.map.iter().min_by_key(|(_, (_, used))| *used).map(|(k, _)| k.clone())
            {
                self.map.remove(&stalest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }
}

#[derive(Clone)]
struct CachedResult {
    checksum: u64,
    events: u64,
    json: String,
}

/// Live-result cache key: `(session name, epoch, events observed, query
/// bytes)`. The epoch distinguishes incarnations of a reused name; the
/// event count uniquely identifies a chunk prefix (chunks apply in
/// order), so equal keys are answer-equal — including across a daemon
/// restart that replayed the same prefix.
type LiveKey = (String, u64, u64, Vec<u8>);

struct Daemon {
    config: CollectorConfig,
    sessions: Mutex<HashMap<String, Arc<Session>>>,
    /// Finished-target results keyed by `(dir, query bytes)`, validated
    /// by manifest checksum, LRU-evicted.
    cache: Mutex<LruCache<(String, Vec<u8>), CachedResult>>,
    /// Live-target results (see [`LiveKey`]), LRU-evicted.
    live_cache: Mutex<LruCache<LiveKey, String>>,
    next_session_id: AtomicU64,
    next_epoch: AtomicU64,
    next_conn_id: AtomicU64,
    shutdown: AtomicBool,
    /// Clones of live connection streams (either transport), keyed by
    /// connection id (handlers deregister themselves on exit); shut down
    /// to unblock handler threads at daemon shutdown, and by the idle
    /// reaper to evict an attached-but-silent client.
    conn_streams: Mutex<HashMap<u64, Stream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// The background compaction job queue (retention timer and test
    /// hooks push, the compaction worker thread drains).
    compaction: JobQueue,
}

/// The collector daemon (the library form of the `rlscoped` binary):
/// binds a Unix-domain socket, recovers durable sessions from the data
/// dir, serves session and query connections on per-connection threads,
/// and shuts down cleanly on drop. See the [crate docs](crate) for the
/// protocol and the durability contract.
pub struct Collector {
    daemon: Arc<Daemon>,
    accept_thread: Option<JoinHandle<()>>,
    tcp_accept_thread: Option<JoinHandle<()>>,
    /// Bound TCP listen address, when [`CollectorConfig::tcp_listen`]
    /// was set (the resolved address, so port 0 reports the real port).
    tcp_addr: Option<SocketAddr>,
    reaper_thread: Option<JoinHandle<()>>,
    compaction_thread: Option<JoinHandle<()>>,
    retention_thread: Option<JoinHandle<()>>,
    upgraded: Vec<(PathBuf, ManifestUpgrade)>,
    recovered: Vec<RecoveredSession>,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("socket", &self.daemon.config.socket)
            .field("data_dir", &self.daemon.config.data_dir)
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// Binds the socket and starts serving.
    ///
    /// Creates the data directory, replaces a stale socket file, and —
    /// before accepting any connection — runs the **recovery scan** over
    /// every session directory carrying a registry record: finished
    /// sessions are re-registered and served by name; sessions that were
    /// mid-stream have any torn tail chunk truncated
    /// ([`recover_chunk_prefix`] — full decode + footer validation, so
    /// the surviving prefix is exactly some acked prefix), their
    /// [`LiveState`] rebuilt by replaying the surviving chunks through
    /// the normal decode path, and are registered detached, awaiting a
    /// client resume; aborted sessions stay queryable and their names
    /// reusable. Directories without a record get the legacy one-shot
    /// [`upgrade_chunk_dir`] pass and are served read-only by name
    /// ([`Collector::upgraded_dirs`] reports what was rebuilt,
    /// [`Collector::recovered_sessions`] what was recovered).
    ///
    /// # Errors
    ///
    /// Filesystem or socket errors. Per-directory recovery failures are
    /// skipped, not fatal — a corrupt old session must not keep the
    /// daemon from starting.
    pub fn bind(config: CollectorConfig) -> Result<Collector, CollectorError> {
        fs::create_dir_all(&config.data_dir).map_err(TraceIoError::from)?;
        let mut upgraded = Vec::new();
        let mut recovered = Vec::new();
        let mut sessions = HashMap::new();
        let mut max_epoch = 0u64;
        let mut next_id = 1u64;
        if let Ok(entries) = fs::read_dir(&config.data_dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if !path.is_dir() {
                    continue;
                }
                let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                    continue;
                };
                let record = match SessionRecord::read(&path) {
                    Ok(record) => record,
                    Err(_) => continue,
                };
                match record {
                    Some(record) => {
                        max_epoch = max_epoch.max(record.epoch);
                        // Finish whatever tier transition a crash
                        // interrupted before anything queries the dir.
                        compact::reconcile_tiers(&path, record.tier);
                        if let Some(info) =
                            recover_session(&config, &path, &name, record, &mut next_id)
                        {
                            sessions.insert(name, info.0);
                            recovered.push(info.1);
                        }
                    }
                    None => {
                        // Legacy directory (pre-registry daemon, or a torn
                        // record): one-shot manifest upgrade, then serve
                        // read-only by name when the name is usable.
                        let has_chunks = list_chunk_files(&path).is_ok_and(|f| !f.is_empty());
                        if !has_chunks {
                            continue;
                        }
                        if let Ok(outcome) = upgrade_chunk_dir(&path) {
                            if outcome.rebuilt {
                                upgraded.push((path.clone(), outcome));
                            }
                        }
                        if valid_session_name(&name) {
                            let id = next_id;
                            next_id += 1;
                            sessions.insert(
                                name.clone(),
                                finished_session(&name, id, 0, &path, StorageTier::Raw),
                            );
                            recovered.push(RecoveredSession {
                                name,
                                phase: SessionPhase::Finished,
                                chunks: 0,
                                events: 0,
                                removed_chunks: 0,
                            });
                        }
                    }
                }
            }
        }
        if config.socket.exists() {
            fs::remove_file(&config.socket).map_err(TraceIoError::from)?;
        }
        let listener = UnixListener::bind(&config.socket).map_err(TraceIoError::from)?;
        let tcp_listener = match &config.tcp_listen {
            Some(addr) => {
                let addr = addr.strip_prefix("tcp://").unwrap_or(addr);
                let listener = TcpListener::bind(addr).map_err(TraceIoError::from)?;
                Some(listener)
            }
            None => None,
        };
        let tcp_addr = tcp_listener.as_ref().and_then(|l| l.local_addr().ok());
        let cache = LruCache::new(config.cache_capacity);
        let live_cache = LruCache::new(config.cache_capacity);
        let idle_timeout = config.idle_timeout;
        let retention = config.retention.clone().filter(|p| !p.is_empty());
        let daemon = Arc::new(Daemon {
            config,
            sessions: Mutex::new(sessions),
            cache: Mutex::new(cache),
            live_cache: Mutex::new(live_cache),
            next_session_id: AtomicU64::new(next_id),
            next_epoch: AtomicU64::new(max_epoch + 1),
            next_conn_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            conn_streams: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
            compaction: JobQueue::default(),
        });
        let accept_daemon = daemon.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_daemon.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                register_connection(&accept_daemon, Stream::Unix(stream));
            }
        });
        let tcp_accept_thread = tcp_listener.map(|listener| {
            let accept_daemon = daemon.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if accept_daemon.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    register_connection(&accept_daemon, Stream::Tcp(stream));
                }
            })
        });
        let reaper_thread = idle_timeout.map(|timeout| {
            let reaper_daemon = daemon.clone();
            std::thread::spawn(move || {
                let tick =
                    (timeout / 4).clamp(Duration::from_millis(10), Duration::from_millis(500));
                while !reaper_daemon.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    reap_idle_sessions(&reaper_daemon, timeout);
                }
            })
        });
        // The compaction worker always runs (the queue is also fed by
        // the explicit `compact_session` hook); the retention timer only
        // when a non-empty policy is configured.
        let worker_daemon = daemon.clone();
        let compaction_thread = Some(std::thread::spawn(move || {
            while let Some(job) = worker_daemon.compaction.pop() {
                let _ = run_compaction_job(&worker_daemon, &job);
                worker_daemon.compaction.done(&job);
            }
        }));
        let retention_thread = retention.map(|policy| {
            let timer_daemon = daemon.clone();
            std::thread::spawn(move || {
                let min = policy.min_dwell().unwrap_or(Duration::from_secs(60));
                let tick = (min / 4).clamp(Duration::from_millis(10), Duration::from_millis(500));
                while !timer_daemon.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    retention_pass(&timer_daemon, &policy);
                }
            })
        });
        Ok(Collector {
            daemon,
            accept_thread: Some(accept_thread),
            tcp_accept_thread,
            tcp_addr,
            reaper_thread,
            compaction_thread,
            retention_thread,
            upgraded,
            recovered,
        })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.daemon.config.socket
    }

    /// The bound TCP listen address, when the config asked for one
    /// (resolved, so a port-0 config reports the real ephemeral port).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Legacy session directories whose manifest the startup upgrade
    /// pass rebuilt.
    pub fn upgraded_dirs(&self) -> &[(PathBuf, ManifestUpgrade)] {
        &self.upgraded
    }

    /// Sessions the startup recovery scan re-registered from durable
    /// registry records (plus legacy directories served read-only).
    pub fn recovered_sessions(&self) -> &[RecoveredSession] {
        &self.recovered
    }

    /// Session names currently registered, with their finished flag.
    pub fn sessions(&self) -> Vec<(String, bool)> {
        self.daemon
            .sessions
            .lock()
            .values()
            .map(|s| (s.name.clone(), s.state.lock().finished))
            .collect()
    }

    /// The named session's current lifecycle phase, if it exists.
    pub fn session_phase(&self, name: &str) -> Option<SessionPhase> {
        let sessions = self.daemon.sessions.lock();
        let session = sessions.get(name)?;
        let state = session.state.lock();
        Some(Session::phase_locked(&state))
    }

    /// The storage tier the named session's durable data lives in, if
    /// the session exists.
    pub fn session_tier(&self, name: &str) -> Option<StorageTier> {
        let sessions = self.daemon.sessions.lock();
        let session = sessions.get(name)?;
        let state = session.state.lock();
        Some(state.tier)
    }

    /// Ages the named finished session one step down the storage ladder
    /// synchronously (raw → sorted, sorted → rollup) — the same job the
    /// background worker runs, exposed for tests and operators. Returns
    /// the tier the session is at afterwards.
    ///
    /// # Errors
    ///
    /// [`CollectorError::Remote`] when the session does not exist, is
    /// not finished, or already sits at the rollup tier; transition
    /// failures surface with the worker's typed error (and leave the
    /// prior tier intact and queryable).
    pub fn compact_session(&self, name: &str) -> Result<StorageTier, CollectorError> {
        let remote =
            |(code, message): ConnError| CollectorError::Remote { code: Some(code), message };
        let tier = self
            .session_tier(name)
            .ok_or_else(|| remote((ErrorCode::UnknownTarget, format!("no session {name:?}"))))?;
        let kind = match tier {
            StorageTier::Raw => JobKind::Sort,
            StorageTier::Sorted => JobKind::Rollup,
            StorageTier::Rollup => {
                return Err(remote((
                    ErrorCode::Protocol,
                    format!("session {name:?} is already at the rollup tier"),
                )))
            }
        };
        let job = CompactionJob { name: name.to_string(), kind };
        run_compaction_job(&self.daemon, &job).map_err(remote)?;
        self.session_tier(name).ok_or_else(|| {
            remote((ErrorCode::UnknownTarget, format!("session {name:?} vanished mid-compaction")))
        })
    }

    /// Runs one retention evaluation now (what the timer does every
    /// tick): enqueues a compaction or prune job for every session past
    /// its dwell under `policy`. Use [`Collector::wait_compaction_idle`]
    /// to observe completion.
    pub fn run_retention_pass(&self, policy: &RetentionPolicy) {
        retention_pass(&self.daemon, policy);
    }

    /// Blocks until the compaction queue is empty and no job is
    /// running.
    pub fn wait_compaction_idle(&self) {
        self.daemon.compaction.wait_idle();
    }

    /// Stops accepting, disconnects live connections, joins all threads,
    /// and removes the socket file. Sessions still streaming **detach**
    /// (their registry record stays `Active`), so a restarted daemon
    /// offers them for resume — a daemon shutdown is a pause, not an
    /// abort.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.daemon.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loops with throwaway connections.
        let _ = UnixStream::connect(&self.daemon.config.socket);
        if let Some(addr) = self.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.tcp_accept_thread.take() {
            let _ = handle.join();
        }
        for (_, stream) in self.daemon.conn_streams.lock().drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> = self.daemon.conn_threads.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(handle) = self.reaper_thread.take() {
            let _ = handle.join();
        }
        self.daemon.compaction.shutdown();
        if let Some(handle) = self.compaction_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.retention_thread.take() {
            let _ = handle.join();
        }
        let _ = fs::remove_file(&self.daemon.config.socket);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Builds a read-only finished session entry (used for recovered and
/// legacy directories).
fn finished_session(
    name: &str,
    id: u64,
    epoch: u64,
    dir: &Path,
    tier: StorageTier,
) -> Arc<Session> {
    Arc::new(Session {
        name: name.to_string(),
        id,
        epoch,
        dir: dir.to_path_buf(),
        state: Mutex::new(SessionState {
            store: None,
            apply_tx: None,
            apply_thread: None,
            apply_error: None,
            chunks: 0,
            events: 0,
            recv_seq: 0,
            finished: true,
            abort: None,
            attached: None,
            last_frame: Instant::now(),
            tier,
        }),
        live: Mutex::new(LiveState::new()),
        progress: std::sync::Mutex::new(ApplyProgress::default()),
        applied: std::sync::Condvar::new(),
    })
}

/// Recovers one registry-recorded session directory; returns the
/// registered session plus its report, or `None` when the directory is
/// beyond recovery (skipped, never fatal).
fn recover_session(
    config: &CollectorConfig,
    dir: &Path,
    name: &str,
    record: SessionRecord,
    next_id: &mut u64,
) -> Option<(Arc<Session>, RecoveredSession)> {
    let id = *next_id;
    *next_id += 1;
    match record.status {
        SessionStatus::Finished => {
            let session = finished_session(name, id, record.epoch, dir, record.tier);
            session.state.lock().chunks = record.acked_chunks;
            Some((
                session,
                RecoveredSession {
                    name: name.to_string(),
                    phase: SessionPhase::Finished,
                    chunks: record.acked_chunks,
                    events: 0,
                    removed_chunks: 0,
                },
            ))
        }
        SessionStatus::Aborted => {
            let session = finished_session(name, id, record.epoch, dir, record.tier);
            {
                let mut state = session.state.lock();
                state.finished = false;
                state.chunks = record.acked_chunks;
                state.abort = Some((
                    ErrorCode::SessionAborted,
                    format!("session {name:?} was aborted in a previous daemon run"),
                ));
            }
            Some((
                session,
                RecoveredSession {
                    name: name.to_string(),
                    phase: SessionPhase::Aborted,
                    chunks: record.acked_chunks,
                    events: 0,
                    removed_chunks: 0,
                },
            ))
        }
        SessionStatus::Active => {
            // Mid-stream at the crash: truncate any torn tail through the
            // full decode path, then rebuild the live sweeps by replaying
            // the surviving prefix — the same events, in the same order,
            // the pre-crash apply thread pushed.
            let mut live = LiveState::new();
            let mut replay_error: Option<String> = None;
            let prefix = recover_chunk_prefix(dir, |events| {
                if replay_error.is_none() {
                    if let Err(e) = live.push_batch(events) {
                        replay_error = Some(e.to_string());
                    }
                }
            })
            .ok()?;
            let chunks = prefix.entries.len() as u64;
            let events = prefix.events();
            if let Some(err) = replay_error {
                // Decodable chunks the sweeps reject should be impossible
                // (they applied once already) — degrade to a typed abort,
                // keeping the directory queryable.
                let _ = SessionRecord {
                    epoch: record.epoch,
                    status: SessionStatus::Aborted,
                    acked_chunks: chunks,
                    tier: record.tier,
                }
                .write(dir);
                let session = finished_session(name, id, record.epoch, dir, record.tier);
                {
                    let mut state = session.state.lock();
                    state.finished = false;
                    state.chunks = chunks;
                    state.abort =
                        Some((ErrorCode::CorruptChunk, format!("recovery replay failed: {err}")));
                }
                return Some((
                    session,
                    RecoveredSession {
                        name: name.to_string(),
                        phase: SessionPhase::Aborted,
                        chunks,
                        events,
                        removed_chunks: prefix.removed.len(),
                    },
                ));
            }
            let removed_chunks = prefix.removed.len();
            let store = ChunkStore::resume(dir, prefix.entries, config);
            // Refresh the record's informational watermark post-truncation.
            let _ = SessionRecord {
                epoch: record.epoch,
                status: SessionStatus::Active,
                acked_chunks: chunks,
                tier: record.tier,
            }
            .write(dir);
            let session = Arc::new(Session {
                name: name.to_string(),
                id,
                epoch: record.epoch,
                dir: dir.to_path_buf(),
                state: Mutex::new(SessionState {
                    store: Some(store),
                    apply_tx: None,
                    apply_thread: None,
                    apply_error: None,
                    chunks,
                    events,
                    recv_seq: chunks,
                    finished: false,
                    abort: None,
                    attached: None,
                    last_frame: Instant::now(),
                    tier: record.tier,
                }),
                live: Mutex::new(live),
                progress: std::sync::Mutex::new(ApplyProgress::default()),
                applied: std::sync::Condvar::new(),
            });
            Some((
                session,
                RecoveredSession {
                    name: name.to_string(),
                    phase: SessionPhase::Detached,
                    chunks,
                    events,
                    removed_chunks,
                },
            ))
        }
    }
}

/// Blocks serving until the process is killed — the `rlscoped` binary's
/// main loop.
pub fn serve_forever(collector: Collector) -> ! {
    let _collector = collector;
    loop {
        std::thread::park();
    }
}

type ConnError = (ErrorCode, String);

/// Registers one accepted connection (either transport) and spawns its
/// handler thread — the shared tail of both accept loops.
fn register_connection(daemon: &Arc<Daemon>, stream: Stream) {
    let conn_id = daemon.next_conn_id.fetch_add(1, Ordering::SeqCst);
    if let Ok(clone) = stream.try_clone() {
        daemon.conn_streams.lock().insert(conn_id, clone);
    }
    let conn_daemon = daemon.clone();
    let handle = std::thread::spawn(move || {
        handle_connection(&conn_daemon, stream, conn_id);
        conn_daemon.conn_streams.lock().remove(&conn_id);
    });
    let mut threads = daemon.conn_threads.lock();
    threads.retain(|h| !h.is_finished());
    threads.push(handle);
}

/// The write half of a connection, shared between the connection thread
/// and the session's apply thread (which writes durable `CHUNK_ACK`s):
/// the mutex keeps frames from interleaving mid-write.
type SharedWriter = Arc<Mutex<Stream>>;

fn send_error(writer: &SharedWriter, code: ErrorCode, message: &str) {
    let _ = write_frame(&mut *writer.lock(), kind::ERROR, &encode_error(code, message));
}

fn send_chunk_ack(writer: &SharedWriter, seq: u64, events: u32) -> Result<(), TraceIoError> {
    let mut payload = [0u8; 12];
    payload[..8].copy_from_slice(&seq.to_be_bytes());
    payload[8..].copy_from_slice(&events.to_be_bytes());
    write_frame(&mut *writer.lock(), kind::CHUNK_ACK, &payload)
}

/// How a connection handler left its loop, which decides the fate of an
/// attached session: a clean exit **detaches** (resumable), an error
/// **aborts** (typed, name reusable).
enum ConnExit {
    Detach,
    Abort(ConnError),
}

fn handle_connection(daemon: &Daemon, mut stream: Stream, conn_id: u64) {
    let Ok(write_half) = stream.try_clone() else { return };
    let writer: SharedWriter = Arc::new(Mutex::new(write_half));
    let mut session: Option<Arc<Session>> = None;
    let exit = loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean EOF at a frame boundary: the client closed (or the
            // daemon is shutting down) with nothing half-sent.
            Ok(None) => break ConnExit::Detach,
            Err(e) => {
                if daemon.shutdown.load(Ordering::SeqCst) {
                    break ConnExit::Detach;
                }
                let error = (ErrorCode::Protocol, e.to_string());
                send_error(&writer, error.0, &error.1);
                break ConnExit::Abort(error);
            }
        };
        if let Some(session) = &session {
            session.state.lock().last_frame = Instant::now();
        }
        let outcome: Result<(), ConnError> = match frame.0 {
            kind::HELLO => handle_hello(daemon, &writer, &mut session, conn_id, &frame.1),
            kind::CHUNK => handle_chunk(&writer, session.as_deref(), frame.1),
            kind::FINISH => {
                let result = handle_finish(&writer, session.as_deref());
                if result.is_ok() {
                    session = None; // clean finish: nothing left to detach
                }
                result
            }
            kind::QUERY => handle_query(daemon, &writer, &frame.1),
            kind::LIST_SESSIONS => handle_list_sessions(daemon, &writer),
            kind::QUERY_ALL => handle_query_all(daemon, &writer, &frame.1),
            other => Err((ErrorCode::Protocol, format!("unexpected frame kind {other:#04x}"))),
        };
        if let Err(error) = outcome {
            send_error(&writer, error.0, &error.1);
            break ConnExit::Abort(error);
        }
    };
    if let Some(session) = session {
        match exit {
            ConnExit::Detach => detach_session(&session),
            ConnExit::Abort(error) => abort_session(&session, error),
        }
    }
}

/// Clean connection exit with an open session: keep everything — live
/// sweeps, chunk store, epoch — and mark the session detached so a
/// client holding the epoch can resume exactly where the acks stopped.
/// A latched failure (apply error, or the reaper's idle abort) takes
/// precedence and finalizes the abort instead.
fn detach_session(session: &Session) {
    session.stop_apply_thread();
    let mut state = session.state.lock();
    if state.finished {
        return;
    }
    if let Some(error) = state.apply_error.take() {
        finalize_abort(session, &mut state, error);
        return;
    }
    if let Some(error) = state.abort.clone() {
        finalize_abort(session, &mut state, error);
        return;
    }
    state.attached = None;
    // Queue drained ⇒ the wire watermark equals the durable count.
    state.recv_seq = state.chunks;
    let _ = SessionRecord {
        epoch: session.epoch,
        status: SessionStatus::Active,
        acked_chunks: state.chunks,
        tier: StorageTier::Raw,
    }
    .write(&session.dir);
}

fn abort_session(session: &Session, error: ConnError) {
    session.stop_apply_thread();
    let mut state = session.state.lock();
    let error = state.apply_error.take().or_else(|| state.abort.clone()).unwrap_or(error);
    finalize_abort(session, &mut state, error);
}

/// Finalizes an abort: latch the typed reason, write a best-effort
/// manifest so the durable prefix stays analyzable without a scan,
/// record `Aborted` durably (name reusable after restart), and free the
/// live sweep memory. Caller must have stopped the apply thread and
/// hold the state lock.
fn finalize_abort(session: &Session, state: &mut SessionState, error: ConnError) {
    if state.finished {
        return;
    }
    if state.abort.is_none() {
        state.abort = Some(error);
    }
    state.attached = None;
    if let Some(mut store) = state.store.take() {
        let _ = store.finish();
    }
    let _ = SessionRecord {
        epoch: session.epoch,
        status: SessionStatus::Aborted,
        acked_chunks: state.chunks,
        tier: StorageTier::Raw,
    }
    .write(&session.dir);
    *session.live.lock() = LiveState::new();
}

/// The idle reaper's periodic pass: abort every non-finished session
/// whose last frame is older than `timeout`. Detached sessions finalize
/// inline (their apply thread is already stopped); attached sessions
/// get the abort latched and their connection shut down — the handler
/// thread finalizes on its way out, keeping a single finalization path
/// per attachment.
fn reap_idle_sessions(daemon: &Daemon, timeout: Duration) {
    let sessions: Vec<Arc<Session>> = daemon.sessions.lock().values().cloned().collect();
    for session in sessions {
        let mut state = session.state.lock();
        if state.finished || state.abort.is_some() {
            continue;
        }
        if state.last_frame.elapsed() < timeout {
            continue;
        }
        {
            // An apply queue still draining means frames arrived recently
            // in wall-clock terms even if `last_frame` says otherwise —
            // never reap mid-apply.
            let progress = session.progress.lock().unwrap_or_else(|e| e.into_inner());
            if progress.applied < progress.enqueued {
                continue;
            }
        }
        let error = (
            ErrorCode::IdleTimeout,
            format!("session {:?} idle past the {timeout:?} idle timeout", session.name),
        );
        match state.attached {
            Some(conn_id) => {
                state.abort = Some(error.clone());
                drop(state);
                let stream =
                    daemon.conn_streams.lock().get(&conn_id).and_then(|s| s.try_clone().ok());
                if let Some(mut stream) = stream {
                    // Best-effort typed notice; the connection is idle, so
                    // no competing writer is mid-frame.
                    let _ = write_frame(&mut stream, kind::ERROR, &encode_error(error.0, &error.1));
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                }
            }
            None => finalize_abort(&session, &mut state, error),
        }
    }
}

/// Runs one compaction job end to end: re-check eligibility under the
/// state lock (jobs can go stale — the session may have been resumed,
/// aborted, or already transitioned), do the slow tier build with **no
/// locks held** (finished sessions are immutable, so the raw files
/// cannot change underneath the build), then record the new tier
/// durably and in memory before deleting the prior tier's files.
fn run_compaction_job(daemon: &Daemon, job: &CompactionJob) -> Result<(), ConnError> {
    let session = daemon
        .sessions
        .lock()
        .get(&job.name)
        .cloned()
        .ok_or((ErrorCode::UnknownTarget, format!("no session {:?}", job.name)))?;
    // Eligibility snapshot. Finished sessions compact; only finalized
    // sessions (finished, or abort-finalized) prune.
    {
        let state = session.state.lock();
        let finalized = state.finished || (state.abort.is_some() && state.store.is_none());
        let eligible = match job.kind {
            JobKind::Sort => state.finished && state.tier == StorageTier::Raw,
            JobKind::Rollup => state.finished && state.tier == StorageTier::Sorted,
            JobKind::Prune => finalized,
        };
        if !eligible {
            // Stale job — not an error, just nothing to do anymore.
            return Ok(());
        }
    }
    #[cfg(feature = "fault-inject")]
    if let Some(plan) = &daemon.config.faults {
        if plan.compaction_fails() && job.kind != JobKind::Prune {
            // Simulate a mid-build failure honestly: leave a partial
            // temp dir behind, exactly what a real ENOSPC or crash
            // mid-build leaves. The next (un-faulted) run wipes it.
            let tmp = session.dir.join(compact::TIER_TMP);
            let _ = fs::create_dir_all(&tmp);
            let _ = fs::write(tmp.join("partial.rls"), b"torn tier build");
            return Err((
                ErrorCode::Io,
                "injected ENOSPC (fault plan) during compaction".to_string(),
            ));
        }
    }
    match job.kind {
        JobKind::Sort => {
            compact::sort_tier(&session.dir).map_err(io_err)?;
            advance_tier(&session, StorageTier::Sorted)?;
            compact::drop_raw_files(&session.dir);
        }
        JobKind::Rollup => {
            compact::rollup_tier(&session.dir, daemon.config.rollup_segment_ns.max(1))
                .map_err(io_err)?;
            advance_tier(&session, StorageTier::Rollup)?;
            compact::drop_sorted_dir(&session.dir);
        }
        JobKind::Prune => {
            daemon.sessions.lock().remove(&job.name);
            let _ = fs::remove_dir_all(&session.dir);
        }
    }
    Ok(())
}

/// Step 3 of the transition protocol: records `tier` durably in the
/// session registry, then mirrors it into the in-memory state. On a
/// failed record write the freshly published tier directory is removed
/// again, so disk and record never disagree in this process's lifetime
/// (a crash between publish and record is reconciled at next startup).
fn advance_tier(session: &Session, tier: StorageTier) -> Result<(), ConnError> {
    let mut state = session.state.lock();
    let record = SessionRecord {
        epoch: session.epoch,
        status: SessionStatus::Finished,
        acked_chunks: state.chunks,
        tier,
    };
    if let Err(e) = record.write(&session.dir) {
        drop(state);
        if let Some(sub) = tier.subdir() {
            let _ = fs::remove_dir_all(session.dir.join(sub));
        }
        return Err(io_err(e));
    }
    state.tier = tier;
    Ok(())
}

/// How long the session has dwelled at its current tier: the age of its
/// `SESSION` record, which is rewritten at every durable transition.
fn session_dwell(dir: &Path) -> Option<Duration> {
    let meta = fs::metadata(dir.join(crate::registry::SESSION_FILE)).ok()?;
    meta.modified().ok()?.elapsed().ok()
}

/// One retention evaluation: enqueue the due tier transition (or prune)
/// for every finalized session past its dwell. Streaming and detached
/// sessions are never touched; aborted sessions age straight from raw
/// to pruned after the `raw` dwell (their partial data is not worth a
/// rewrite, but deserves the same grace period).
fn retention_pass(daemon: &Daemon, policy: &RetentionPolicy) {
    let sessions: Vec<Arc<Session>> = daemon.sessions.lock().values().cloned().collect();
    for session in sessions {
        let (finished, aborted, tier) = {
            let state = session.state.lock();
            let aborted = state.abort.is_some() && state.store.is_none();
            (state.finished, aborted, state.tier)
        };
        if !finished && !aborted {
            continue;
        }
        let Some(dwell) = session_dwell(&session.dir) else { continue };
        let kind = if aborted {
            policy.raw.filter(|d| dwell >= *d).map(|_| JobKind::Prune)
        } else {
            match tier {
                StorageTier::Raw => policy.raw.filter(|d| dwell >= *d).map(|_| JobKind::Sort),
                StorageTier::Sorted => {
                    policy.sorted.filter(|d| dwell >= *d).map(|_| JobKind::Rollup)
                }
                StorageTier::Rollup => {
                    policy.rollup.filter(|d| dwell >= *d).map(|_| JobKind::Prune)
                }
            }
        };
        if let Some(kind) = kind {
            daemon.compaction.push(CompactionJob { name: session.name.clone(), kind });
        }
    }
}

fn valid_session_name(name: &str) -> bool {
    (1..=64).contains(&name.len())
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
        && !name.bytes().all(|b| b == b'.')
}

/// Spawns the session's decode→apply pipeline stage. The apply thread
/// owns the durable side of the ack contract: it persists each chunk,
/// **then** writes its `CHUNK_ACK` through the shared writer; on
/// failure it reports the typed error itself (the client may be blocked
/// waiting on acks, so the connection thread cannot be relied on to
/// deliver it) and drains the remaining queue without applying.
fn start_apply_pipeline(session: &Arc<Session>, state: &mut SessionState, writer: &SharedWriter) {
    let (apply_tx, apply_rx) = crossbeam::channel::bounded::<ApplyItem>(APPLY_QUEUE_CHUNKS);
    let apply_session = session.clone();
    let writer = writer.clone();
    let apply_thread = std::thread::spawn(move || {
        while let Some((seq, payload, cols)) = apply_rx.recv() {
            let poisoned = apply_session.state.lock().apply_error.is_some();
            if !poisoned {
                match apply_session.apply_chunk(&payload, &cols) {
                    Ok(()) => {
                        let _ = send_chunk_ack(&writer, seq, cols.len() as u32);
                    }
                    Err(error) => {
                        send_error(&writer, error.0, &error.1);
                        let mut state = apply_session.state.lock();
                        if state.apply_error.is_none() {
                            state.apply_error = Some(error);
                        }
                    }
                }
            }
            let mut progress = apply_session.progress.lock().unwrap_or_else(|e| e.into_inner());
            progress.applied += 1;
            apply_session.applied.notify_all();
        }
    });
    state.apply_tx = Some(apply_tx);
    state.apply_thread = Some(apply_thread);
}

fn pipelined(daemon: &Daemon) -> bool {
    // Decode→apply pipelining only pays when there is a core to run the
    // apply stage on; on a single-CPU host the extra thread is pure
    // context-switch overhead, so chunks apply inline on the connection
    // thread (same `apply_chunk` code path either way).
    daemon
        .config
        .apply_pipeline
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) > 1)
}

fn handle_hello(
    daemon: &Daemon,
    writer: &SharedWriter,
    session: &mut Option<Arc<Session>>,
    conn_id: u64,
    payload: &[u8],
) -> Result<(), ConnError> {
    if session.is_some() {
        return Err((ErrorCode::Protocol, "second HELLO on one connection".into()));
    }
    // Version first, from the fixed prefix: older clients lay the rest of
    // the payload out differently, and they deserve the typed version
    // error, not a parse error.
    let Some((version_bytes, _)) = payload.split_first_chunk::<4>() else {
        return Err((ErrorCode::Protocol, "truncated HELLO".into()));
    };
    let version = u32::from_be_bytes(*version_bytes);
    if version != PROTOCOL_VERSION {
        return Err((
            ErrorCode::Version,
            format!("protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"),
        ));
    }
    let hello = HelloRequest::decode(payload).map_err(|e| (ErrorCode::Protocol, e.to_string()))?;
    if !valid_session_name(&hello.name) {
        return Err((
            ErrorCode::BadSessionName,
            format!("bad session name {:?} (want [A-Za-z0-9_.-]{{1,64}})", hello.name),
        ));
    }
    match hello.resume_epoch {
        None => handle_hello_new(daemon, writer, session, conn_id, &hello.name),
        Some(epoch) => handle_hello_resume(daemon, writer, session, conn_id, &hello.name, epoch),
    }
}

fn handle_hello_new(
    daemon: &Daemon,
    writer: &SharedWriter,
    session: &mut Option<Arc<Session>>,
    conn_id: u64,
    name: &str,
) -> Result<(), ConnError> {
    let dir = daemon.config.data_dir.join(name);
    let mut sessions = daemon.sessions.lock();
    if let Some(existing) = sessions.get(name) {
        let state = existing.state.lock();
        match Session::phase_locked(&state) {
            SessionPhase::Finished => {
                return Err((
                    ErrorCode::SessionExists,
                    format!("session {name:?} is finished (durable data; pick a fresh name)"),
                ));
            }
            SessionPhase::Attached => {
                return Err((
                    ErrorCode::SessionActive,
                    format!("session {name:?} is currently streaming"),
                ));
            }
            SessionPhase::Detached => {
                return Err((
                    ErrorCode::SessionActive,
                    format!("session {name:?} is detached awaiting resume"),
                ));
            }
            // Aborted: the name is explicitly reusable — fall through and
            // replace the entry (the old directory is wiped below).
            SessionPhase::Aborted => {}
        }
    } else {
        // Not in the registry map: a directory holding chunks (a
        // manifest, or a compacted tier) is durable data from an earlier
        // run that recovery did not claim — refuse rather than silently
        // wipe it.
        let prior_data = dir.is_dir()
            && (dir.join(MANIFEST_FILE).exists()
                || dir.join("sorted").is_dir()
                || dir.join("rollup").is_dir()
                || list_chunk_files(&dir).is_ok_and(|files| !files.is_empty()));
        if prior_data {
            return Err((
                ErrorCode::SessionExists,
                format!("session {name:?} has durable data from a previous daemon run"),
            ));
        }
    }
    let store =
        ChunkStore::create(&dir, &daemon.config).map_err(|e| (ErrorCode::Io, e.to_string()))?;
    let epoch = daemon.next_epoch.fetch_add(1, Ordering::SeqCst);
    let record = SessionRecord {
        epoch,
        status: SessionStatus::Active,
        acked_chunks: 0,
        tier: StorageTier::Raw,
    };
    record.write(&dir).map_err(|e| (ErrorCode::Io, e.to_string()))?;
    let id = daemon.next_session_id.fetch_add(1, Ordering::SeqCst);
    let new = Arc::new(Session {
        name: name.to_string(),
        id,
        epoch,
        dir,
        state: Mutex::new(SessionState {
            store: Some(store),
            apply_tx: None,
            apply_thread: None,
            apply_error: None,
            chunks: 0,
            events: 0,
            recv_seq: 0,
            finished: false,
            abort: None,
            tier: StorageTier::Raw,
            attached: Some(conn_id),
            last_frame: Instant::now(),
        }),
        live: Mutex::new(LiveState::new()),
        progress: std::sync::Mutex::new(ApplyProgress::default()),
        applied: std::sync::Condvar::new(),
    });
    if pipelined(daemon) {
        let mut state = new.state.lock();
        start_apply_pipeline(&new, &mut state, writer);
    }
    sessions.insert(name.to_string(), new.clone());
    drop(sessions);
    *session = Some(new);
    let ack =
        HelloAck { session_id: id, credits: daemon.config.credits.max(1), epoch, acked_chunks: 0 };
    write_frame(&mut *writer.lock(), kind::HELLO_ACK, &ack.encode()).map_err(io_err)?;
    Ok(())
}

fn handle_hello_resume(
    daemon: &Daemon,
    writer: &SharedWriter,
    session: &mut Option<Arc<Session>>,
    conn_id: u64,
    name: &str,
    epoch: u64,
) -> Result<(), ConnError> {
    let existing = daemon
        .sessions
        .lock()
        .get(name)
        .cloned()
        .ok_or((ErrorCode::UnknownTarget, format!("no session {name:?} to resume")))?;
    let acked = {
        let mut state = existing.state.lock();
        if state.finished {
            // The finish committed before the client lost the connection:
            // the typed answer a retrying `finish` treats as success.
            return Err((ErrorCode::SessionExists, format!("session {name:?} already finished")));
        }
        if let Some((_, message)) = &state.abort {
            return Err((ErrorCode::SessionAborted, message.clone()));
        }
        if existing.epoch != epoch {
            return Err((
                ErrorCode::EpochMismatch,
                format!(
                    "session {name:?} is at epoch {} (resume asked for {epoch})",
                    existing.epoch
                ),
            ));
        }
        if state.attached.is_some() {
            return Err((
                ErrorCode::SessionActive,
                format!("session {name:?} is already attached to a connection"),
            ));
        }
        state.attached = Some(conn_id);
        state.last_frame = Instant::now();
        // Detached invariant: queue drained at detach, so the durable
        // count is the wire watermark the client replays from.
        state.recv_seq = state.chunks;
        if pipelined(daemon) && state.apply_thread.is_none() {
            start_apply_pipeline(&existing, &mut state, writer);
        }
        state.chunks
    };
    *session = Some(existing.clone());
    let ack = HelloAck {
        session_id: existing.id,
        credits: daemon.config.credits.max(1),
        epoch,
        acked_chunks: acked,
    };
    write_frame(&mut *writer.lock(), kind::HELLO_ACK, &ack.encode()).map_err(io_err)?;
    Ok(())
}

fn handle_chunk(
    writer: &SharedWriter,
    session: Option<&Session>,
    mut payload: Vec<u8>,
) -> Result<(), ConnError> {
    let session = session.ok_or((ErrorCode::Protocol, "CHUNK before HELLO".to_string()))?;
    let Some((seq_bytes, _)) = payload.split_first_chunk::<8>() else {
        return Err((ErrorCode::Protocol, "CHUNK missing sequence number".into()));
    };
    let seq = u64::from_be_bytes(*seq_bytes);
    payload.drain(..8);
    // The payload is a codec-v3 chunk: decode validates everything —
    // framing, varints, string ids, the footer cross-check — before a
    // single event enters the session.
    let cols = decode_columns(&payload).map_err(|e| (ErrorCode::CorruptChunk, e.to_string()))?;
    let apply_tx = {
        let mut state = session.state.lock();
        if let Some(err) = &state.apply_error {
            return Err(err.clone());
        }
        if let Some((code, message)) = &state.abort {
            return Err((*code, message.clone()));
        }
        if state.apply_tx.is_none() && state.store.is_none() {
            return Err((ErrorCode::Protocol, "CHUNK after FINISH".into()));
        }
        if seq < state.recv_seq {
            // Replay overlap after a reconnect race: the chunk is already
            // durable — ack without re-applying (exactly-once).
            drop(state);
            return send_chunk_ack(writer, seq, 0).map_err(io_err);
        }
        if seq > state.recv_seq {
            return Err((
                ErrorCode::Protocol,
                format!("chunk sequence gap: got {seq}, expected {}", state.recv_seq),
            ));
        }
        state.recv_seq += 1;
        state.apply_tx.clone()
    };
    match apply_tx {
        Some(apply_tx) => {
            // Count the chunk as enqueued before sending, so the flush
            // barrier can never observe a sent-but-uncounted chunk; the
            // bounded send then blocks (backpressure) when the apply
            // stage lags. The ack is the apply thread's to write, after
            // the persist.
            session.progress.lock().unwrap_or_else(|e| e.into_inner()).enqueued += 1;
            if apply_tx.send((seq, payload, cols)).is_err() {
                // The chunk will never apply; count it resolved so
                // barriers taken against the bumped `enqueued` cannot
                // wait forever.
                let mut progress = session.progress.lock().unwrap_or_else(|e| e.into_inner());
                progress.applied += 1;
                session.applied.notify_all();
                return Err((ErrorCode::Io, "session apply stage is gone".into()));
            }
        }
        // Single-core inline mode: apply synchronously, ack after.
        None => {
            let accepted = cols.len() as u32;
            session.apply_chunk(&payload, &cols)?;
            send_chunk_ack(writer, seq, accepted).map_err(io_err)?;
        }
    }
    Ok(())
}

fn handle_finish(writer: &SharedWriter, session: Option<&Session>) -> Result<(), ConnError> {
    let session = session.ok_or((ErrorCode::Protocol, "FINISH before HELLO".to_string()))?;
    // Drain and stop the apply stage first, so every accepted chunk has
    // reached the writer (and been acked) before the manifest is cut.
    session.stop_apply_thread();
    let (chunks, events) = {
        let mut state = session.state.lock();
        if let Some(err) = state.apply_error.take() {
            // The connection loop aborts the session with this error on
            // its way out.
            return Err(err);
        }
        if let Some((code, message)) = &state.abort {
            return Err((*code, message.clone()));
        }
        let mut store =
            state.store.take().ok_or((ErrorCode::Protocol, "second FINISH".to_string()))?;
        store.finish().map_err(|e| (ErrorCode::Io, e.to_string()))?;
        state.finished = true;
        state.attached = None;
        let record = SessionRecord {
            epoch: session.epoch,
            status: SessionStatus::Finished,
            acked_chunks: state.chunks,
            tier: StorageTier::Raw,
        };
        let _ = record.write(&session.dir);
        (state.chunks, state.events)
    };
    // Finished queries route to the chunk directory (full query
    // surface, manifest pushdown, result cache) — release the live
    // sweep memory.
    *session.live.lock() = LiveState::new();
    let mut ack = chunks.to_be_bytes().to_vec();
    ack.extend_from_slice(&events.to_be_bytes());
    write_frame(&mut *writer.lock(), kind::FINISH_ACK, &ack).map_err(io_err)?;
    Ok(())
}

fn handle_query(daemon: &Daemon, writer: &SharedWriter, payload: &[u8]) -> Result<(), ConnError> {
    let spec = QuerySpec::decode(payload).map_err(|e| (ErrorCode::Protocol, e.to_string()))?;
    let reply = run_query(daemon, &spec)?;
    write_frame(&mut *writer.lock(), kind::QUERY_OK, &reply.encode()).map_err(io_err)?;
    Ok(())
}

fn run_query(daemon: &Daemon, spec: &QuerySpec) -> Result<QueryReply, ConnError> {
    match &spec.target {
        QueryTarget::Session(name) => {
            let session = daemon
                .sessions
                .lock()
                .get(name)
                .cloned()
                .ok_or((ErrorCode::UnknownTarget, format!("no session {name:?}")))?;
            // Flush barrier: wait until everything enqueued before the
            // query is applied, so the snapshot covers every chunk
            // acked to any producer so far.
            session.flush_applies();
            let live_snapshot = {
                // State first, live nested — the one sanctioned nesting
                // (see the Session lock-order note): checking the phase
                // and snapshotting must be atomic against a concurrent
                // finish or abort resetting the live state.
                let state = session.state.lock();
                if let Some(err) = &state.apply_error {
                    return Err(err.clone());
                }
                if state.finished {
                    None
                } else if let Some((code, message)) = &state.abort {
                    if state.store.is_none() {
                        // Finalized abort: the directory holds exactly the
                        // durable acked prefix — queryable as such.
                        None
                    } else {
                        // Abort latched but not yet finalized: refusing is
                        // the "never a query over a non-acked prefix"
                        // guarantee.
                        return Err((*code, message.clone()));
                    }
                } else {
                    let live = session.live.lock();
                    let events_observed = live.events_observed();
                    let key = (session.name.clone(), session.epoch, events_observed, spec.encode());
                    if let Some(json) = daemon.live_cache.lock().get(&key) {
                        return Ok(QueryReply {
                            live: true,
                            cache_hit: true,
                            events_observed,
                            canonical_json: json,
                        });
                    }
                    Some((events_observed, key, live.snapshot()))
                }
            };
            match live_snapshot {
                Some((events_observed, key, tables)) => {
                    let analysis = apply_spec(Analysis::of_live(&tables), spec);
                    let json = analysis.canonical_json().map_err(analysis_err)?;
                    daemon.live_cache.lock().insert(key, json.clone());
                    Ok(QueryReply {
                        live: true,
                        cache_hit: false,
                        events_observed,
                        canonical_json: json,
                    })
                }
                None => tiered_query(daemon, &session, spec),
            }
        }
        QueryTarget::Dir(path) => {
            let dir = PathBuf::from(path);
            if !dir.is_dir() {
                return Err((ErrorCode::UnknownTarget, format!("no chunk directory {path:?}")));
            }
            dir_query(daemon, &dir, spec)
        }
        // A QUERY reply carries one canonical-JSON table; the all-sessions
        // answer is per-session groups, which only a QUERY_ALL_OK can carry.
        QueryTarget::AllSessions => Err((
            ErrorCode::UnsupportedQuery,
            "the all-sessions target must be sent as a QUERY_ALL frame".into(),
        )),
    }
}

fn handle_list_sessions(daemon: &Daemon, writer: &SharedWriter) -> Result<(), ConnError> {
    let mut sessions: Vec<Arc<Session>> = daemon.sessions.lock().values().cloned().collect();
    sessions.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = Vec::with_capacity(sessions.len());
    for session in sessions {
        let state = session.state.lock();
        let live = !state.finished && state.abort.is_none();
        // Events ingested this daemon run; a finished directory recovered
        // from disk reports its manifest-counted total at query time, not
        // here — the listing stays O(sessions).
        let events = if live {
            drop(state);
            session.flush_applies();
            session.live.lock().events_observed()
        } else {
            state.events
        };
        out.push(SessionInfo { name: session.name.clone(), live, events });
    }
    let reply = SessionList { sessions: out };
    write_frame(&mut *writer.lock(), kind::SESSIONS, &reply.encode()).map_err(io_err)?;
    Ok(())
}

fn handle_query_all(
    daemon: &Daemon,
    writer: &SharedWriter,
    payload: &[u8],
) -> Result<(), ConnError> {
    let spec = QuerySpec::decode(payload).map_err(|e| (ErrorCode::Protocol, e.to_string()))?;
    let reply = run_query_all(daemon, &spec)?;
    write_frame(&mut *writer.lock(), kind::QUERY_ALL_OK, &reply.encode()).map_err(io_err)?;
    Ok(())
}

/// What one session contributes to a cross-session query: its finished
/// (or abort-finalized) directory at whichever tier it lives, or an
/// owned live snapshot.
enum SessionSnapshot {
    Dir(PathBuf),
    Rollup(PathBuf),
    Live(LiveTables),
}

/// The snapshot a finalized session contributes, per its storage tier.
fn tier_snapshot(session: &Session, tier: StorageTier) -> SessionSnapshot {
    match tier {
        StorageTier::Raw => SessionSnapshot::Dir(session.dir.clone()),
        StorageTier::Sorted => {
            SessionSnapshot::Dir(session.dir.join(tier.subdir().unwrap_or_default()))
        }
        StorageTier::Rollup => {
            SessionSnapshot::Rollup(session.dir.join(tier.subdir().unwrap_or_default()))
        }
    }
}

/// Runs one query across every session the daemon holds, composed
/// through [`Analysis::of_sessions`]. Live sessions contribute a
/// consistent acked-prefix snapshot (same flush barrier and lock
/// discipline as a single-session query); finished and abort-finalized
/// sessions contribute their chunk directories. Results are not cached:
/// the answer covers every live prefix at once, so any ingest anywhere
/// invalidates it.
fn run_query_all(daemon: &Daemon, spec: &QuerySpec) -> Result<QueryAllReply, ConnError> {
    if spec.target != QueryTarget::AllSessions {
        return Err((ErrorCode::Protocol, "QUERY_ALL frames take the all-sessions target".into()));
    }
    let mut sessions: Vec<Arc<Session>> = daemon.sessions.lock().values().cloned().collect();
    sessions.sort_by(|a, b| a.name.cmp(&b.name));
    let mut any_live = false;
    let mut events_observed = 0u64;
    let mut names = Vec::with_capacity(sessions.len());
    let mut snapshots: Vec<(Arc<str>, SessionSnapshot)> = Vec::with_capacity(sessions.len());
    for session in &sessions {
        session.flush_applies();
        let snapshot = {
            let state = session.state.lock();
            if let Some(err) = &state.apply_error {
                return Err(err.clone());
            }
            if state.finished {
                tier_snapshot(session, state.tier)
            } else if let Some((code, message)) = &state.abort {
                if state.store.is_none() {
                    // Finalized abort: the directory holds exactly the
                    // durable acked prefix.
                    SessionSnapshot::Dir(session.dir.clone())
                } else {
                    // In-limbo abort poisons the rollup, same as it
                    // refuses a single-session query.
                    return Err((*code, format!("session {:?}: {message}", session.name)));
                }
            } else {
                let live = session.live.lock();
                events_observed += live.events_observed();
                any_live = true;
                SessionSnapshot::Live(live.snapshot())
            }
        };
        match &snapshot {
            SessionSnapshot::Dir(dir) => {
                let manifest = Manifest::open(dir).map_err(|e| (ErrorCode::Io, e.to_string()))?;
                events_observed += manifest.total_events();
            }
            SessionSnapshot::Rollup(dir) => {
                let rollup = Rollup::open(dir).map_err(|e| (ErrorCode::Io, e.to_string()))?;
                events_observed += rollup.total_events();
            }
            SessionSnapshot::Live(_) => {}
        }
        names.push(session.name.clone());
        snapshots.push((Arc::from(session.name.as_str()), snapshot));
    }
    let sources: Vec<(Arc<str>, SessionSource<'_>)> = snapshots
        .iter()
        .map(|(name, snapshot)| {
            let source = match snapshot {
                SessionSnapshot::Dir(dir) => SessionSource::ChunkDir(dir.clone()),
                SessionSnapshot::Rollup(dir) => SessionSource::RollupDir(dir.clone()),
                SessionSnapshot::Live(tables) => SessionSource::Live(tables),
            };
            (name.clone(), source)
        })
        .collect();
    let analysis = apply_spec(Analysis::of_sessions(sources), spec);
    let groups = analysis.tables().map_err(analysis_err)?;
    Ok(QueryAllReply { live: any_live, events_observed, sessions: names, groups })
}

/// Routes a finalized session's query to its current storage tier.
/// The tier is read under the state lock but the query runs without
/// it, so a concurrent tier transition can delete the files mid-read;
/// in that case the failed read is retried at the session's new tier
/// (the tier only moves forward, so this terminates).
fn tiered_query(
    daemon: &Daemon,
    session: &Session,
    spec: &QuerySpec,
) -> Result<QueryReply, ConnError> {
    let mut tier = session.state.lock().tier;
    loop {
        let dir = match tier.subdir() {
            None => session.dir.clone(),
            Some(sub) => session.dir.join(sub),
        };
        let result = match tier {
            StorageTier::Raw | StorageTier::Sorted => dir_query(daemon, &dir, spec),
            StorageTier::Rollup => rollup_query(daemon, &dir, spec),
        };
        match result {
            Err((ErrorCode::Io, _)) => {
                let now = session.state.lock().tier;
                if now > tier {
                    tier = now;
                    continue;
                }
                return result;
            }
            other => return other,
        }
    }
}

/// Rollup-tier query: answers from the pre-aggregated segment
/// summaries via [`Analysis::from_rollup_dir`] — no raw events are
/// decoded — fronted by the same checksum-keyed result cache as
/// directory queries (the rollup index checksum plays the manifest
/// checksum's role). Queries needing raw resolution come back as
/// typed [`ErrorCode::UnsupportedQuery`] straight from the analysis
/// layer.
fn rollup_query(daemon: &Daemon, dir: &Path, spec: &QuerySpec) -> Result<QueryReply, ConnError> {
    let rollup = Rollup::open(dir).map_err(|e| (ErrorCode::Io, e.to_string()))?;
    let checksum = rollup.checksum();
    let events = rollup.total_events();
    let key = (dir.to_string_lossy().into_owned(), spec.encode());
    if let Some(cached) = daemon.cache.lock().get(&key) {
        if cached.checksum == checksum {
            return Ok(QueryReply {
                live: false,
                cache_hit: true,
                events_observed: cached.events,
                canonical_json: cached.json,
            });
        }
    }
    let analysis = apply_spec(Analysis::from_rollup_dir(dir), spec);
    let json = analysis.canonical_json().map_err(analysis_err)?;
    daemon.cache.lock().insert(key, CachedResult { checksum, events, json: json.clone() });
    Ok(QueryReply { live: false, cache_hit: false, events_observed: events, canonical_json: json })
}

/// Finished-directory query: manifest pushdown via
/// [`Analysis::from_chunk_dir`], fronted by the checksum-keyed cache.
fn dir_query(daemon: &Daemon, dir: &Path, spec: &QuerySpec) -> Result<QueryReply, ConnError> {
    let manifest = Manifest::open(dir).map_err(|e| (ErrorCode::Io, e.to_string()))?;
    let checksum = manifest.checksum();
    let key = (dir.to_string_lossy().into_owned(), spec.encode());
    if let Some(cached) = daemon.cache.lock().get(&key) {
        if cached.checksum == checksum {
            return Ok(QueryReply {
                live: false,
                cache_hit: true,
                events_observed: cached.events,
                canonical_json: cached.json,
            });
        }
    }
    let analysis = apply_spec(Analysis::from_chunk_dir(dir), spec);
    let json = analysis.canonical_json().map_err(analysis_err)?;
    let events = manifest.total_events();
    daemon.cache.lock().insert(key, CachedResult { checksum, events, json: json.clone() });
    Ok(QueryReply { live: false, cache_hit: false, events_observed: events, canonical_json: json })
}

/// Applies a wire query spec to an [`Analysis`] builder.
fn apply_spec<'a>(mut analysis: Analysis<'a>, spec: &'a QuerySpec) -> Analysis<'a> {
    if let Some(phase) = &spec.phase {
        analysis = analysis.phase(phase);
    }
    if let Some(pid) = spec.process {
        analysis = analysis.process(ProcessId(pid));
    }
    if let Some(op) = &spec.operation {
        analysis = analysis.operation(op);
    }
    if let Some((lo, hi)) = spec.window {
        analysis = analysis.time_window(TimeNs::from_nanos(lo), TimeNs::from_nanos(hi));
    }
    analysis.group_by(spec.dims.iter().copied())
}

fn io_err(e: TraceIoError) -> ConnError {
    (ErrorCode::Io, e.to_string())
}

fn analysis_err(e: AnalysisError) -> ConnError {
    match e {
        AnalysisError::Unsupported(msg) => (ErrorCode::UnsupportedQuery, msg),
        AnalysisError::Io(e) => (ErrorCode::Io, e.to_string()),
    }
}
