//! The collector daemon: socket accept loop, per-session ingest, live
//! and finished-dir query execution, and the keyed result cache.

use crate::protocol::{
    encode_error, kind, CollectorError, ErrorCode, QueryReply, QuerySpec, QueryTarget,
    PROTOCOL_VERSION,
};
use parking_lot::Mutex;
use rlscope_core::analysis::{Analysis, AnalysisError, LiveState};
use rlscope_core::event::Event;
use rlscope_core::store::{
    compute_footer, decode_events, list_chunk_files, read_chunk_footer, read_frame,
    upgrade_chunk_dir, write_frame, Manifest, ManifestEntry, ManifestUpgrade, TraceIoError,
    MANIFEST_FILE,
};
use rlscope_sim::ids::ProcessId;
use rlscope_sim::time::TimeNs;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::fs;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Unix-domain socket path to listen on (created at bind, removed at
    /// shutdown; a stale file from a dead daemon is replaced).
    pub socket: PathBuf,
    /// Directory under which each session gets its chunk directory.
    /// Session chunk files are the client's flush batches persisted
    /// verbatim (see [`Collector`]'s session store), so chunk
    /// granularity is chosen client-side.
    pub data_dir: PathBuf,
    /// Credit window granted to each session connection (max unacked
    /// `CHUNK` frames in flight — the explicit backpressure bound).
    pub credits: u32,
    /// Finished-target query results cached (FIFO eviction).
    pub cache_capacity: usize,
    /// Force the decode→apply pipeline on (`Some(true)`) or off
    /// (`Some(false)`); `None` picks by available parallelism — a
    /// dedicated apply thread per session only pays when there is a core
    /// for it.
    pub apply_pipeline: Option<bool>,
}

impl CollectorConfig {
    /// A config with default tuning (8 credits, 256 cached results).
    pub fn new(socket: impl Into<PathBuf>, data_dir: impl Into<PathBuf>) -> Self {
        CollectorConfig {
            socket: socket.into(),
            data_dir: data_dir.into(),
            credits: 8,
            cache_capacity: 256,
            apply_pipeline: None,
        }
    }
}

/// One profiling session's server-side state.
///
/// Ingest is a two-stage pipeline per session: the connection thread
/// decodes and validates each chunk, then hands the decoded events to
/// the session's **apply thread** over a bounded channel (the bounded
/// per-connection buffer — at most [`APPLY_QUEUE_CHUNKS`] decoded chunks
/// in flight). The apply thread pushes them into the live sweeps and
/// the chunk store, so decode overlaps sweeping and single-session
/// ingest is not serialized on the sum of both costs. (On single-core
/// hosts the pipeline is skipped and chunks apply inline — same
/// [`Session::apply_chunk`] path, no context-switch tax.)
///
/// Chunks apply atomically — the whole-chunk sweep push under the
/// `live` lock, then counters and the verbatim persist under the
/// `state` lock — and live snapshots run **after** a flush barrier
/// (queries wait until every chunk enqueued before them has applied).
/// That is what makes a live query a *consistent prefix*: it observes
/// whole chunks, in order, including every chunk the querying client
/// has been acked.
struct Session {
    name: String,
    dir: PathBuf,
    state: Mutex<SessionState>,
    /// The live sweeps, under their own lock so a whole-chunk sweep push
    /// never blocks the connection thread's (short) state accesses —
    /// only the apply thread and snapshots touch it. Lock order: `state`
    /// may be held while taking `live`, never the reverse.
    live: Mutex<LiveState>,
    /// Monotonic enqueue/apply counters driving the flush barrier. (std
    /// primitives: the vendored parking_lot stub has no Condvar.)
    progress: std::sync::Mutex<ApplyProgress>,
    applied: std::sync::Condvar,
}

/// Monotonic pipeline counters: `enqueued` advances when the connection
/// thread hands a chunk to the apply stage, `applied` when the apply
/// stage resolves it (applied, or discarded after a failure — the
/// counters must stay reconciled so barriers never wait forever).
#[derive(Debug, Default, Clone, Copy)]
struct ApplyProgress {
    enqueued: u64,
    applied: u64,
}

/// Decoded chunks the apply queue may hold — the bound on per-session
/// in-flight memory between decode and apply.
const APPLY_QUEUE_CHUNKS: usize = 8;

/// The session's durable half: received chunk payloads are persisted
/// **verbatim** — they are codec-v3 chunks, already validated end to end
/// by the ingest decode — so the collector never re-encodes a byte, and
/// the on-disk directory is exactly what a [`TraceWriter`] run would
/// leave behind (`chunk_NNNNN.rls` files plus a `MANIFEST` at finish,
/// with chunk granularity set by the client's flush batches).
///
/// [`TraceWriter`]: rlscope_core::store::TraceWriter
struct ChunkStore {
    dir: PathBuf,
    entries: Vec<ManifestEntry>,
    seq: u32,
}

impl ChunkStore {
    /// Creates the session directory, clearing stale chunks and any old
    /// `MANIFEST` (same reused-directory semantics as
    /// `TraceWriter::create`).
    fn create(dir: &Path) -> Result<ChunkStore, TraceIoError> {
        fs::create_dir_all(dir)?;
        for stale in list_chunk_files(dir)? {
            fs::remove_file(stale)?;
        }
        let manifest = dir.join(MANIFEST_FILE);
        if manifest.exists() {
            fs::remove_file(&manifest)?;
        }
        Ok(ChunkStore { dir: dir.to_path_buf(), entries: Vec::new(), seq: 0 })
    }

    /// Persists one validated chunk payload verbatim and indexes its
    /// footer (parsed from the v3 trailer; computed from the decoded
    /// events for v1-fallback payloads, whose wire format carries none).
    fn append(&mut self, payload: &[u8], events: &[Event]) -> Result<(), TraceIoError> {
        let file = format!("chunk_{:05}.rls", self.seq);
        fs::write(self.dir.join(&file), payload)?;
        self.seq += 1;
        let footer = match read_chunk_footer(payload)? {
            Some(footer) => footer,
            None => compute_footer(events),
        };
        self.entries.push(ManifestEntry { file, size: payload.len() as u64, footer });
        Ok(())
    }

    /// Writes the manifest; the directory is then fully query-ready
    /// (pushdown included) without any scan.
    fn finish(&mut self) -> Result<(), TraceIoError> {
        Manifest::from_entries(&self.dir, std::mem::take(&mut self.entries)).write()
    }
}

struct SessionState {
    /// `Some` while the session accepts chunks; taken at finish (which
    /// writes the manifest) and flushed best-effort on abort.
    store: Option<ChunkStore>,
    /// Decoded-chunk channel into the apply thread; dropped at finish or
    /// abort so the thread drains and exits.
    apply_tx: Option<crossbeam::channel::Sender<(Vec<u8>, Vec<Event>)>>,
    apply_thread: Option<JoinHandle<()>>,
    /// First apply-stage failure; poisons the session (reported, with
    /// its error class, on the next chunk, query, or finish).
    apply_error: Option<(ErrorCode, String)>,
    chunks: u64,
    events: u64,
    finished: bool,
    aborted: bool,
}

impl Session {
    /// Applies one validated chunk: live sweeps, then counters and the
    /// verbatim persist — the single code path both the pipelined apply
    /// thread and the single-core inline mode run. Sweep rejections are
    /// client-data problems ([`ErrorCode::Protocol`]); store failures
    /// are server-side [`ErrorCode::Io`].
    fn apply_chunk(&self, payload: &[u8], events: &[Event]) -> Result<(), ConnError> {
        {
            let mut live = self.live.lock();
            live.push_batch(events).map_err(|e| (ErrorCode::Protocol, e.to_string()))?;
        }
        let mut state = self.state.lock();
        if let Some(store) = &mut state.store {
            store.append(payload, events).map_err(|e| (ErrorCode::Io, e.to_string()))?;
            state.events += events.len() as u64;
            state.chunks += 1;
        }
        Ok(())
    }

    /// Blocks until every chunk enqueued **before this call** has been
    /// applied — the barrier before any live snapshot. Deliberately not
    /// "wait for an empty queue": under sustained ingest a saturated
    /// pipeline may never drain, and a query only needs the chunks its
    /// sender was acked, all of which were enqueued before the query
    /// frame was read.
    fn flush_applies(&self) {
        let mut progress = self.progress.lock().unwrap_or_else(|e| e.into_inner());
        let target = progress.enqueued;
        while progress.applied < target {
            progress = self.applied.wait(progress).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops the apply thread (drains the queue first) — finish and
    /// abort both funnel through here.
    fn stop_apply_thread(&self) {
        let (tx, thread) = {
            let mut state = self.state.lock();
            (state.apply_tx.take(), state.apply_thread.take())
        };
        drop(tx);
        if let Some(thread) = thread {
            let _ = thread.join();
        }
    }
}

struct CachedResult {
    checksum: u64,
    events: u64,
    json: String,
}

/// Finished-target query results keyed by `(target dir, query bytes)`,
/// invalidated by manifest checksum, FIFO-evicted at capacity.
struct QueryCache {
    map: HashMap<(String, Vec<u8>), CachedResult>,
    order: VecDeque<(String, Vec<u8>)>,
    capacity: usize,
}

impl QueryCache {
    fn new(capacity: usize) -> Self {
        QueryCache { map: HashMap::new(), order: VecDeque::new(), capacity: capacity.max(1) }
    }

    fn get(&self, key: &(String, Vec<u8>), checksum: u64) -> Option<(u64, String)> {
        self.map.get(key).filter(|c| c.checksum == checksum).map(|c| (c.events, c.json.clone()))
    }

    fn insert(&mut self, key: (String, Vec<u8>), value: CachedResult) {
        if !self.map.contains_key(&key) {
            self.order.push_back(key.clone());
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
        self.map.insert(key, value);
    }
}

struct Daemon {
    config: CollectorConfig,
    sessions: Mutex<HashMap<String, Arc<Session>>>,
    cache: Mutex<QueryCache>,
    next_session_id: AtomicU64,
    next_conn_id: AtomicU64,
    shutdown: AtomicBool,
    /// Clones of live connection streams, keyed by connection id
    /// (handlers deregister themselves on exit); shut down to unblock
    /// handler threads at daemon shutdown.
    conn_streams: Mutex<HashMap<u64, UnixStream>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// The collector daemon (the library form of the `rlscoped` binary):
/// binds a Unix-domain socket, serves session and query connections on
/// per-connection threads, and shuts down cleanly on drop. See the
/// [crate docs](crate) for the protocol.
pub struct Collector {
    daemon: Arc<Daemon>,
    accept_thread: Option<JoinHandle<()>>,
    upgraded: Vec<(PathBuf, ManifestUpgrade)>,
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("socket", &self.daemon.config.socket)
            .field("data_dir", &self.daemon.config.data_dir)
            .finish_non_exhaustive()
    }
}

impl Collector {
    /// Binds the socket and starts serving.
    ///
    /// Creates the data directory, replaces a stale socket file, and —
    /// before accepting any connection — runs the one-shot
    /// [`upgrade_chunk_dir`] pass over every existing session directory,
    /// so finished sessions from previous daemon runs answer their first
    /// filtered query from a manifest instead of a full scan
    /// ([`Collector::upgraded_dirs`] reports what was rebuilt).
    ///
    /// # Errors
    ///
    /// Filesystem or socket errors. Per-directory upgrade failures are
    /// skipped, not fatal — a corrupt old session must not keep the
    /// daemon from starting.
    pub fn bind(config: CollectorConfig) -> Result<Collector, CollectorError> {
        fs::create_dir_all(&config.data_dir).map_err(rlscope_core::store::TraceIoError::from)?;
        let mut upgraded = Vec::new();
        if let Ok(entries) = fs::read_dir(&config.data_dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                let has_chunks =
                    path.is_dir() && list_chunk_files(&path).is_ok_and(|f| !f.is_empty());
                if !has_chunks {
                    continue;
                }
                if let Ok(outcome) = upgrade_chunk_dir(&path) {
                    if outcome.rebuilt {
                        upgraded.push((path, outcome));
                    }
                }
            }
        }
        if config.socket.exists() {
            fs::remove_file(&config.socket).map_err(rlscope_core::store::TraceIoError::from)?;
        }
        let listener =
            UnixListener::bind(&config.socket).map_err(rlscope_core::store::TraceIoError::from)?;
        let cache = QueryCache::new(config.cache_capacity);
        let daemon = Arc::new(Daemon {
            config,
            sessions: Mutex::new(HashMap::new()),
            cache: Mutex::new(cache),
            next_session_id: AtomicU64::new(1),
            next_conn_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            conn_streams: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
        });
        let accept_daemon = daemon.clone();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_daemon.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_id = accept_daemon.next_conn_id.fetch_add(1, Ordering::SeqCst);
                if let Ok(clone) = stream.try_clone() {
                    accept_daemon.conn_streams.lock().insert(conn_id, clone);
                }
                let conn_daemon = accept_daemon.clone();
                let handle = std::thread::spawn(move || {
                    handle_connection(&conn_daemon, stream);
                    conn_daemon.conn_streams.lock().remove(&conn_id);
                });
                let mut threads = accept_daemon.conn_threads.lock();
                threads.retain(|h| !h.is_finished());
                threads.push(handle);
            }
        });
        Ok(Collector { daemon, accept_thread: Some(accept_thread), upgraded })
    }

    /// The socket path clients connect to.
    pub fn socket(&self) -> &Path {
        &self.daemon.config.socket
    }

    /// Legacy session directories whose manifest the startup upgrade
    /// pass rebuilt.
    pub fn upgraded_dirs(&self) -> &[(PathBuf, ManifestUpgrade)] {
        &self.upgraded
    }

    /// Session names currently registered, with their finished flag.
    pub fn sessions(&self) -> Vec<(String, bool)> {
        self.daemon
            .sessions
            .lock()
            .values()
            .map(|s| (s.name.clone(), s.state.lock().finished))
            .collect()
    }

    /// Stops accepting, disconnects live connections, joins all threads,
    /// and removes the socket file. Sessions still streaming are marked
    /// aborted (their data so far stays on disk).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.daemon.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = UnixStream::connect(&self.daemon.config.socket);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for (_, stream) in self.daemon.conn_streams.lock().drain() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        let handles: Vec<_> = self.daemon.conn_threads.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        let _ = fs::remove_file(&self.daemon.config.socket);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Blocks serving until the process is killed — the `rlscoped` binary's
/// main loop.
pub fn serve_forever(collector: Collector) -> ! {
    let _collector = collector;
    loop {
        std::thread::park();
    }
}

type ConnError = (ErrorCode, String);

fn send_error(stream: &mut UnixStream, code: ErrorCode, message: &str) {
    let _ = write_frame(stream, kind::ERROR, &encode_error(code, message));
}

fn handle_connection(daemon: &Daemon, mut stream: UnixStream) {
    let mut session: Option<Arc<Session>> = None;
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // clean EOF at a frame boundary
            Err(e) => {
                send_error(&mut stream, ErrorCode::Protocol, &e.to_string());
                break;
            }
        };
        let outcome: Result<(), ConnError> = match frame.0 {
            kind::HELLO => handle_hello(daemon, &mut stream, &mut session, &frame.1),
            kind::CHUNK => handle_chunk(&mut stream, session.as_deref(), frame.1),
            kind::FINISH => {
                let result = handle_finish(&mut stream, session.as_deref());
                if result.is_ok() {
                    session = None; // clean finish: nothing to abort
                }
                result
            }
            kind::QUERY => handle_query(daemon, &mut stream, &frame.1),
            other => Err((ErrorCode::Protocol, format!("unexpected frame kind {other:#04x}"))),
        };
        if let Err((code, message)) = outcome {
            send_error(&mut stream, code, &message);
            break;
        }
    }
    // Any path out of the loop with a session still open — truncated
    // stream, protocol error, daemon shutdown — aborts it: the data so
    // far stays queryable, but it is never reported finished.
    if let Some(session) = session {
        session.stop_apply_thread();
        let mut state = session.state.lock();
        if !state.finished {
            state.aborted = true;
            // Best-effort manifest for the partial directory, so the
            // chunks that did land stay analyzable without a scan.
            if let Some(mut store) = state.store.take() {
                let _ = store.finish();
            }
        }
    }
}

fn valid_session_name(name: &str) -> bool {
    (1..=64).contains(&name.len())
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
        && !name.bytes().all(|b| b == b'.')
}

fn handle_hello(
    daemon: &Daemon,
    stream: &mut UnixStream,
    session: &mut Option<Arc<Session>>,
    payload: &[u8],
) -> Result<(), ConnError> {
    if session.is_some() {
        return Err((ErrorCode::Protocol, "second HELLO on one connection".into()));
    }
    if payload.len() < 6 {
        return Err((ErrorCode::Protocol, "truncated HELLO".into()));
    }
    let version = u32::from_be_bytes(payload[..4].try_into().expect("4-byte slice"));
    if version != PROTOCOL_VERSION {
        return Err((
            ErrorCode::Version,
            format!("protocol version {version} unsupported (server speaks {PROTOCOL_VERSION})"),
        ));
    }
    let name_len = u16::from_be_bytes([payload[4], payload[5]]) as usize;
    if payload.len() != 6 + name_len {
        return Err((ErrorCode::Protocol, "HELLO length mismatch".into()));
    }
    let Ok(name) = std::str::from_utf8(&payload[6..]) else {
        return Err((ErrorCode::BadSessionName, "non-utf8 session name".into()));
    };
    if !valid_session_name(name) {
        return Err((
            ErrorCode::BadSessionName,
            format!("bad session name {name:?} (want [A-Za-z0-9_.-]{{1,64}})"),
        ));
    }
    let dir = daemon.config.data_dir.join(name);
    let mut sessions = daemon.sessions.lock();
    if sessions.contains_key(name) {
        return Err((ErrorCode::SessionExists, format!("session {name:?} already exists")));
    }
    // The registry dedupes names only within this daemon's lifetime; a
    // directory holding chunks (or a manifest) is durable data from an
    // earlier run — refuse rather than silently wipe it. Pick a fresh
    // name, or query the old data via a Dir-target query.
    let prior_data = dir.is_dir()
        && (dir.join(MANIFEST_FILE).exists()
            || list_chunk_files(&dir).is_ok_and(|files| !files.is_empty()));
    if prior_data {
        return Err((
            ErrorCode::SessionExists,
            format!("session {name:?} has durable data from a previous daemon run"),
        ));
    }
    let store = ChunkStore::create(&dir).map_err(|e| (ErrorCode::Io, e.to_string()))?;
    // Decode→apply pipelining only pays when there is a core to run the
    // apply stage on; on a single-CPU host the extra thread is pure
    // context-switch overhead, so chunks apply inline on the connection
    // thread (same `apply_chunk` code path either way).
    let pipelined = daemon
        .config
        .apply_pipeline
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) > 1);
    let new = Arc::new(Session {
        name: name.to_string(),
        dir,
        state: Mutex::new(SessionState {
            store: Some(store),
            apply_tx: None,
            apply_thread: None,
            apply_error: None,
            chunks: 0,
            events: 0,
            finished: false,
            aborted: false,
        }),
        live: Mutex::new(LiveState::new()),
        progress: std::sync::Mutex::new(ApplyProgress::default()),
        applied: std::sync::Condvar::new(),
    });
    if pipelined {
        let (apply_tx, apply_rx) =
            crossbeam::channel::bounded::<(Vec<u8>, Vec<Event>)>(APPLY_QUEUE_CHUNKS);
        let apply_session = new.clone();
        let apply_thread = std::thread::spawn(move || {
            while let Some((payload, events)) = apply_rx.recv() {
                if let Err(error) = apply_session.apply_chunk(&payload, &events) {
                    let mut state = apply_session.state.lock();
                    if state.apply_error.is_none() {
                        state.apply_error = Some(error);
                    }
                }
                let mut progress = apply_session.progress.lock().unwrap_or_else(|e| e.into_inner());
                progress.applied += 1;
                apply_session.applied.notify_all();
            }
        });
        let mut state = new.state.lock();
        state.apply_tx = Some(apply_tx);
        state.apply_thread = Some(apply_thread);
    }
    sessions.insert(name.to_string(), new.clone());
    drop(sessions);
    *session = Some(new);
    let id = daemon.next_session_id.fetch_add(1, Ordering::SeqCst);
    let mut ack = id.to_be_bytes().to_vec();
    ack.extend_from_slice(&daemon.config.credits.max(1).to_be_bytes());
    write_frame(stream, kind::HELLO_ACK, &ack).map_err(io_err)?;
    Ok(())
}

fn handle_chunk(
    stream: &mut UnixStream,
    session: Option<&Session>,
    payload: Vec<u8>,
) -> Result<(), ConnError> {
    let session = session.ok_or((ErrorCode::Protocol, "CHUNK before HELLO".to_string()))?;
    // The payload is a codec-v3 chunk: decode validates everything —
    // framing, varints, string ids, the footer cross-check — before a
    // single event enters the session.
    let events = decode_events(&payload).map_err(|e| (ErrorCode::CorruptChunk, e.to_string()))?;
    let accepted = events.len() as u32;
    let apply_tx = {
        let state = session.state.lock();
        if let Some(err) = &state.apply_error {
            return Err(err.clone());
        }
        if state.apply_tx.is_none() && state.store.is_none() {
            return Err((ErrorCode::Protocol, "CHUNK after FINISH".into()));
        }
        state.apply_tx.clone()
    };
    match apply_tx {
        Some(apply_tx) => {
            // Count the chunk as enqueued before sending, so the flush
            // barrier can never observe a sent-but-uncounted chunk; the
            // bounded send then blocks (backpressure) when the apply
            // stage lags.
            session.progress.lock().unwrap_or_else(|e| e.into_inner()).enqueued += 1;
            if apply_tx.send((payload, events)).is_err() {
                // The chunk will never apply; count it resolved so
                // barriers taken against the bumped `enqueued` cannot
                // wait forever.
                let mut progress = session.progress.lock().unwrap_or_else(|e| e.into_inner());
                progress.applied += 1;
                session.applied.notify_all();
                return Err((ErrorCode::Io, "session apply stage is gone".into()));
            }
        }
        // Single-core inline mode: apply synchronously before the ack.
        None => session.apply_chunk(&payload, &events)?,
    }
    write_frame(stream, kind::CHUNK_ACK, &accepted.to_be_bytes()).map_err(io_err)?;
    Ok(())
}

fn handle_finish(stream: &mut UnixStream, session: Option<&Session>) -> Result<(), ConnError> {
    let session = session.ok_or((ErrorCode::Protocol, "FINISH before HELLO".to_string()))?;
    // Drain and stop the apply stage first, so every accepted chunk has
    // reached the writer before it is flushed.
    session.stop_apply_thread();
    let (chunks, events) = {
        let mut state = session.state.lock();
        if let Some(err) = state.apply_error.take() {
            state.aborted = true;
            state.store = None;
            return Err(err);
        }
        let mut store =
            state.store.take().ok_or((ErrorCode::Protocol, "second FINISH".to_string()))?;
        store.finish().map_err(|e| (ErrorCode::Io, e.to_string()))?;
        state.finished = true;
        (state.chunks, state.events)
    };
    // Finished queries route to the chunk directory (full query
    // surface, manifest pushdown, result cache) — release the live
    // sweep memory.
    *session.live.lock() = LiveState::new();
    let mut ack = chunks.to_be_bytes().to_vec();
    ack.extend_from_slice(&events.to_be_bytes());
    write_frame(stream, kind::FINISH_ACK, &ack).map_err(io_err)?;
    Ok(())
}

fn handle_query(daemon: &Daemon, stream: &mut UnixStream, payload: &[u8]) -> Result<(), ConnError> {
    let spec = QuerySpec::decode(payload).map_err(|e| (ErrorCode::Protocol, e.to_string()))?;
    let reply = run_query(daemon, &spec)?;
    write_frame(stream, kind::QUERY_OK, &reply.encode()).map_err(io_err)?;
    Ok(())
}

fn run_query(daemon: &Daemon, spec: &QuerySpec) -> Result<QueryReply, ConnError> {
    match &spec.target {
        QueryTarget::Session(name) => {
            let session = daemon
                .sessions
                .lock()
                .get(name)
                .cloned()
                .ok_or((ErrorCode::UnknownTarget, format!("no session {name:?}")))?;
            // Flush barrier: wait until everything enqueued before the
            // query is applied, so the snapshot covers every chunk
            // acked to any producer so far.
            session.flush_applies();
            let live_tables = {
                // State first, live nested — the one sanctioned nesting
                // (see the Session lock-order note): checking `finished`
                // and snapshotting must be atomic against a concurrent
                // finish resetting the live state.
                let state = session.state.lock();
                if let Some(err) = &state.apply_error {
                    return Err(err.clone());
                }
                if state.finished {
                    None
                } else {
                    Some(session.live.lock().snapshot())
                }
            };
            match live_tables {
                Some(tables) => {
                    let analysis = apply_spec(Analysis::of_live(&tables), spec);
                    let json = analysis.canonical_json().map_err(analysis_err)?;
                    Ok(QueryReply {
                        live: true,
                        cache_hit: false,
                        events_observed: tables.events_observed(),
                        canonical_json: json,
                    })
                }
                None => dir_query(daemon, &session.dir, spec),
            }
        }
        QueryTarget::Dir(path) => {
            let dir = PathBuf::from(path);
            if !dir.is_dir() {
                return Err((ErrorCode::UnknownTarget, format!("no chunk directory {path:?}")));
            }
            dir_query(daemon, &dir, spec)
        }
    }
}

/// Finished-directory query: manifest pushdown via
/// [`Analysis::from_chunk_dir`], fronted by the checksum-keyed cache.
fn dir_query(daemon: &Daemon, dir: &Path, spec: &QuerySpec) -> Result<QueryReply, ConnError> {
    let manifest = Manifest::open(dir).map_err(|e| (ErrorCode::Io, e.to_string()))?;
    let checksum = manifest.checksum();
    let key = (dir.to_string_lossy().into_owned(), spec.encode());
    if let Some((events, json)) = daemon.cache.lock().get(&key, checksum) {
        return Ok(QueryReply {
            live: false,
            cache_hit: true,
            events_observed: events,
            canonical_json: json,
        });
    }
    let analysis = apply_spec(Analysis::from_chunk_dir(dir), spec);
    let json = analysis.canonical_json().map_err(analysis_err)?;
    let events = manifest.total_events();
    daemon.cache.lock().insert(key, CachedResult { checksum, events, json: json.clone() });
    Ok(QueryReply { live: false, cache_hit: false, events_observed: events, canonical_json: json })
}

/// Applies a wire query spec to an [`Analysis`] builder.
fn apply_spec<'a>(mut analysis: Analysis<'a>, spec: &'a QuerySpec) -> Analysis<'a> {
    if let Some(phase) = &spec.phase {
        analysis = analysis.phase(phase);
    }
    if let Some(pid) = spec.process {
        analysis = analysis.process(ProcessId(pid));
    }
    if let Some(op) = &spec.operation {
        analysis = analysis.operation(op);
    }
    if let Some((lo, hi)) = spec.window {
        analysis = analysis.time_window(TimeNs::from_nanos(lo), TimeNs::from_nanos(hi));
    }
    analysis.group_by(spec.dims.iter().copied())
}

fn io_err(e: rlscope_core::store::TraceIoError) -> ConnError {
    (ErrorCode::Io, e.to_string())
}

fn analysis_err(e: AnalysisError) -> ConnError {
    match e {
        AnalysisError::Unsupported(msg) => (ErrorCode::UnsupportedQuery, msg),
        AnalysisError::Io(e) => (ErrorCode::Io, e.to_string()),
    }
}
