//! Background compaction and retention: the machinery that ages a
//! finished session down the storage ladder (raw → sorted → rollup →
//! gone) without ever losing a queryable tier.
//!
//! This module holds the pieces that are independent of the daemon's
//! session table: the [`RetentionPolicy`] dial and its parser, the
//! low-priority `JobQueue` the daemon's compaction worker drains, and
//! the **atomic tier transitions** themselves. The daemon side — the
//! worker thread, the retention timer, per-session eligibility, and
//! query routing across tiers — lives in [`crate::daemon`].
//!
//! # The transition protocol
//!
//! Every tier transition on a session directory `D` follows the same
//! four steps, in order:
//!
//! 1. build the new tier into the temp dir `D/.tier.tmp` (a stale temp
//!    dir from an earlier crash is wiped first);
//! 2. `rename(D/.tier.tmp, D/<tier>)` — the atomic publish;
//! 3. rewrite `D/SESSION` with the new [`StorageTier`] (itself atomic:
//!    temp file + rename);
//! 4. delete the prior tier's files.
//!
//! A crash at any point leaves the session queryable at the tier its
//! registry record names: before step 3 the record still names the
//! prior tier (whose files steps 1–2 never touch), after step 3 the new
//! tier is durably complete. Startup recovery runs `reconcile_tiers`
//! to finish the protocol — it removes the temp dir and any tier
//! directory the record does not name, which both cleans a pre-step-3
//! crash (stale new tier) and completes a post-step-3 one (stale prior
//! tier). A job interrupted before step 3 simply re-runs.

use crate::registry::StorageTier;
use rlscope_core::rollup::{rollup_chunk_dir, RollupStats};
use rlscope_core::store::{
    list_chunk_files, reorder_chunk_dir, ReorderStats, TraceIoError, MANIFEST_FILE,
};
use std::collections::{HashSet, VecDeque};
use std::fs;
use std::path::Path;
use std::time::Duration;

/// Temp directory (inside the session directory) tier builds write
/// into before the atomic publish rename.
pub(crate) const TIER_TMP: &str = ".tier.tmp";

/// Chunk size for the sorted tier's rewritten v3 chunks.
const SORTED_CHUNK_BYTES: usize = 1 << 20;

/// How long a finished session may dwell at each tier before the
/// retention timer ages it down the ladder — the "retention as a dial"
/// knob (`rlscoped --retention raw=30m,sorted=12h,rollup=7d`).
///
/// Each field is the dwell *at that tier*: `raw` elapsed ⇒ compact to
/// sorted, `sorted` elapsed ⇒ roll up, `rollup` elapsed ⇒ prune (data
/// dir and registry record removed; the name becomes reusable). A
/// `None` field means sessions stay at that tier forever, so e.g.
/// `raw=1h` alone gives sorted-forever storage. Dwell is measured from
/// the session's last durable transition (the `SESSION` record's
/// mtime). Aborted sessions never compact — their partial data ages
/// straight from raw to pruned after the `raw` dwell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Dwell at the raw tier before compaction to sorted.
    pub raw: Option<Duration>,
    /// Dwell at the sorted tier before rollup.
    pub sorted: Option<Duration>,
    /// Dwell at the rollup tier before the session is pruned.
    pub rollup: Option<Duration>,
}

impl RetentionPolicy {
    /// Parses the `--retention` flag syntax: comma-separated
    /// `key=duration` pairs, keys `raw` / `sorted` / `rollup`, durations
    /// an integer with an `ms`, `s`, `m`, `h`, or `d` suffix
    /// (`raw=30m,sorted=12h,rollup=7d`). Keys may appear in any order;
    /// each at most once.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending pair.
    pub fn parse(s: &str) -> Result<RetentionPolicy, String> {
        let mut policy = RetentionPolicy::default();
        for pair in s.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("retention pair {pair:?} is not key=duration"))?;
            let dur = parse_duration(value.trim())
                .map_err(|e| format!("retention pair {pair:?}: {e}"))?;
            let slot = match key.trim() {
                "raw" => &mut policy.raw,
                "sorted" => &mut policy.sorted,
                "rollup" => &mut policy.rollup,
                other => {
                    return Err(format!(
                        "retention key {other:?} unknown (want raw, sorted, or rollup)"
                    ))
                }
            };
            if slot.replace(dur).is_some() {
                return Err(format!("retention key {key:?} given twice"));
            }
        }
        Ok(policy)
    }

    /// True when no dwell is configured (the retention timer has
    /// nothing to do).
    pub fn is_empty(&self) -> bool {
        self.raw.is_none() && self.sorted.is_none() && self.rollup.is_none()
    }

    /// The shortest configured dwell — what the retention timer's tick
    /// is derived from.
    pub(crate) fn min_dwell(&self) -> Option<Duration> {
        [self.raw, self.sorted, self.rollup].into_iter().flatten().min()
    }
}

/// Parses `30m`-style durations (integer + `ms`/`s`/`m`/`h`/`d`).
fn parse_duration(s: &str) -> Result<Duration, String> {
    let (digits, unit) = match s.find(|c: char| !c.is_ascii_digit()) {
        Some(split) => s.split_at(split),
        None => return Err(format!("duration {s:?} is missing a unit (ms, s, m, h, d)")),
    };
    let n: u64 = digits.parse().map_err(|_| format!("duration {s:?} has no leading integer"))?;
    let millis = match unit {
        "ms" => n,
        "s" => n.saturating_mul(1000),
        "m" => n.saturating_mul(60 * 1000),
        "h" => n.saturating_mul(60 * 60 * 1000),
        "d" => n.saturating_mul(24 * 60 * 60 * 1000),
        other => return Err(format!("duration unit {other:?} unknown (want ms, s, m, h, d)")),
    };
    Ok(Duration::from_millis(millis))
}

/// What a compaction job does to its session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum JobKind {
    /// Rewrite the raw close-ordered chunks into a start-sorted v3
    /// directory (`sorted/`).
    Sort,
    /// Roll the sorted tier up into segment summaries (`rollup/`).
    Rollup,
    /// Remove the session entirely (data dir, registry record, name).
    Prune,
}

/// One queued unit of background compaction work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CompactionJob {
    /// Session name (the daemon resolves it to a directory and
    /// re-checks eligibility at run time — jobs can go stale).
    pub name: String,
    /// What to do.
    pub kind: JobKind,
}

#[derive(Debug, Default)]
struct QueueInner {
    queue: VecDeque<CompactionJob>,
    /// Sessions with a job queued or running — at most one outstanding
    /// job per session, so a slow tier build cannot pile up duplicates.
    pending: HashSet<String>,
    running: usize,
    shutdown: bool,
}

/// The low-priority compaction job queue: retention timer and test
/// hooks push, the single worker thread pops. (std `Mutex` + `Condvar`:
/// the vendored parking_lot stub has no Condvar.)
#[derive(Debug, Default)]
pub(crate) struct JobQueue {
    inner: std::sync::Mutex<QueueInner>,
    ready: std::sync::Condvar,
    idle: std::sync::Condvar,
}

impl JobQueue {
    /// Enqueues `job` unless its session already has one queued or
    /// running; returns whether it was accepted.
    pub(crate) fn push(&self, job: CompactionJob) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.shutdown || !inner.pending.insert(job.name.clone()) {
            return false;
        }
        inner.queue.push_back(job);
        self.ready.notify_one();
        true
    }

    /// Blocks for the next job; `None` once the queue is shut down and
    /// drained.
    pub(crate) fn pop(&self) -> Option<CompactionJob> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = inner.queue.pop_front() {
                inner.running += 1;
                return Some(job);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks a popped job finished (success or failure), re-admitting
    /// its session for future jobs.
    pub(crate) fn done(&self, job: &CompactionJob) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.pending.remove(&job.name);
        inner.running -= 1;
        self.idle.notify_all();
    }

    /// Blocks until the queue is empty and no job is running.
    pub(crate) fn wait_idle(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while !inner.queue.is_empty() || inner.running > 0 {
            inner = self.idle.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Rejects further pushes and wakes the worker so it can exit.
    pub(crate) fn shutdown(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.shutdown = true;
        inner.queue.clear();
        self.ready.notify_all();
        self.idle.notify_all();
    }
}

/// Steps 1–2 of the transition protocol for raw → sorted: rewrites the
/// session's raw chunks into a start-sorted v3 directory and publishes
/// it at `dir/sorted` atomically. The raw tier is untouched; the caller
/// records the new tier and then calls [`drop_raw_files`].
///
/// # Errors
///
/// Filesystem or decode failures from the rewrite; the temp dir is
/// removed and the prior tier is intact.
pub(crate) fn sort_tier(dir: &Path) -> Result<ReorderStats, TraceIoError> {
    let tmp = dir.join(TIER_TMP);
    let _ = fs::remove_dir_all(&tmp);
    let stats = match reorder_chunk_dir(dir, &tmp, SORTED_CHUNK_BYTES) {
        Ok(stats) => stats,
        Err(e) => {
            let _ = fs::remove_dir_all(&tmp);
            return Err(e);
        }
    };
    let target = dir.join(StorageTier::Sorted.subdir().unwrap_or_default());
    let _ = fs::remove_dir_all(&target);
    fs::rename(&tmp, &target)?;
    Ok(stats)
}

/// Steps 1–2 for sorted → rollup: builds segment summaries from the
/// sorted tier (start-sorted input is what makes rollup group order
/// exact — see [`rlscope_core::rollup`]) and publishes them at
/// `dir/rollup` atomically.
///
/// # Errors
///
/// Filesystem or decode failures from the build; the temp dir is
/// removed and the prior tier is intact.
pub(crate) fn rollup_tier(dir: &Path, segment_ns: u64) -> Result<RollupStats, TraceIoError> {
    let src = dir.join(StorageTier::Sorted.subdir().unwrap_or_default());
    let tmp = dir.join(TIER_TMP);
    let _ = fs::remove_dir_all(&tmp);
    let stats = match rollup_chunk_dir(&src, &tmp, segment_ns) {
        Ok(stats) => stats,
        Err(e) => {
            let _ = fs::remove_dir_all(&tmp);
            return Err(e);
        }
    };
    let target = dir.join(StorageTier::Rollup.subdir().unwrap_or_default());
    let _ = fs::remove_dir_all(&target);
    fs::rename(&tmp, &target)?;
    Ok(stats)
}

/// Step 4 for raw → sorted: removes the top-level raw chunks and
/// `MANIFEST`. Best-effort by contract — the new tier is already
/// recorded, so leftovers are cosmetic and recovery re-sweeps them.
pub(crate) fn drop_raw_files(dir: &Path) {
    if let Ok(files) = list_chunk_files(dir) {
        for file in files {
            let _ = fs::remove_file(file);
        }
    }
    let _ = fs::remove_file(dir.join(MANIFEST_FILE));
}

/// Step 4 for sorted → rollup.
pub(crate) fn drop_sorted_dir(dir: &Path) {
    if let Some(sub) = StorageTier::Sorted.subdir() {
        let _ = fs::remove_dir_all(dir.join(sub));
    }
}

/// Startup reconciliation: finish whatever transition a crash
/// interrupted, trusting the registry record's tier (see the module
/// docs). Removes the temp dir, every tier directory the record does
/// not name, and — when the record says the session has left the raw
/// tier — any leftover raw chunks.
pub(crate) fn reconcile_tiers(dir: &Path, tier: StorageTier) {
    let _ = fs::remove_dir_all(dir.join(TIER_TMP));
    for stale in [StorageTier::Sorted, StorageTier::Rollup] {
        if stale == tier {
            continue;
        }
        if let Some(sub) = stale.subdir() {
            let _ = fs::remove_dir_all(dir.join(sub));
        }
    }
    if tier != StorageTier::Raw {
        drop_raw_files(dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_parse_round_trips_the_flag_syntax() {
        let policy = RetentionPolicy::parse("raw=30m,sorted=12h,rollup=7d").unwrap();
        assert_eq!(policy.raw, Some(Duration::from_secs(30 * 60)));
        assert_eq!(policy.sorted, Some(Duration::from_secs(12 * 3600)));
        assert_eq!(policy.rollup, Some(Duration::from_secs(7 * 24 * 3600)));
        assert_eq!(policy.min_dwell(), Some(Duration::from_secs(30 * 60)));

        let partial = RetentionPolicy::parse("raw=500ms").unwrap();
        assert_eq!(partial.raw, Some(Duration::from_millis(500)));
        assert_eq!(partial.sorted, None);
        assert!(!partial.is_empty());
        assert!(RetentionPolicy::parse("").unwrap().is_empty());
    }

    #[test]
    fn retention_parse_rejects_malformed_pairs() {
        for bad in ["raw", "raw=", "raw=10", "raw=x5s", "lukewarm=5s", "raw=5s,raw=6s", "raw=5w"] {
            assert!(RetentionPolicy::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn job_queue_dedups_and_drains() {
        let queue = JobQueue::default();
        let job = CompactionJob { name: "a".into(), kind: JobKind::Sort };
        assert!(queue.push(job.clone()));
        assert!(!queue.push(CompactionJob { name: "a".into(), kind: JobKind::Rollup }));
        assert!(queue.push(CompactionJob { name: "b".into(), kind: JobKind::Prune }));
        let popped = queue.pop().unwrap();
        assert_eq!(popped, job);
        queue.done(&popped);
        // "a" is re-admissible once its job completed.
        assert!(queue.push(CompactionJob { name: "a".into(), kind: JobKind::Rollup }));
        queue.shutdown();
        assert!(queue.pop().is_none());
        assert!(!queue.push(CompactionJob { name: "c".into(), kind: JobKind::Sort }));
    }

    #[test]
    fn reconcile_removes_everything_the_record_does_not_name() {
        let dir = std::env::temp_dir().join(format!("rlss-reconcile-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join(TIER_TMP)).unwrap();
        fs::create_dir_all(dir.join("sorted")).unwrap();
        fs::create_dir_all(dir.join("rollup")).unwrap();
        fs::write(dir.join("chunk_00000.rls"), b"raw").unwrap();
        fs::write(dir.join(MANIFEST_FILE), b"manifest").unwrap();

        reconcile_tiers(&dir, StorageTier::Sorted);
        assert!(!dir.join(TIER_TMP).exists(), "temp dir survives reconciliation");
        assert!(dir.join("sorted").exists(), "the recorded tier must survive");
        assert!(!dir.join("rollup").exists(), "unrecorded tier survives");
        assert!(!dir.join("chunk_00000.rls").exists(), "raw chunks survive a sorted record");
        assert!(!dir.join(MANIFEST_FILE).exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
