//! The federation tier: one query fanned out across a fleet of
//! collector daemons, with per-daemon partial-failure reporting.
//!
//! A [`FleetClient`] holds one query connection per daemon endpoint
//! (Unix or TCP — typically TCP, since shards live on other hosts).
//! [`FleetClient::query_all`] sends each daemon the same serialized
//! `QUERY_ALL` spec, then folds the returned grouped tables together
//! with [`BreakdownTable::merge`] — the same merge the analysis
//! pipeline's multi-session composition uses, so a fleet rollup is
//! byte-identical to running one daemon that held every session.
//!
//! **Failure model.** A dead or unreachable daemon never poisons the
//! rollup and never silently shrinks it: its shard is reported as a
//! named gap (a [`ShardReport`] carrying the endpoint and the typed
//! [`CollectorError`]), the merged tables cover exactly the responding
//! shards, and [`FleetResult::complete`] says whether the total can be
//! trusted as fleet-wide. Callers choose their own policy — render the
//! partial answer with a warning, or fail closed on `!complete()`.

use crate::client::CollectorClient;
use crate::protocol::{CollectorError, QuerySpec, QueryTarget};
use crate::transport::Endpoint;
use rlscope_core::analysis::{groups_canonical_json, GroupKey};
use rlscope_core::overlap::BreakdownTable;
use std::fmt;

/// One daemon's contribution to a federated query: which sessions it
/// answered over, or the typed error that made it a gap.
#[derive(Debug)]
pub struct ShardReport {
    /// The daemon's endpoint, in canonical `unix://` / `tcp://` form.
    pub daemon: String,
    /// Session names this shard contributed (empty when it failed).
    pub sessions: Vec<String>,
    /// The typed failure, when the shard could not answer — the named
    /// gap in the rollup.
    pub error: Option<CollectorError>,
}

/// A merged federated query result (see [`FleetClient::query_all`]).
#[derive(Debug)]
pub struct FleetResult {
    /// Grouped tables merged across every responding shard, in
    /// first-seen group order (shards in endpoint order, each shard's
    /// groups in its daemon's canonical order).
    pub groups: Vec<(GroupKey, BreakdownTable)>,
    /// Events covered, summed across responding shards.
    pub events_observed: u64,
    /// Whether any responding shard answered over a live session.
    pub live: bool,
    /// Per-daemon outcome, in endpoint order — one entry per shard,
    /// answered or not.
    pub shards: Vec<ShardReport>,
}

impl FleetResult {
    /// `true` when every shard answered — the merged tables are the
    /// whole fleet, not a partial view.
    pub fn complete(&self) -> bool {
        self.shards.iter().all(|s| s.error.is_none())
    }

    /// The shards that failed: the named gaps in the rollup.
    pub fn gaps(&self) -> Vec<&ShardReport> {
        self.shards.iter().filter(|s| s.error.is_some()).collect()
    }

    /// Session names across every responding shard, in shard order.
    pub fn sessions(&self) -> Vec<&str> {
        self.shards.iter().flat_map(|s| s.sessions.iter().map(String::as_str)).collect()
    }

    /// Renders the merged tables as canonical JSON — grouped (one entry
    /// per [`GroupKey::label`]) or flattened into a single merged table,
    /// matching `Analysis::canonical_json` for the same dims.
    pub fn canonical_json(&self, grouped: bool) -> String {
        groups_canonical_json(&self.groups, grouped)
    }
}

struct Shard {
    endpoint: Endpoint,
    client: Option<CollectorClient>,
}

/// A client over N collector daemons. See the [module docs](self).
pub struct FleetClient {
    shards: Vec<Shard>,
}

impl fmt::Debug for FleetClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetClient")
            .field(
                "endpoints",
                &self.shards.iter().map(|s| s.endpoint.to_string()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl FleetClient {
    /// Connects one query connection per endpoint. Dial failures are
    /// not fatal here: an unreachable daemon is re-dialed at each query
    /// and reported as a named gap until it comes back.
    pub fn connect(endpoints: impl IntoIterator<Item = Endpoint>) -> FleetClient {
        let shards = endpoints
            .into_iter()
            .map(|endpoint| {
                let client = CollectorClient::connect_to(&endpoint).ok();
                Shard { endpoint, client }
            })
            .collect();
        FleetClient { shards }
    }

    /// The fleet's endpoints, in shard order.
    pub fn endpoints(&self) -> Vec<&Endpoint> {
        self.shards.iter().map(|s| &s.endpoint).collect()
    }

    /// Fans `spec` out to every daemon as a `QUERY_ALL` (the target is
    /// forced to all-sessions; filters, window, and dims pass through)
    /// and merges the grouped tables across shards. Never fails as a
    /// whole: each shard either contributes or becomes a named gap in
    /// the returned [`FleetResult`].
    pub fn query_all(&mut self, spec: &QuerySpec) -> FleetResult {
        let mut spec = spec.clone();
        spec.target = QueryTarget::AllSessions;
        let mut groups: Vec<(GroupKey, BreakdownTable)> = Vec::new();
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut events_observed = 0u64;
        let mut live = false;
        for shard in &mut self.shards {
            match shard.query_all(&spec) {
                Ok(reply) => {
                    live |= reply.live;
                    events_observed += reply.events_observed;
                    for (key, table) in reply.groups {
                        match groups.iter_mut().find(|(k, _)| *k == key) {
                            Some((_, merged)) => merged.merge(&table),
                            None => groups.push((key, table)),
                        }
                    }
                    shards.push(ShardReport {
                        daemon: shard.endpoint.to_string(),
                        sessions: reply.sessions,
                        error: None,
                    });
                }
                Err(error) => {
                    // Drop the connection so the next query re-dials
                    // instead of reusing a dead stream.
                    shard.client = None;
                    shards.push(ShardReport {
                        daemon: shard.endpoint.to_string(),
                        sessions: Vec::new(),
                        error: Some(error),
                    });
                }
            }
        }
        FleetResult { groups, events_observed, live, shards }
    }
}

impl Shard {
    fn query_all(
        &mut self,
        spec: &QuerySpec,
    ) -> Result<crate::protocol::QueryAllReply, CollectorError> {
        if self.client.is_none() {
            self.client = Some(CollectorClient::connect_to(&self.endpoint)?);
        }
        let Some(client) = self.client.as_mut() else {
            // Unreachable after the dial above, but a typed gap beats a
            // panic in the federation path.
            return Err(CollectorError::Protocol("shard client missing after dial".into()));
        };
        client.query_all(spec)
    }
}
