//! The durable session registry: one small `SESSION` record per session
//! chunk directory, written at every lifecycle transition (create,
//! detach, finish, abort) so a restarted daemon knows what each
//! directory *was* — an in-flight stream to resume, a finished trace to
//! re-serve by name, or an aborted run whose data is still worth
//! querying.
//!
//! The record is deliberately coarse: it carries the session **epoch**
//! (the fencing token for the resume handshake), its **status**, and the
//! acked chunk count at the last transition — never a per-chunk
//! watermark. Chunk-level truth lives in the chunk files themselves:
//! recovery rescans them through the full decode path
//! ([`rlscope_core::store::recover_chunk_prefix`]), so a record that is
//! one transition stale (the daemon was SIGKILLed mid-stream) still
//! recovers exactly the durable prefix. Records are written atomically
//! (temp file + rename) and carry a checksum; an unreadable or torn
//! record demotes the directory to legacy handling rather than failing
//! daemon startup.

use rlscope_core::store::TraceIoError;
use std::fs;
use std::path::Path;

/// File name of the per-session registry record, inside the session's
/// chunk directory (next to its `chunk_NNNNN.rls` files).
pub const SESSION_FILE: &str = "SESSION";

const MAGIC: &[u8; 4] = b"RLSS";
const VERSION: u16 = 2;
/// v1: magic + version + epoch + status + acked_chunks + checksum.
const RECORD_LEN_V1: usize = 4 + 2 + 8 + 1 + 8 + 8;
/// v2 appends the storage-tier byte between `acked_chunks` and the
/// checksum.
const RECORD_LEN: usize = RECORD_LEN_V1 + 1;

/// Which storage tier a session's data currently lives in. Compaction
/// ages finished sessions down the ladder (raw → sorted → rollup →
/// gone); each transition is recorded here **after** the new tier is
/// durably in place and **before** the prior tier is deleted, so the
/// recorded tier always names a directory that exists and is complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum StorageTier {
    /// Close-ordered chunks at the session directory's top level, as the
    /// collector wrote them.
    Raw = 0,
    /// Start-sorted codec-v3 chunks under `sorted/` (pushdown-friendly).
    Sorted = 1,
    /// Segment-summary rollups under `rollup/` — coarse queries only.
    Rollup = 2,
}

impl StorageTier {
    fn from_u8(v: u8) -> Option<StorageTier> {
        Some(match v {
            0 => StorageTier::Raw,
            1 => StorageTier::Sorted,
            2 => StorageTier::Rollup,
            _ => return None,
        })
    }

    /// Subdirectory (inside the session directory) holding this tier's
    /// data; `None` for [`StorageTier::Raw`], which lives at the top
    /// level.
    pub fn subdir(self) -> Option<&'static str> {
        match self {
            StorageTier::Raw => None,
            StorageTier::Sorted => Some("sorted"),
            StorageTier::Rollup => Some("rollup"),
        }
    }
}

/// A session's lifecycle status as of the last durable transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SessionStatus {
    /// The session was mid-stream (or cleanly detached awaiting resume)
    /// when the record was written; recovery truncates any torn tail
    /// chunk and offers the session for resume.
    Active = 1,
    /// `FINISH` committed: the manifest is written and the directory is
    /// immutable; recovery re-serves it by name, read-only.
    Finished = 2,
    /// The session was aborted with a typed error; the name is reusable
    /// and the data so far stays queryable as a directory target.
    Aborted = 3,
}

impl SessionStatus {
    fn from_u8(v: u8) -> Option<SessionStatus> {
        Some(match v {
            1 => SessionStatus::Active,
            2 => SessionStatus::Finished,
            3 => SessionStatus::Aborted,
            _ => return None,
        })
    }
}

/// The durable per-session state record (see the module docs for what
/// is — deliberately — not in here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRecord {
    /// Monotonic incarnation counter for the session *name*: bumped each
    /// time the name is (re)created, echoed by clients in the resume
    /// handshake, and compared by the daemon so a stale client can never
    /// resume into a newer incarnation's stream.
    pub epoch: u64,
    /// Lifecycle status at the last transition.
    pub status: SessionStatus,
    /// Chunks acked (durable) at the last transition — informational;
    /// recovery re-derives the true count by rescanning chunk files.
    pub acked_chunks: u64,
    /// Storage tier the session's data currently lives in (v1 records
    /// decode as [`StorageTier::Raw`] — tiering postdates them).
    pub tier: StorageTier,
}

impl SessionRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RECORD_LEN);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_be_bytes());
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.push(self.status as u8);
        out.extend_from_slice(&self.acked_chunks.to_be_bytes());
        out.push(self.tier as u8);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_be_bytes());
        out
    }

    fn decode(data: &[u8]) -> Option<SessionRecord> {
        if data.len() != RECORD_LEN && data.len() != RECORD_LEN_V1 {
            return None;
        }
        let (magic, rest) = data.split_first_chunk::<4>()?;
        if magic != MAGIC {
            return None;
        }
        let (version, rest) = rest.split_first_chunk::<2>()?;
        let version = u16::from_be_bytes(*version);
        let expected_len = match version {
            1 => RECORD_LEN_V1,
            2 => RECORD_LEN,
            _ => return None,
        };
        if data.len() != expected_len {
            return None;
        }
        let (epoch, rest) = rest.split_first_chunk::<8>()?;
        let (&status_byte, rest) = rest.split_first()?;
        let (acked, rest) = rest.split_first_chunk::<8>()?;
        let tier = if version >= 2 {
            let (&tier_byte, _) = rest.split_first()?;
            StorageTier::from_u8(tier_byte)?
        } else {
            StorageTier::Raw
        };
        let (body, sum) = data.split_at_checked(expected_len - 8)?;
        if u64::from_be_bytes(*sum.first_chunk::<8>()?) != fnv1a(body) {
            return None;
        }
        let status = SessionStatus::from_u8(status_byte)?;
        Some(SessionRecord {
            epoch: u64::from_be_bytes(*epoch),
            status,
            acked_chunks: u64::from_be_bytes(*acked),
            tier,
        })
    }

    /// Writes the record atomically (temp file + rename) into `dir`.
    ///
    /// # Errors
    ///
    /// Filesystem errors creating, writing, or renaming the record.
    pub fn write(&self, dir: &Path) -> Result<(), TraceIoError> {
        let tmp = dir.join(format!("{SESSION_FILE}.tmp"));
        fs::write(&tmp, self.encode())?;
        fs::rename(&tmp, dir.join(SESSION_FILE))?;
        Ok(())
    }

    /// Reads the record from `dir`. Returns `Ok(None)` when there is no
    /// record **or** the record is torn/corrupt — an unreadable record
    /// means "treat this directory as legacy data", never "refuse to
    /// start".
    ///
    /// # Errors
    ///
    /// Filesystem errors other than the file being absent.
    pub fn read(dir: &Path) -> Result<Option<SessionRecord>, TraceIoError> {
        match fs::read(dir.join(SESSION_FILE)) {
            Ok(data) => Ok(SessionRecord::decode(&data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

/// FNV-1a over `data` (same construction the chunk footer uses; local
/// copy — the core hash is an implementation detail of the codec).
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips() {
        let dir = std::env::temp_dir().join(format!("rlss-registry-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        for status in [SessionStatus::Active, SessionStatus::Finished, SessionStatus::Aborted] {
            for tier in [StorageTier::Raw, StorageTier::Sorted, StorageTier::Rollup] {
                let record = SessionRecord { epoch: 7, status, acked_chunks: 42, tier };
                record.write(&dir).unwrap();
                assert_eq!(SessionRecord::read(&dir).unwrap(), Some(record));
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_records_decode_as_raw_tier() {
        // Hand-encode a VERSION=1 record (no tier byte) exactly as the
        // previous release wrote it; it must decode as tier Raw.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u16.to_be_bytes());
        v1.extend_from_slice(&9u64.to_be_bytes());
        v1.push(SessionStatus::Finished as u8);
        v1.extend_from_slice(&5u64.to_be_bytes());
        let sum = fnv1a(&v1);
        v1.extend_from_slice(&sum.to_be_bytes());
        assert_eq!(v1.len(), RECORD_LEN_V1);
        assert_eq!(
            SessionRecord::decode(&v1),
            Some(SessionRecord {
                epoch: 9,
                status: SessionStatus::Finished,
                acked_chunks: 5,
                tier: StorageTier::Raw,
            })
        );
    }

    #[test]
    fn missing_and_corrupt_records_read_as_none() {
        let dir = std::env::temp_dir().join(format!("rlss-registry-none-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(SessionRecord::read(&dir).unwrap(), None);
        let record = SessionRecord {
            epoch: 1,
            status: SessionStatus::Active,
            acked_chunks: 3,
            tier: StorageTier::Sorted,
        };
        let good = record.encode();
        // Truncation at every offset and single-byte corruption both
        // demote to None — never a parse panic, never a partial record.
        for cut in 0..good.len() {
            fs::write(dir.join(SESSION_FILE), &good[..cut]).unwrap();
            assert_eq!(SessionRecord::read(&dir).unwrap(), None, "cut {cut}");
        }
        for flip in 0..good.len() {
            let mut bad = good.clone();
            bad[flip] ^= 0xff;
            fs::write(dir.join(SESSION_FILE), &bad).unwrap();
            assert_eq!(SessionRecord::read(&dir).unwrap(), None, "flip {flip}");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
