//! Transport abstraction: the framed protocol is byte-identical over a
//! Unix-domain socket and over TCP, so the daemon and client speak
//! through one [`Stream`] type and dial/listen through one [`Endpoint`]
//! address form. See the crate docs ("Fleet topology") for when to pick
//! which transport.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A dialable collector address: a Unix-domain socket path or a TCP
/// `host:port`.
///
/// The canonical string forms are `unix://<path>` and `tcp://<host>:<port>`
/// ([`Endpoint::parse`] also accepts a bare path as a Unix endpoint, so
/// existing socket-path CLI arguments keep working).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A Unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address in `host:port` form (resolved at dial time).
    Tcp(String),
}

impl Endpoint {
    /// A Unix-domain endpoint.
    pub fn unix(path: impl Into<PathBuf>) -> Endpoint {
        Endpoint::Unix(path.into())
    }

    /// A TCP endpoint (`host:port`, without the `tcp://` scheme).
    pub fn tcp(addr: impl Into<String>) -> Endpoint {
        Endpoint::Tcp(addr.into())
    }

    /// Parses `tcp://host:port`, `unix://path`, or a bare Unix socket
    /// path.
    ///
    /// # Errors
    ///
    /// A human-readable message for an empty or malformed address (a
    /// `tcp://` address must carry a `host:port`).
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp://") {
            if addr.is_empty() || !addr.contains(':') {
                return Err(format!("tcp endpoint {s:?} wants tcp://host:port"));
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        let path = s.strip_prefix("unix://").unwrap_or(s);
        if path.is_empty() {
            return Err("empty endpoint address".to_string());
        }
        Ok(Endpoint::Unix(PathBuf::from(path)))
    }

    /// Dials the endpoint, returning a connected [`Stream`].
    ///
    /// # Errors
    ///
    /// Connection failures (refused, unresolvable host, missing socket
    /// file).
    pub fn connect(&self) -> io::Result<Stream> {
        match self {
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr.as_str())?;
                // The protocol is request/response with small ack frames;
                // Nagle coalescing would add round-trip latency for no
                // bandwidth win.
                stream.set_nodelay(true)?;
                Ok(Stream::Tcp(stream))
            }
        }
    }
}

impl From<&Path> for Endpoint {
    fn from(path: &Path) -> Endpoint {
        Endpoint::Unix(path.to_path_buf())
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
        }
    }
}

/// One connected transport stream (either family), with the handful of
/// socket operations the daemon and client need beyond [`Read`] /
/// [`Write`].
#[derive(Debug)]
pub enum Stream {
    /// A Unix-domain connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    /// Clones the underlying socket handle (both halves share the file
    /// description, like [`UnixStream::try_clone`]).
    ///
    /// # Errors
    ///
    /// The OS-level dup failure.
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
        }
    }

    /// Shuts down the connection (all clones observe it).
    ///
    /// # Errors
    ///
    /// The OS-level shutdown failure.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.shutdown(how),
            Stream::Tcp(s) => s.shutdown(how),
        }
    }

    /// Sets the read timeout (`None` blocks forever).
    ///
    /// # Errors
    ///
    /// The OS-level setsockopt failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }
}

impl From<UnixStream> for Stream {
    fn from(s: UnixStream) -> Stream {
        Stream::Unix(s)
    }
}

impl From<TcpStream> for Stream {
    fn from(s: TcpStream) -> Stream {
        Stream::Tcp(s)
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_accepts_all_forms() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:7070"),
            Ok(Endpoint::Tcp("127.0.0.1:7070".into()))
        );
        assert_eq!(
            Endpoint::parse("unix:///run/rlscoped.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/run/rlscoped.sock")))
        );
        assert_eq!(
            Endpoint::parse("/run/rlscoped.sock"),
            Ok(Endpoint::Unix(PathBuf::from("/run/rlscoped.sock")))
        );
        assert!(Endpoint::parse("tcp://nohostport").is_err());
        assert!(Endpoint::parse("").is_err());
        assert!(Endpoint::parse("tcp://").is_err());
    }

    #[test]
    fn endpoint_display_round_trips_through_parse() {
        for text in ["tcp://localhost:9000", "unix:///tmp/x.sock"] {
            let endpoint = Endpoint::parse(text).unwrap();
            assert_eq!(endpoint.to_string(), text);
            assert_eq!(Endpoint::parse(&endpoint.to_string()), Ok(endpoint));
        }
    }
}
