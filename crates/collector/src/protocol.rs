//! Protocol messages layered over the [`rlscope_core::store`] wire
//! framing: frame kinds, handshake payloads, the query spec codec, and
//! the error taxonomy. See the [crate docs](crate) for the full spec
//! table.

use rlscope_core::analysis::{Dim, GroupKey};
use rlscope_core::event::CpuCategory;
use rlscope_core::overlap::{BreakdownTable, BucketKey};
use rlscope_core::store::TraceIoError;
use rlscope_sim::ids::ProcessId;
use rlscope_sim::time::DurationNs;
use std::fmt;
use std::sync::Arc;

/// Protocol version carried in `HELLO`; the server rejects others.
///
/// Version 2 added the resume handshake (`HELLO` mode byte + epoch),
/// sequence-numbered `CHUNK`/`CHUNK_ACK` frames, and the extended
/// `HELLO_ACK` carrying the session epoch and acked-chunk watermark.
pub const PROTOCOL_VERSION: u32 = 2;

/// Frame kinds (the `kind` byte of the wire framing).
pub mod kind {
    /// Client → server: open or resume a profiling session
    /// ([`super::HelloRequest`]).
    pub const HELLO: u8 = 0x01;
    /// Client → server: `seq:u64` followed by one codec-v3 chunk of
    /// events.
    pub const CHUNK: u8 = 0x02;
    /// Client → server: close the session durably.
    pub const FINISH: u8 = 0x03;
    /// Client → server: an analysis query ([`super::QuerySpec`]).
    pub const QUERY: u8 = 0x04;
    /// Client → server: enumerate the daemon's sessions (empty payload).
    pub const LIST_SESSIONS: u8 = 0x05;
    /// Client → server: a cross-session query ([`super::QuerySpec`] with
    /// [`super::QueryTarget::AllSessions`]) answered over every session
    /// the daemon holds.
    pub const QUERY_ALL: u8 = 0x06;
    /// Server → client: session accepted ([`super::HelloAck`]).
    pub const HELLO_ACK: u8 = 0x81;
    /// Server → client: chunk `seq` is applied **and durable**; returns
    /// one credit.
    pub const CHUNK_ACK: u8 = 0x82;
    /// Server → client: session finished and durable.
    pub const FINISH_ACK: u8 = 0x83;
    /// Server → client: query result ([`super::QueryReply`]).
    pub const QUERY_OK: u8 = 0x84;
    /// Server → client: the session listing ([`super::SessionList`]).
    pub const SESSIONS: u8 = 0x85;
    /// Server → client: cross-session query result
    /// ([`super::QueryAllReply`] — machine-mergeable grouped tables, not
    /// JSON, so a federation tier can combine daemons).
    pub const QUERY_ALL_OK: u8 = 0x86;
    /// Server → client: failure; the connection closes after this.
    pub const ERROR: u8 = 0xFF;
}

/// Server-reported failure categories (the `code` byte of `ERROR`
/// frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// `HELLO` carried an unsupported protocol version.
    Version = 1,
    /// Session name empty, too long, or containing path characters.
    BadSessionName = 2,
    /// A session of that name holds durable data (finished, or left by a
    /// previous daemon run) that a new session must not wipe. A resume
    /// `HELLO` answered with this code means the finish already
    /// committed.
    SessionExists = 3,
    /// A frame arrived that the connection state does not allow.
    Protocol = 4,
    /// A chunk payload failed to decode (corrupt bytes).
    CorruptChunk = 5,
    /// Server-side I/O failure (session storage, manifest).
    Io = 6,
    /// The query target names no known session or readable directory.
    UnknownTarget = 7,
    /// The query combination is unsupported (e.g. a time window over a
    /// live session).
    UnsupportedQuery = 8,
    /// A `HELLO` named a session that is currently streaming (attached
    /// to a live connection) or detached awaiting resume.
    SessionActive = 9,
    /// A resume `HELLO` carried an epoch that does not match the
    /// session's current incarnation — the name was recreated since this
    /// client last held it, and its buffered chunks belong to a dead
    /// stream.
    EpochMismatch = 10,
    /// The session was aborted by the daemon's idle reaper: no frames
    /// arrived within the configured idle timeout.
    IdleTimeout = 11,
    /// The session was aborted (client crash, injected I/O failure,
    /// idle timeout) and cannot be resumed; its data so far remains
    /// queryable and the name is reusable.
    SessionAborted = 12,
}

impl ErrorCode {
    /// The code for a wire byte, if known.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Version,
            2 => ErrorCode::BadSessionName,
            3 => ErrorCode::SessionExists,
            4 => ErrorCode::Protocol,
            5 => ErrorCode::CorruptChunk,
            6 => ErrorCode::Io,
            7 => ErrorCode::UnknownTarget,
            8 => ErrorCode::UnsupportedQuery,
            9 => ErrorCode::SessionActive,
            10 => ErrorCode::EpochMismatch,
            11 => ErrorCode::IdleTimeout,
            12 => ErrorCode::SessionAborted,
            _ => return None,
        })
    }
}

/// A `HELLO` payload: open a new session, or resume a detached one.
///
/// Byte layout (integers big-endian):
///
/// ```text
/// version:u32 | mode:u8 (0 = new, 1 = resume) | name_len:u16 | name
/// [epoch:u64]                                   if mode == 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloRequest {
    /// Protocol version the client speaks.
    pub version: u32,
    /// Session name (also the on-disk chunk directory name).
    pub name: String,
    /// `Some(epoch)` to resume an existing session incarnation; `None`
    /// to open a new one.
    pub resume_epoch: Option<u64>,
}

impl HelloRequest {
    /// A new-session handshake at the current [`PROTOCOL_VERSION`].
    pub fn new_session(name: impl Into<String>) -> Self {
        HelloRequest { version: PROTOCOL_VERSION, name: name.into(), resume_epoch: None }
    }

    /// A resume handshake for an existing incarnation.
    pub fn resume(name: impl Into<String>, epoch: u64) -> Self {
        HelloRequest { version: PROTOCOL_VERSION, name: name.into(), resume_epoch: Some(epoch) }
    }

    /// Serializes to the `HELLO` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(15 + self.name.len());
        out.extend_from_slice(&self.version.to_be_bytes());
        out.push(u8::from(self.resume_epoch.is_some()));
        out.extend_from_slice(&(self.name.len() as u16).to_be_bytes());
        out.extend_from_slice(self.name.as_bytes());
        if let Some(epoch) = self.resume_epoch {
            out.extend_from_slice(&epoch.to_be_bytes());
        }
        out
    }

    /// Parses a `HELLO` payload, validating length and mode exactly.
    /// The version field is *not* range-checked here — the server checks
    /// it first so a version mismatch gets its own typed error.
    ///
    /// # Errors
    ///
    /// [`CollectorError::Protocol`] on truncation, an unknown mode byte,
    /// non-UTF-8 name bytes, or trailing bytes.
    pub fn decode(data: &[u8]) -> Result<HelloRequest, CollectorError> {
        let bad = |what: &str| CollectorError::Protocol(format!("HELLO: {what}"));
        let Some((header, rest)) = data.split_first_chunk::<7>() else {
            return Err(bad("truncated header"));
        };
        let [v0, v1, v2, v3, mode, n0, n1] = *header;
        let version = u32::from_be_bytes([v0, v1, v2, v3]);
        if mode > 1 {
            return Err(bad(&format!("unknown mode {mode}")));
        }
        let name_len = u16::from_be_bytes([n0, n1]) as usize;
        let tail = if mode == 1 { 8 } else { 0 };
        if rest.len() != name_len + tail {
            return Err(bad("length mismatch"));
        }
        let Some((name_bytes, epoch_bytes)) = rest.split_at_checked(name_len) else {
            return Err(bad("length mismatch"));
        };
        let name =
            std::str::from_utf8(name_bytes).map_err(|_| bad("non-utf8 session name"))?.to_string();
        let resume_epoch = match (mode, epoch_bytes.split_first_chunk::<8>()) {
            (1, Some((word, _))) => Some(u64::from_be_bytes(*word)),
            (1, None) => return Err(bad("length mismatch")),
            _ => None,
        };
        Ok(HelloRequest { version, name, resume_epoch })
    }
}

/// A `HELLO_ACK` payload: the server's side of the handshake.
///
/// Byte layout: `session_id:u64 | credits:u32 | epoch:u64 |
/// acked_chunks:u64` (28 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAck {
    /// Server-assigned connection-scoped session id.
    pub session_id: u64,
    /// Credit window granted to this connection.
    pub credits: u32,
    /// The session's incarnation epoch — echo it back to resume.
    pub epoch: u64,
    /// Chunks durably acked so far: `0` for a new session; for a resume,
    /// the watermark the client replays from (chunks below it must not
    /// be re-sent, chunks at or above it were lost and must be).
    pub acked_chunks: u64,
}

impl HelloAck {
    /// Serializes to the `HELLO_ACK` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(28);
        out.extend_from_slice(&self.session_id.to_be_bytes());
        out.extend_from_slice(&self.credits.to_be_bytes());
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&self.acked_chunks.to_be_bytes());
        out
    }

    /// Parses a `HELLO_ACK` payload.
    ///
    /// # Errors
    ///
    /// [`CollectorError::Protocol`] unless the payload is exactly 28
    /// bytes.
    pub fn decode(data: &[u8]) -> Result<HelloAck, CollectorError> {
        if data.len() != 28 {
            return Err(CollectorError::Protocol(format!(
                "HELLO_ACK: want 28 bytes, got {}",
                data.len()
            )));
        }
        let mut data = data;
        let session_id = u64::from_be_bytes(take_n(&mut data, "HELLO_ACK session id")?);
        let credits = u32::from_be_bytes(take_n(&mut data, "HELLO_ACK credits")?);
        let epoch = u64::from_be_bytes(take_n(&mut data, "HELLO_ACK epoch")?);
        let acked_chunks = u64::from_be_bytes(take_n(&mut data, "HELLO_ACK watermark")?);
        Ok(HelloAck { session_id, credits, epoch, acked_chunks })
    }
}

/// Errors surfaced by the collector client and daemon.
#[derive(Debug)]
pub enum CollectorError {
    /// Transport or storage failure (framing, sockets, chunk files).
    Io(TraceIoError),
    /// The peer violated the protocol (unexpected frame, bad payload).
    Protocol(String),
    /// The server reported a failure via an `ERROR` frame.
    Remote {
        /// The server's error code (`None` for codes this client
        /// version does not know).
        code: Option<ErrorCode>,
        /// Human-readable server message.
        message: String,
    },
}

impl fmt::Display for CollectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectorError::Io(e) => write!(f, "collector i/o error: {e}"),
            CollectorError::Protocol(msg) => write!(f, "collector protocol error: {msg}"),
            CollectorError::Remote { code, message } => {
                write!(f, "collector server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for CollectorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CollectorError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceIoError> for CollectorError {
    fn from(e: TraceIoError) -> Self {
        CollectorError::Io(e)
    }
}

impl From<std::io::Error> for CollectorError {
    fn from(e: std::io::Error) -> Self {
        CollectorError::Io(TraceIoError::Io(e))
    }
}

/// What a [`QuerySpec`] is asked about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryTarget {
    /// A collector session, by name — live or finished.
    Session(String),
    /// A chunk directory, by path on the daemon's filesystem.
    Dir(String),
    /// Every session the daemon holds, composed through
    /// [`rlscope_core::analysis::Analysis::of_sessions`] — the target of
    /// `QUERY_ALL` frames. Live sessions answer over their consistent
    /// acked prefix; finished and aborted ones over their directories.
    AllSessions,
}

/// An `Analysis`-shaped query, wire-codable.
///
/// Byte layout (all integers big-endian, strings UTF-8):
///
/// ```text
/// target_kind:u8        0 = session name, 1 = chunk dir path,
///                       2 = all sessions (empty target string)
/// target_len:u16 | target bytes
/// flags:u8              bit 0 phase filter, bit 1 process filter,
///                       bit 2 operation filter, bit 3 time window
/// [phase_len:u16 | phase]          if bit 0
/// [pid:u32]                        if bit 1
/// [op_len:u16 | operation]         if bit 2
/// [lo:u64 | hi:u64]                if bit 3
/// dims:u8               bit 0 Dim::Phase, bit 1 Dim::Process,
///                       bit 2 Dim::Operation, bit 3 Dim::Session
/// ```
///
/// Decoding validates every field and rejects trailing bytes, unknown
/// flag bits, and non-UTF-8 strings — the query codec holds the same
/// "corruption is an error, never a panic" line as the chunk codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// What to query.
    pub target: QueryTarget,
    /// Keep only time attributed to this phase.
    pub phase: Option<String>,
    /// Keep only this process.
    pub process: Option<u32>,
    /// Keep only this operation's rows.
    pub operation: Option<String>,
    /// Restrict attribution to `[lo, hi)` nanoseconds (finished
    /// targets only).
    pub window: Option<(u64, u64)>,
    /// Grouping dimensions (deduplicated; output order is canonical
    /// regardless of request order).
    pub dims: Vec<Dim>,
}

const FLAG_PHASE: u8 = 1;
const FLAG_PROCESS: u8 = 1 << 1;
const FLAG_OPERATION: u8 = 1 << 2;
const FLAG_WINDOW: u8 = 1 << 3;

impl QuerySpec {
    /// A query over a collector session (live or finished).
    pub fn session(name: impl Into<String>) -> Self {
        Self::new(QueryTarget::Session(name.into()))
    }

    /// A query over a chunk directory on the daemon's filesystem.
    pub fn dir(path: impl Into<String>) -> Self {
        Self::new(QueryTarget::Dir(path.into()))
    }

    /// A cross-session query over every session the daemon holds (sent
    /// as a `QUERY_ALL` frame; answered with a `QUERY_ALL_OK`).
    pub fn all_sessions() -> Self {
        Self::new(QueryTarget::AllSessions)
    }

    fn new(target: QueryTarget) -> Self {
        QuerySpec {
            target,
            phase: None,
            process: None,
            operation: None,
            window: None,
            dims: Vec::new(),
        }
    }

    /// Filters to the named phase.
    pub fn phase(mut self, name: impl Into<String>) -> Self {
        self.phase = Some(name.into());
        self
    }

    /// Filters to one process.
    pub fn process(mut self, pid: u32) -> Self {
        self.process = Some(pid);
        self
    }

    /// Filters to one operation's rows.
    pub fn operation(mut self, name: impl Into<String>) -> Self {
        self.operation = Some(name.into());
        self
    }

    /// Restricts attribution to `[lo, hi)` nanoseconds.
    pub fn window(mut self, lo: u64, hi: u64) -> Self {
        self.window = Some((lo, hi));
        self
    }

    /// Adds grouping dimensions.
    pub fn group_by(mut self, dims: impl IntoIterator<Item = Dim>) -> Self {
        for d in dims {
            if !self.dims.contains(&d) {
                self.dims.push(d);
            }
        }
        self
    }

    /// Serializes the spec to its wire form (also the cache key for
    /// finished-target results — byte-equal specs are result-equal).
    pub fn encode(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u16).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::with_capacity(64);
        let (kind, target) = match &self.target {
            QueryTarget::Session(name) => (0u8, name.as_str()),
            QueryTarget::Dir(path) => (1u8, path.as_str()),
            QueryTarget::AllSessions => (2u8, ""),
        };
        out.push(kind);
        put_str(&mut out, target);
        let mut flags = 0u8;
        flags |= if self.phase.is_some() { FLAG_PHASE } else { 0 };
        flags |= if self.process.is_some() { FLAG_PROCESS } else { 0 };
        flags |= if self.operation.is_some() { FLAG_OPERATION } else { 0 };
        flags |= if self.window.is_some() { FLAG_WINDOW } else { 0 };
        out.push(flags);
        if let Some(p) = &self.phase {
            put_str(&mut out, p);
        }
        if let Some(pid) = self.process {
            out.extend_from_slice(&pid.to_be_bytes());
        }
        if let Some(op) = &self.operation {
            put_str(&mut out, op);
        }
        if let Some((lo, hi)) = self.window {
            out.extend_from_slice(&lo.to_be_bytes());
            out.extend_from_slice(&hi.to_be_bytes());
        }
        let mut dims = 0u8;
        for d in &self.dims {
            dims |= match d {
                Dim::Phase => 1,
                Dim::Process => 1 << 1,
                Dim::Operation => 1 << 2,
                Dim::Session => 1 << 3,
            };
        }
        out.push(dims);
        out
    }

    /// Parses a wire-form spec, validating every field.
    ///
    /// # Errors
    ///
    /// [`CollectorError::Protocol`] on truncation, unknown flag or
    /// target-kind bits, non-UTF-8 strings, or trailing bytes.
    pub fn decode(mut data: &[u8]) -> Result<QuerySpec, CollectorError> {
        fn bad(what: &str) -> CollectorError {
            CollectorError::Protocol(format!("query spec: {what}"))
        }
        let [target_kind] = take_n(&mut data, "query spec target kind")?;
        let target = take_str(&mut data, "target")?;
        let target = match target_kind {
            0 => QueryTarget::Session(target),
            1 => QueryTarget::Dir(target),
            2 if target.is_empty() => QueryTarget::AllSessions,
            2 => return Err(bad("all-sessions target carries a name")),
            k => return Err(bad(&format!("unknown target kind {k}"))),
        };
        let [flags] = take_n(&mut data, "flags")?;
        if flags & !(FLAG_PHASE | FLAG_PROCESS | FLAG_OPERATION | FLAG_WINDOW) != 0 {
            return Err(bad("unknown flag bits"));
        }
        let phase =
            if flags & FLAG_PHASE != 0 { Some(take_str(&mut data, "phase")?) } else { None };
        let process = if flags & FLAG_PROCESS != 0 {
            Some(u32::from_be_bytes(take_n(&mut data, "pid")?))
        } else {
            None
        };
        let operation = if flags & FLAG_OPERATION != 0 {
            Some(take_str(&mut data, "operation")?)
        } else {
            None
        };
        let window = if flags & FLAG_WINDOW != 0 {
            let lo = u64::from_be_bytes(take_n(&mut data, "window")?);
            let hi = u64::from_be_bytes(take_n(&mut data, "window")?);
            Some((lo, hi))
        } else {
            None
        };
        let [dim_bits] = take_n(&mut data, "dims")?;
        if dim_bits & !0b1111 != 0 {
            return Err(bad("unknown dim bits"));
        }
        let mut dims = Vec::new();
        for (bit, dim) in [
            (1, Dim::Phase),
            (1 << 1, Dim::Process),
            (1 << 2, Dim::Operation),
            (1 << 3, Dim::Session),
        ] {
            if dim_bits & bit != 0 {
                dims.push(dim);
            }
        }
        if !data.is_empty() {
            return Err(bad("trailing bytes"));
        }
        Ok(QuerySpec { target, phase, process, operation, window, dims })
    }
}

/// A successful query result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReply {
    /// True when answered from a live session's in-flight sweep state
    /// (a consistent prefix); false for finished targets.
    pub live: bool,
    /// True when served from the finished-target result cache (always
    /// false for live answers — they are never cached).
    pub cache_hit: bool,
    /// Events the answer covers: the live prefix length, or the
    /// finished directory's total.
    pub events_observed: u64,
    /// The query's canonical JSON (same bytes
    /// [`rlscope_core::analysis::Analysis::canonical_json`] produces).
    pub canonical_json: String,
}

impl QueryReply {
    /// Serializes to the `QUERY_OK` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.canonical_json.len());
        let mut flags = 0u8;
        flags |= u8::from(self.live);
        flags |= u8::from(self.cache_hit) << 1;
        out.push(flags);
        out.extend_from_slice(&self.events_observed.to_be_bytes());
        out.extend_from_slice(self.canonical_json.as_bytes());
        out
    }

    /// Parses a `QUERY_OK` payload.
    ///
    /// # Errors
    ///
    /// [`CollectorError::Protocol`] on truncation, unknown flag bits, or
    /// non-UTF-8 JSON bytes.
    pub fn decode(mut data: &[u8]) -> Result<QueryReply, CollectorError> {
        let [flags] = take_n(&mut data, "query reply flags")?;
        if flags & !0b11 != 0 {
            return Err(CollectorError::Protocol("unknown query reply flags".into()));
        }
        let events_observed = u64::from_be_bytes(take_n(&mut data, "query reply events")?);
        let canonical_json = String::from_utf8(data.to_vec())
            .map_err(|_| CollectorError::Protocol("non-utf8 query reply".into()))?;
        Ok(QueryReply {
            live: flags & 1 != 0,
            cache_hit: flags & 2 != 0,
            events_observed,
            canonical_json,
        })
    }
}

/// One session in a `SESSIONS` listing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionInfo {
    /// The session name.
    pub name: String,
    /// True while the session is still streaming (attached or detached);
    /// false for finished and aborted sessions.
    pub live: bool,
    /// Events the daemon holds for the session: the live acked prefix
    /// length, or the finished directory's total.
    pub events: u64,
}

/// A `SESSIONS` payload: every session a daemon holds, name-sorted.
///
/// Byte layout: `count:u32`, then per session `name_len:u16 | name |
/// live:u8 | events:u64`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionList {
    /// The sessions, sorted by name.
    pub sessions: Vec<SessionInfo>,
}

impl SessionList {
    /// Serializes to the `SESSIONS` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.sessions.len() * 24);
        out.extend_from_slice(&(self.sessions.len() as u32).to_be_bytes());
        for s in &self.sessions {
            out.extend_from_slice(&(s.name.len() as u16).to_be_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.push(u8::from(s.live));
            out.extend_from_slice(&s.events.to_be_bytes());
        }
        out
    }

    /// Parses a `SESSIONS` payload.
    ///
    /// # Errors
    ///
    /// [`CollectorError::Protocol`] on truncation, unknown live bytes,
    /// non-UTF-8 names, or trailing bytes.
    pub fn decode(mut data: &[u8]) -> Result<SessionList, CollectorError> {
        let bad = |what: &str| CollectorError::Protocol(format!("session list: {what}"));
        let count = u32::from_be_bytes(take_n(&mut data, "session list count")?) as usize;
        let mut sessions = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let name = take_str(&mut data, "session name")?;
            let [live] = take_n(&mut data, "session live flag")?;
            let live = match live {
                0 => false,
                1 => true,
                b => return Err(bad(&format!("unknown live byte {b}"))),
            };
            let events = u64::from_be_bytes(take_n(&mut data, "session events")?);
            sessions.push(SessionInfo { name, live, events });
        }
        if !data.is_empty() {
            return Err(bad("trailing bytes"));
        }
        Ok(SessionList { sessions })
    }
}

/// A `QUERY_ALL_OK` payload: the cross-session result as
/// machine-mergeable grouped tables (not JSON — the federation tier
/// merges tables from many daemons with
/// [`BreakdownTable::merge`] before rendering).
///
/// Byte layout (integers big-endian, strings UTF-8 with `u16` length):
///
/// ```text
/// flags:u8              bit 0: any session answered live
/// events:u64            events covered across all sessions
/// session_count:u32 | per session: name_len:u16 | name
/// group_count:u32
///   per group:
///     kflags:u8         bit 0 session, bit 1 phase,
///                       bit 2 process, bit 3 operation
///     [session string] [phase string] [pid:u32] [operation string]
///     row_count:u32
///       per row: op string | cpu:u8 (0 = none, 1 Python, 2 Simulator,
///                3 Backend, 4 CudaApi) | gpu:u8 | nanos:u64
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryAllReply {
    /// True when any composed session answered from live sweep state.
    pub live: bool,
    /// Events the answer covers, summed across sessions.
    pub events_observed: u64,
    /// The sessions composed into the answer, in composition (name)
    /// order — present even when a filter leaves a session nothing to
    /// contribute.
    pub sessions: Vec<String>,
    /// The resolved groups, in pipeline group order (an ungrouped query
    /// is a single entry with the all-`None` key).
    pub groups: Vec<(GroupKey, BreakdownTable)>,
}

impl QueryAllReply {
    /// Serializes to the `QUERY_ALL_OK` payload.
    pub fn encode(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u16).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::with_capacity(64);
        out.push(u8::from(self.live));
        out.extend_from_slice(&self.events_observed.to_be_bytes());
        out.extend_from_slice(&(self.sessions.len() as u32).to_be_bytes());
        for name in &self.sessions {
            put_str(&mut out, name);
        }
        out.extend_from_slice(&(self.groups.len() as u32).to_be_bytes());
        for (key, table) in &self.groups {
            let mut kflags = 0u8;
            kflags |= u8::from(key.session.is_some());
            kflags |= u8::from(key.phase.is_some()) << 1;
            kflags |= u8::from(key.process.is_some()) << 2;
            kflags |= u8::from(key.operation.is_some()) << 3;
            out.push(kflags);
            if let Some(s) = &key.session {
                put_str(&mut out, s);
            }
            if let Some(p) = &key.phase {
                put_str(&mut out, p);
            }
            if let Some(pid) = key.process {
                out.extend_from_slice(&pid.as_u32().to_be_bytes());
            }
            if let Some(op) = &key.operation {
                put_str(&mut out, op);
            }
            out.extend_from_slice(&(table.len() as u32).to_be_bytes());
            for (bucket, d) in table.iter() {
                put_str(&mut out, &bucket.operation);
                out.push(match bucket.cpu {
                    None => 0,
                    Some(CpuCategory::Python) => 1,
                    Some(CpuCategory::Simulator) => 2,
                    Some(CpuCategory::Backend) => 3,
                    Some(CpuCategory::CudaApi) => 4,
                });
                out.push(u8::from(bucket.gpu));
                out.extend_from_slice(&d.as_nanos().to_be_bytes());
            }
        }
        out
    }

    /// Parses a `QUERY_ALL_OK` payload, validating every field.
    ///
    /// # Errors
    ///
    /// [`CollectorError::Protocol`] on truncation, unknown flag/category
    /// bytes, non-UTF-8 strings, or trailing bytes.
    pub fn decode(mut data: &[u8]) -> Result<QueryAllReply, CollectorError> {
        let bad = |what: &str| CollectorError::Protocol(format!("query-all reply: {what}"));
        let [flags] = take_n(&mut data, "query-all flags")?;
        if flags & !1 != 0 {
            return Err(bad("unknown flag bits"));
        }
        let events_observed = u64::from_be_bytes(take_n(&mut data, "query-all events")?);
        let count = u32::from_be_bytes(take_n(&mut data, "session count")?) as usize;
        let mut sessions = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            sessions.push(take_str(&mut data, "session name")?);
        }
        let count = u32::from_be_bytes(take_n(&mut data, "group count")?) as usize;
        let mut groups = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let [kflags] = take_n(&mut data, "group key flags")?;
            if kflags & !0b1111 != 0 {
                return Err(bad("unknown group key flags"));
            }
            let session: Option<Arc<str>> = if kflags & 1 != 0 {
                Some(Arc::from(take_str(&mut data, "group session")?))
            } else {
                None
            };
            let phase: Option<Arc<str>> = if kflags & 2 != 0 {
                Some(Arc::from(take_str(&mut data, "group phase")?))
            } else {
                None
            };
            let process = if kflags & 4 != 0 {
                Some(ProcessId(u32::from_be_bytes(take_n(&mut data, "group pid")?)))
            } else {
                None
            };
            let operation: Option<Arc<str>> = if kflags & 8 != 0 {
                Some(Arc::from(take_str(&mut data, "group operation")?))
            } else {
                None
            };
            let rows = u32::from_be_bytes(take_n(&mut data, "row count")?) as usize;
            let mut table = BreakdownTable::new();
            for _ in 0..rows {
                let op: Arc<str> = Arc::from(take_str(&mut data, "bucket operation")?);
                let [cpu] = take_n(&mut data, "bucket cpu")?;
                let cpu = match cpu {
                    0 => None,
                    1 => Some(CpuCategory::Python),
                    2 => Some(CpuCategory::Simulator),
                    3 => Some(CpuCategory::Backend),
                    4 => Some(CpuCategory::CudaApi),
                    b => return Err(bad(&format!("unknown cpu byte {b}"))),
                };
                let [gpu] = take_n(&mut data, "bucket gpu")?;
                let gpu = match gpu {
                    0 => false,
                    1 => true,
                    b => return Err(bad(&format!("unknown gpu byte {b}"))),
                };
                let nanos = u64::from_be_bytes(take_n(&mut data, "bucket nanos")?);
                table.add(BucketKey { operation: op, cpu, gpu }, DurationNs::from_nanos(nanos));
            }
            groups.push((GroupKey { session, phase, process, operation }, table));
        }
        if !data.is_empty() {
            return Err(bad("trailing bytes"));
        }
        Ok(QueryAllReply { live: flags & 1 != 0, events_observed, sessions, groups })
    }
}

/// Pops `n` bytes off the front of `data` (shared by the multi-field
/// payload decoders).
fn take<'a>(data: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], CollectorError> {
    let s: &'a [u8] = data;
    match s.split_at_checked(n) {
        Some((head, rest)) => {
            *data = rest;
            Ok(head)
        }
        None => Err(CollectorError::Protocol(format!("truncated {what}"))),
    }
}

/// Pops a fixed-size array off the front of `data` — the never-panic
/// counterpart of `data[..N].try_into().unwrap()`.
fn take_n<'a, const N: usize>(data: &mut &'a [u8], what: &str) -> Result<[u8; N], CollectorError> {
    let s: &'a [u8] = data;
    match s.split_first_chunk::<N>() {
        Some((head, rest)) => {
            *data = rest;
            Ok(*head)
        }
        None => Err(CollectorError::Protocol(format!("truncated {what}"))),
    }
}

/// Pops a `u16`-length-prefixed UTF-8 string off the front of `data`.
fn take_str(data: &mut &[u8], what: &str) -> Result<String, CollectorError> {
    let len = u16::from_be_bytes(take_n(data, what)?) as usize;
    let bytes = take(data, len, what)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| CollectorError::Protocol(format!("non-utf8 {what}")))
}

/// Encodes an `ERROR` payload.
pub(crate) fn encode_error(code: ErrorCode, message: &str) -> Vec<u8> {
    let msg = &message.as_bytes()[..message.len().min(u16::MAX as usize)];
    let mut out = Vec::with_capacity(3 + msg.len());
    out.push(code as u8);
    out.extend_from_slice(&(msg.len() as u16).to_be_bytes());
    out.extend_from_slice(msg);
    out
}

/// Parses an `ERROR` payload into the [`CollectorError::Remote`] form.
pub(crate) fn decode_error(data: &[u8]) -> CollectorError {
    let Some((header, rest)) = data.split_first_chunk::<3>() else {
        return CollectorError::Protocol("truncated error frame".into());
    };
    let [code_byte, l0, l1] = *header;
    let code = ErrorCode::from_u8(code_byte);
    let len = (u16::from_be_bytes([l0, l1]) as usize).min(rest.len());
    let message = String::from_utf8_lossy(rest.get(..len).unwrap_or(rest)).into_owned();
    CollectorError::Remote { code, message }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_spec_round_trips() {
        let specs = vec![
            QuerySpec::session("s1"),
            QuerySpec::dir("/tmp/run"),
            QuerySpec::session("s2")
                .phase("training")
                .process(3)
                .operation("backprop")
                .window(100, 2_000)
                .group_by([Dim::Phase, Dim::Process, Dim::Operation]),
            QuerySpec::session("s3").group_by([Dim::Operation]),
        ];
        for spec in specs {
            let decoded = QuerySpec::decode(&spec.encode()).unwrap();
            assert_eq!(decoded, spec);
        }
    }

    #[test]
    fn query_spec_rejects_malformed_bytes() {
        let good = QuerySpec::session("s").phase("p").encode();
        for cut in 0..good.len() {
            assert!(QuerySpec::decode(&good[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(QuerySpec::decode(&trailing).is_err());
        let mut bad_kind = good.clone();
        bad_kind[0] = 9;
        assert!(QuerySpec::decode(&bad_kind).is_err());
        let mut bad_dims = good;
        *bad_dims.last_mut().unwrap() = 0xf0;
        assert!(QuerySpec::decode(&bad_dims).is_err());
    }

    #[test]
    fn all_sessions_spec_round_trips_with_session_dim() {
        let spec = QuerySpec::all_sessions().phase("train").group_by([
            Dim::Session,
            Dim::Phase,
            Dim::Process,
            Dim::Operation,
        ]);
        // Decode canonicalizes dim order (the wire form is a bit set);
        // grouping semantics are order-independent.
        let decoded = QuerySpec::decode(&spec.encode()).unwrap();
        assert_eq!(decoded.target, spec.target);
        assert_eq!(decoded.phase, spec.phase);
        let mut dims = decoded.dims.clone();
        dims.sort_by_key(|d| format!("{d:?}"));
        let mut want = spec.dims.clone();
        want.sort_by_key(|d| format!("{d:?}"));
        assert_eq!(dims, want);
        assert_eq!(decoded.encode(), spec.encode());
        // An all-sessions target must not carry a name.
        let mut named = spec.encode();
        named[0] = 2;
        named[2] = 1; // target_len = 1 — now misaligned and named
        assert!(QuerySpec::decode(&named).is_err());
    }

    #[test]
    fn session_list_round_trips_and_rejects_malformed_bytes() {
        let list = SessionList {
            sessions: vec![
                SessionInfo { name: "a".into(), live: true, events: 3 },
                SessionInfo { name: "train-07".into(), live: false, events: 4_096 },
            ],
        };
        assert_eq!(SessionList::decode(&list.encode()).unwrap(), list);
        assert_eq!(
            SessionList::decode(&SessionList::default().encode()).unwrap(),
            SessionList::default()
        );
        let good = list.encode();
        for cut in 0..good.len() {
            assert!(SessionList::decode(&good[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(SessionList::decode(&trailing).is_err());
        let mut bad_live = good;
        bad_live[7] = 9; // the first session's live byte
        assert!(SessionList::decode(&bad_live).is_err());
    }

    #[test]
    fn query_all_reply_round_trips_and_rejects_malformed_bytes() {
        let mut t1 = BreakdownTable::new();
        t1.add(
            BucketKey { operation: Arc::from("step"), cpu: Some(CpuCategory::Python), gpu: false },
            DurationNs::from_nanos(1_234),
        );
        t1.add(
            BucketKey { operation: Arc::from(BucketKey::UNTRACKED), cpu: None, gpu: true },
            DurationNs::from_nanos(99),
        );
        let mut t2 = BreakdownTable::new();
        t2.add(
            BucketKey { operation: Arc::from("step"), cpu: Some(CpuCategory::CudaApi), gpu: true },
            DurationNs::from_nanos(7),
        );
        let reply = QueryAllReply {
            live: true,
            events_observed: 41,
            sessions: vec!["s1".into(), "s2".into()],
            groups: vec![
                (
                    GroupKey {
                        session: Some(Arc::from("s1")),
                        phase: None,
                        process: None,
                        operation: None,
                    },
                    t1,
                ),
                (
                    GroupKey {
                        session: Some(Arc::from("s2")),
                        phase: Some(Arc::from("train")),
                        process: Some(ProcessId(3)),
                        operation: Some(Arc::from("step")),
                    },
                    t2,
                ),
            ],
        };
        assert_eq!(QueryAllReply::decode(&reply.encode()).unwrap(), reply);
        // The empty reply (a daemon holding no sessions) round-trips too.
        let empty = QueryAllReply::default();
        assert_eq!(QueryAllReply::decode(&empty.encode()).unwrap(), empty);
        let good = reply.encode();
        for cut in 0..good.len() {
            assert!(QueryAllReply::decode(&good[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(QueryAllReply::decode(&trailing).is_err());
        let mut bad_flags = good;
        bad_flags[0] = 0x80;
        assert!(QueryAllReply::decode(&bad_flags).is_err());
    }

    #[test]
    fn query_reply_round_trips() {
        let reply = QueryReply {
            live: true,
            cache_hit: false,
            events_observed: 12_345,
            canonical_json: "[\n]\n".to_string(),
        };
        assert_eq!(QueryReply::decode(&reply.encode()).unwrap(), reply);
        assert!(QueryReply::decode(&[0x04, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        assert!(QueryReply::decode(&[]).is_err());
    }

    #[test]
    fn hello_round_trips_and_rejects_malformed_bytes() {
        for req in [
            HelloRequest::new_session("s1"),
            HelloRequest::resume("session-2", 17),
            HelloRequest { version: 1, name: "old".into(), resume_epoch: None },
        ] {
            assert_eq!(HelloRequest::decode(&req.encode()).unwrap(), req, "{req:?}");
        }
        let good = HelloRequest::resume("abc", 9).encode();
        for cut in 0..good.len() {
            assert!(HelloRequest::decode(&good[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(HelloRequest::decode(&trailing).is_err());
        let mut bad_mode = good;
        bad_mode[4] = 2;
        assert!(HelloRequest::decode(&bad_mode).is_err());
    }

    #[test]
    fn hello_ack_round_trips() {
        let ack = HelloAck { session_id: 5, credits: 8, epoch: 3, acked_chunks: 11 };
        assert_eq!(HelloAck::decode(&ack.encode()).unwrap(), ack);
        assert!(HelloAck::decode(&ack.encode()[..27]).is_err());
        assert!(HelloAck::decode(&[0u8; 29]).is_err());
    }

    #[test]
    fn new_error_codes_round_trip_the_wire_byte() {
        for code in [
            ErrorCode::SessionActive,
            ErrorCode::EpochMismatch,
            ErrorCode::IdleTimeout,
            ErrorCode::SessionAborted,
        ] {
            assert_eq!(ErrorCode::from_u8(code as u8), Some(code));
        }
        assert_eq!(ErrorCode::from_u8(13), None);
    }

    #[test]
    fn error_frames_round_trip() {
        let err = decode_error(&encode_error(ErrorCode::CorruptChunk, "bad chunk"));
        match err {
            CollectorError::Remote { code, message } => {
                assert_eq!(code, Some(ErrorCode::CorruptChunk));
                assert_eq!(message, "bad chunk");
            }
            other => panic!("unexpected {other}"),
        }
    }
}
