//! String interning: dense `u32` ids for operation and event names.
//!
//! The overlap sweep ([`crate::overlap`]) and the v2 trace codec
//! ([`crate::store`]) both replace repeated `Arc<str>` comparisons and
//! allocations with integer ids. An [`Interner`] assigns ids densely in
//! first-intern order, so they can index flat arrays directly — the
//! overlap engine keys its accumulator by `(op_id, cpu_tag, gpu)` and the
//! codec writes a per-chunk string table of interned names followed by
//! id references.
//!
//! Ids are only meaningful relative to the interner that produced them;
//! a fresh interner is built per sweep / per chunk, which keeps the id
//! space dense and makes cross-process parallel analysis trivially safe
//! (no shared mutable state).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

/// FNV-1a. Event and operation names are short (a few to a few dozen
/// bytes), where SipHash's fixed per-lookup overhead dominates the
/// interner's hot path; FNV keeps the per-event cost to a couple of
/// nanoseconds. Not DoS-resistant — fine for trace-local tables.
#[derive(Debug, Default, Clone, Copy)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Maps strings to dense `u32` ids and back.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    by_name: FnvMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty interner with room for `cap` distinct strings.
    pub fn with_capacity(cap: usize) -> Self {
        Interner {
            by_name: FnvMap::with_capacity_and_hasher(cap, Default::default()),
            names: Vec::with_capacity(cap),
        }
    }

    /// Interns a shared string, returning its dense id.
    ///
    /// Re-interning an already-seen string is cheap (one hash lookup)
    /// and returns the same id; new strings clone the `Arc`, not the
    /// bytes.
    pub fn intern(&mut self, name: &Arc<str>) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.by_name.insert(name.clone(), id);
        self.names.push(name.clone());
        id
    }

    /// Interns a borrowed string (allocates an `Arc` only on first sight).
    pub fn intern_str(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let arc: Arc<str> = Arc::from(name);
        let id = self.names.len() as u32;
        self.by_name.insert(arc.clone(), id);
        self.names.push(arc);
        id
    }

    /// The id of an already-interned string, if any.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The string behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &Arc<str> {
        &self.names[id as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All interned strings, in id order.
    pub fn names(&self) -> &[Arc<str>] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut int = Interner::new();
        let a = int.intern_str("alpha");
        let b = int.intern_str("beta");
        assert_eq!((a, b), (0, 1));
        assert_eq!(int.intern_str("alpha"), 0);
        assert_eq!(int.len(), 2);
        assert_eq!(&**int.resolve(1), "beta");
    }

    #[test]
    fn intern_shares_the_arc() {
        let mut int = Interner::new();
        let name: Arc<str> = Arc::from("op");
        let id = int.intern(&name);
        assert!(Arc::ptr_eq(int.resolve(id), &name));
        // Re-interning an equal but distinct Arc returns the original id.
        let other: Arc<str> = Arc::from("op");
        assert_eq!(int.intern(&other), id);
    }

    #[test]
    fn get_without_insert() {
        let mut int = Interner::new();
        assert_eq!(int.get("missing"), None);
        int.intern_str("present");
        assert_eq!(int.get("present"), Some(0));
    }
}
