//! Overhead correction: subtracting calibrated book-keeping time at the
//! point where it occurred (paper §3.4, Appendix C.3–C.4).
//!
//! RL-Scope knows *when* book-keeping occurred from the events it already
//! records (every transition, API call, and annotation is an occurrence),
//! and *how much* each occurrence costs from calibration. Correction
//! subtracts `count × mean` from the affected buckets of the breakdown:
//!
//! * Python↔C interception → the Python bucket of the operation where the
//!   transition happened (split by simulator vs backend transitions);
//! * annotation book-keeping → the Python bucket of the annotated
//!   operation;
//! * CUDA API interception and CUPTI inflation → the CUDA-API bucket of
//!   the operation issuing the call.
//!
//! Skipping this correction reproduces the paper's §C.4 failure modes:
//! inflated totals (1.6–2.2×) and a CUDA/GPU ratio overstated from 3.6× to
//! 5.7×.

use crate::calibrate::Calibration;
use crate::event::CpuCategory;
use crate::overlap::{BreakdownTable, BucketKey};
use crate::profiler::TransitionKind;
use crate::trace::Trace;
use rlscope_sim::cuda::CudaApiKind;
use rlscope_sim::time::DurationNs;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Overhead attributed to each book-keeping source (the stacked overhead
/// bars of the paper's Figure 11).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadBreakdown {
    /// CUPTI-internal inflation.
    pub cupti: DurationNs,
    /// CUDA API interception book-keeping.
    pub cuda_interception: DurationNs,
    /// Python→Backend interception wrappers.
    pub python_backend: DurationNs,
    /// Python→Simulator interception wrappers.
    pub python_simulator: DurationNs,
    /// Annotation book-keeping.
    pub python_annotation: DurationNs,
}

impl OverheadBreakdown {
    /// Total estimated profiling overhead.
    pub fn total(&self) -> DurationNs {
        self.cupti
            + self.cuda_interception
            + self.python_backend
            + self.python_simulator
            + self.python_annotation
    }
}

/// A corrected profile: the breakdown with overhead removed, the corrected
/// total training time, and the overhead estimate itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrectedProfile {
    /// Corrected per-bucket breakdown.
    pub table: BreakdownTable,
    /// Corrected total training time (wall time minus estimated overhead).
    pub corrected_total: DurationNs,
    /// The uncorrected wall time, for §C.4-style comparisons.
    pub instrumented_total: DurationNs,
    /// Estimated overhead by source.
    pub overhead: OverheadBreakdown,
}

impl CorrectedProfile {
    /// Inflation factor the profiler imposed: instrumented / corrected.
    pub fn inflation(&self) -> f64 {
        self.instrumented_total.ratio(self.corrected_total)
    }
}

/// Subtracts `amount` from the `(op, cat)` buckets, taking from the
/// CPU-only bucket first, then the CPU+GPU bucket.
fn subtract_split(table: &mut BreakdownTable, op: &Arc<str>, cat: CpuCategory, amount: DurationNs) {
    let key_cpu = BucketKey { operation: op.clone(), cpu: Some(cat), gpu: false };
    let have = table.get(&key_cpu);
    let first = amount.min(have);
    table.subtract(&key_cpu, first);
    let rest = amount.saturating_sub(first);
    if !rest.is_zero() {
        let key_both = BucketKey { operation: op.clone(), cpu: Some(cat), gpu: true };
        table.subtract(&key_both, rest);
    }
}

/// Subtracts `amount` from Python buckets across all operations, largest
/// first (used for costs whose per-operation attribution is unknown).
fn subtract_python_pool(table: &mut BreakdownTable, amount: DurationNs) {
    let mut python_buckets: Vec<(BucketKey, DurationNs)> = table
        .iter()
        .filter(|(k, _)| k.cpu == Some(CpuCategory::Python))
        .map(|(k, d)| (k.clone(), d))
        .collect();
    python_buckets.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    let mut remaining = amount;
    for (key, have) in python_buckets {
        if remaining.is_zero() {
            break;
        }
        let take = remaining.min(have);
        table.subtract(&key, take);
        remaining = remaining.saturating_sub(take);
    }
}

/// The book-keeping counters and wall time correction needs, detached
/// from any particular [`Trace`] so the unified analysis pipeline can
/// build them from merged sources too.
#[derive(Debug, Clone)]
pub(crate) struct CorrectionInputs {
    /// Operation annotations recorded.
    pub annotations: u64,
    /// Per-(operation, kind) transition counts.
    pub per_op_transitions: Vec<((Arc<str>, TransitionKind), u64)>,
    /// Per-CUDA-API `(call count, total CPU duration)`.
    pub api_stats: Vec<(CudaApiKind, (u64, DurationNs))>,
    /// Instrumented wall time.
    pub wall: DurationNs,
}

impl CorrectionInputs {
    /// Inputs of one finalized trace.
    pub fn from_trace(trace: &Trace) -> Self {
        CorrectionInputs {
            annotations: trace.counts.annotations,
            per_op_transitions: trace.per_op_transitions.clone(),
            api_stats: trace.api_stats.clone(),
            wall: trace.wall_time(),
        }
    }

    /// Inputs of several traces analyzed as one merged stream: counters
    /// sum (through the same find-or-push merges as [`Trace::merge`], so
    /// the two cannot diverge), the wall time is the latest finalization
    /// instant.
    pub fn from_traces(traces: &[Trace]) -> Self {
        let mut merged = CorrectionInputs {
            annotations: 0,
            per_op_transitions: Vec::new(),
            api_stats: Vec::new(),
            wall: DurationNs::ZERO,
        };
        for t in traces {
            merged.annotations += t.counts.annotations;
            merged.wall = merged.wall.max(t.wall_time());
            crate::trace::merge_transition_counts(
                &mut merged.per_op_transitions,
                t.per_op_transitions.iter().cloned(),
            );
            crate::trace::merge_api_stats(&mut merged.api_stats, t.api_stats.iter().copied());
        }
        merged
    }
}

/// Subtracts calibrated overhead from `table` in place at the buckets
/// where it occurred, returning the per-source overhead estimate. This is
/// the correction engine shared by [`correct`] and the analysis
/// pipeline's [`crate::analysis::Analysis::corrected`].
pub(crate) fn apply_correction(
    table: &mut BreakdownTable,
    inputs: &CorrectionInputs,
    cal: &Calibration,
) -> OverheadBreakdown {
    let mut overhead = OverheadBreakdown::default();

    // Python↔C interception and CUDA interception, attributed per
    // operation from the transition counters.
    let cupti_per_call = cal.cupti_weighted_mean(&inputs.api_stats);
    for ((op, kind), n) in &inputs.per_op_transitions {
        match kind {
            TransitionKind::Backend => {
                let amount = cal.py_interception_mean * *n;
                overhead.python_backend += amount;
                subtract_split(table, op, CpuCategory::Python, amount);
            }
            TransitionKind::Simulator => {
                let amount = cal.py_interception_mean * *n;
                overhead.python_simulator += amount;
                subtract_split(table, op, CpuCategory::Python, amount);
            }
            TransitionKind::Cuda => {
                let interception = cal.cuda_interception_mean * *n;
                let cupti = cupti_per_call * *n;
                overhead.cuda_interception += interception;
                overhead.cupti += cupti;
                subtract_split(table, op, CpuCategory::CudaApi, interception + cupti);
            }
        }
    }

    // Annotation book-keeping: per-operation attribution is not tracked,
    // so drain the Python pool.
    let ann = cal.annotation_mean * inputs.annotations;
    overhead.python_annotation = ann;
    subtract_python_pool(table, ann);

    overhead
}

/// Applies calibrated overhead correction to a trace — a wrapper over
/// `Analysis::of(trace).corrected(cal).profile()`
/// ([`crate::analysis::Analysis`]).
pub fn correct(trace: &Trace, cal: &Calibration) -> CorrectedProfile {
    crate::analysis::Analysis::of(trace)
        .corrected(cal)
        .profile()
        .expect("in-memory trace analysis cannot fail")
}

/// The uncorrected view of the same trace (paper §C.4: what analyses look
/// like when correction is skipped) — a wrapper over
/// `Analysis::of(trace).profile()`.
pub fn uncorrected(trace: &Trace) -> CorrectedProfile {
    crate::analysis::Analysis::of(trace).profile().expect("in-memory trace analysis cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BookkeepingCounts, Event, EventKind};
    use rlscope_sim::cuda::CudaApiKind;
    use rlscope_sim::ids::ProcessId;
    use rlscope_sim::time::TimeNs;

    fn us(v: u64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    fn base_trace() -> Trace {
        // 100us total: operation "backprop" covers all of it; python
        // [0,60), cuda api [60,100).
        Trace {
            pid: ProcessId(0),
            events: vec![
                Event::new(ProcessId(0), EventKind::Operation, "backprop", us(0), us(100)),
                Event::new(
                    ProcessId(0),
                    EventKind::Cpu(CpuCategory::Python),
                    "python",
                    us(0),
                    us(60),
                ),
                Event::new(
                    ProcessId(0),
                    EventKind::Cpu(CpuCategory::CudaApi),
                    "cudaLaunchKernel",
                    us(60),
                    us(100),
                ),
            ],
            counts: BookkeepingCounts {
                annotations: 2,
                backend_transitions: 10,
                simulator_transitions: 0,
                cuda_api_calls: 4,
            },
            per_op_transitions: vec![
                ((Arc::from("backprop"), TransitionKind::Backend), 10),
                ((Arc::from("backprop"), TransitionKind::Cuda), 4),
            ],
            api_stats: vec![(CudaApiKind::LaunchKernel, (4, DurationNs::from_micros(40)))],
            iterations: 1,
            wall_end: us(100),
        }
    }

    fn calibration() -> Calibration {
        Calibration {
            annotation_mean: DurationNs::from_micros(1),
            py_interception_mean: DurationNs::from_micros(2),
            cuda_interception_mean: DurationNs::from_micros(1),
            cupti_means: vec![(CudaApiKind::LaunchKernel, DurationNs::from_micros(3))],
        }
    }

    #[test]
    fn correction_subtracts_from_the_right_buckets() {
        let profile = correct(&base_trace(), &calibration());
        // Python bucket: 60 − 10×2 (backend transitions) − 2×1
        // (annotations) = 38.
        let py = profile.table.get(&BucketKey {
            operation: Arc::from("backprop"),
            cpu: Some(CpuCategory::Python),
            gpu: false,
        });
        assert_eq!(py, DurationNs::from_micros(38));
        // CUDA bucket: 40 − 4×(1 + 3) = 24.
        let cuda = profile.table.get(&BucketKey {
            operation: Arc::from("backprop"),
            cpu: Some(CpuCategory::CudaApi),
            gpu: false,
        });
        assert_eq!(cuda, DurationNs::from_micros(24));
    }

    #[test]
    fn corrected_total_subtracts_all_overhead() {
        let profile = correct(&base_trace(), &calibration());
        // Overhead: 20 (py) + 2 (ann) + 4 (api) + 12 (cupti) = 38.
        assert_eq!(profile.overhead.total(), DurationNs::from_micros(38));
        assert_eq!(profile.corrected_total, DurationNs::from_micros(62));
        assert_eq!(profile.instrumented_total, DurationNs::from_micros(100));
        assert!((profile.inflation() - 100.0 / 62.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_breakdown_by_source() {
        let profile = correct(&base_trace(), &calibration());
        assert_eq!(profile.overhead.python_backend, DurationNs::from_micros(20));
        assert_eq!(profile.overhead.python_simulator, DurationNs::ZERO);
        assert_eq!(profile.overhead.python_annotation, DurationNs::from_micros(2));
        assert_eq!(profile.overhead.cuda_interception, DurationNs::from_micros(4));
        assert_eq!(profile.overhead.cupti, DurationNs::from_micros(12));
    }

    #[test]
    fn zero_calibration_changes_nothing() {
        let trace = base_trace();
        let profile = correct(&trace, &Calibration::default());
        assert_eq!(profile.table, trace.breakdown());
        assert_eq!(profile.corrected_total, trace.wall_time());
        assert_eq!(profile.inflation(), 1.0);
    }

    #[test]
    fn uncorrected_view_reports_instrumented_time() {
        let trace = base_trace();
        let profile = uncorrected(&trace);
        assert_eq!(profile.corrected_total, DurationNs::from_micros(100));
        assert_eq!(profile.overhead.total(), DurationNs::ZERO);
    }

    #[test]
    fn oversubtraction_saturates_and_spills_to_gpu_bucket() {
        let mut trace = base_trace();
        // Make the python bucket tiny and add a CPU+GPU python bucket.
        trace.events[1] =
            Event::new(ProcessId(0), EventKind::Cpu(CpuCategory::Python), "python", us(0), us(10));
        trace.events.push(Event::new(
            ProcessId(0),
            EventKind::Gpu(crate::event::GpuCategory::Kernel),
            "k",
            us(5),
            us(10),
        ));
        let profile = correct(&trace, &calibration());
        // Pool/splits never go negative.
        for (_, d) in profile.table.iter() {
            assert!(d >= DurationNs::ZERO);
        }
    }
}
