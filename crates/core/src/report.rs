//! Human-readable reports: the tabular equivalents of the paper's figures.

use crate::analysis::{Analysis, Dim};
use crate::event::CpuCategory;
use crate::overlap::{BreakdownTable, BucketKey};
use crate::profiler::TransitionKind;
use crate::store::TraceIoError;
use crate::trace::{streamed_breakdowns_by_process, Trace};
use rlscope_sim::ids::ProcessId;
use rlscope_sim::smi::UtilizationReport;
use rlscope_sim::time::DurationNs;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// One row of a time-breakdown report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Operation annotation.
    pub operation: String,
    /// Resource combination: `"CPU"`, `"GPU"`, or `"CPU+GPU"`.
    pub resources: String,
    /// Stack-level category label.
    pub category: String,
    /// Attributed time.
    pub time: DurationNs,
    /// Percent of the table total.
    pub percent: f64,
}

/// Renders a breakdown table as rows plus a formatted text table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownReport {
    /// The rows, sorted by operation then time (descending).
    pub rows: Vec<BreakdownRow>,
    /// Total attributed time.
    pub total: DurationNs,
}

impl BreakdownReport {
    /// Builds a report from a breakdown table.
    pub fn from_table(table: &BreakdownTable) -> Self {
        let total = table.total();
        let mut rows: Vec<BreakdownRow> = table
            .iter()
            .map(|(k, d)| BreakdownRow {
                operation: k.operation.to_string(),
                resources: match (k.cpu.is_some(), k.gpu) {
                    (true, true) => "CPU+GPU".into(),
                    (true, false) => "CPU".into(),
                    (false, true) => "GPU".into(),
                    (false, false) => "-".into(),
                },
                category: match k.cpu {
                    Some(c) => c.to_string(),
                    None => "GPU kernel".into(),
                },
                time: d,
                percent: 100.0 * d.ratio(total),
            })
            .collect();
        rows.sort_by(|a, b| a.operation.cmp(&b.operation).then(b.time.cmp(&a.time)));
        BreakdownReport { rows, total }
    }

    /// Formats the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:<8} {:<11} {:>14} {:>7}",
            "operation", "resource", "category", "time", "%"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<24} {:<8} {:<11} {:>14} {:>6.1}%",
                r.operation,
                r.resources,
                r.category,
                r.time.to_string(),
                r.percent
            );
        }
        let _ = writeln!(
            out,
            "{:<24} {:<8} {:<11} {:>14} {:>6.1}%",
            "TOTAL",
            "",
            "",
            self.total.to_string(),
            100.0
        );
        out
    }
}

/// Per-operation language-transition counts per iteration (Figure 4c/4d).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionReport {
    /// `(operation, kind, transitions per iteration)` rows.
    pub rows: Vec<(String, TransitionKind, f64)>,
}

impl TransitionReport {
    /// Builds the report from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut rows: Vec<(String, TransitionKind, f64)> = trace
            .per_op_transitions
            .iter()
            .map(|((op, kind), n)| {
                let per_iter = if trace.iterations == 0 {
                    *n as f64
                } else {
                    *n as f64 / trace.iterations as f64
                };
                (op.to_string(), *kind, per_iter)
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        TransitionReport { rows }
    }

    /// Transitions per iteration for one `(operation, kind)`.
    pub fn per_iteration(&self, op: &str, kind: TransitionKind) -> f64 {
        self.rows.iter().filter(|(o, k, _)| o == op && *k == kind).map(|(_, _, v)| *v).sum()
    }

    /// Formats the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<24} {:<10} {:>16}", "operation", "kind", "transitions/iter");
        for (op, kind, v) in &self.rows {
            let _ = writeln!(out, "{:<24} {:<10} {:>16.1}", op, kind.to_string(), v);
        }
        out
    }
}

/// Per-process summary for scale-up workloads (Figure 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessSummary {
    /// Process id.
    pub pid: ProcessId,
    /// Process name (from the fork graph).
    pub name: String,
    /// Total attributed time in this process.
    pub total: DurationNs,
    /// CPU-bound portion.
    pub cpu: DurationNs,
    /// Time with the GPU busy.
    pub gpu: DurationNs,
}

/// The multi-process view: one node per process plus the nvidia-smi
/// comparison that exposes the utilization-metric trap (F.11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiProcessReport {
    /// Per-process summaries, in pid order.
    pub processes: Vec<ProcessSummary>,
    /// Fork/join dependency edges between processes.
    pub dependencies: Vec<(ProcessId, ProcessId)>,
    /// `nvidia-smi`-style reported utilization (percent).
    pub smi_reported_percent: f64,
    /// True GPU-busy percentage over the same window.
    pub true_gpu_percent: f64,
}

impl MultiProcessReport {
    /// Builds the view from a merged trace, process names, dependency
    /// edges, and an smi sampling report.
    ///
    /// Per-process tables come from the unified analysis pipeline
    /// (`Analysis::of(trace).group_by([Dim::Process]).tables()`,
    /// [`Analysis`]): one index-partition pass over the borrowed merged
    /// event stream and one sweep per process on worker threads, rather
    /// than a full re-filtering scan (or a per-process event clone) per
    /// process.
    pub fn new(
        trace: &Trace,
        names: &[(ProcessId, String)],
        dependencies: Vec<(ProcessId, ProcessId)>,
        smi: &UtilizationReport,
    ) -> Self {
        Self::from_tables(trace.breakdowns_by_process(), names, dependencies, smi)
    }

    /// Builds the view by streaming a chunk directory end-to-end in
    /// bounded memory: chunks decode one at a time and route into
    /// per-process incremental sweeps
    /// ([`streamed_breakdowns_by_process`]); the concatenated event
    /// stream is never materialized, so whole-experiment directories
    /// larger than RAM analyze in the working set of one chunk plus the
    /// sweeps. `lag` selects the bounded-memory eager sweep window (see
    /// [`crate::overlap::OverlapSweep`]); `None` uses exact sweeps.
    ///
    /// # Errors
    ///
    /// Returns the first I/O or corruption error from the directory.
    pub fn from_chunk_dir(
        dir: &Path,
        names: &[(ProcessId, String)],
        dependencies: Vec<(ProcessId, ProcessId)>,
        smi: &UtilizationReport,
        lag: Option<DurationNs>,
    ) -> Result<Self, TraceIoError> {
        let tables = streamed_breakdowns_by_process(dir, lag)?;
        Ok(Self::from_tables(tables, names, dependencies, smi))
    }

    fn from_tables(
        tables: Vec<(ProcessId, BreakdownTable)>,
        names: &[(ProcessId, String)],
        dependencies: Vec<(ProcessId, ProcessId)>,
        smi: &UtilizationReport,
    ) -> Self {
        let empty = BreakdownTable::new();
        let processes = names
            .iter()
            .map(|(pid, name)| {
                let table = tables.iter().find(|(p, _)| p == pid).map(|(_, t)| t).unwrap_or(&empty);
                ProcessSummary {
                    pid: *pid,
                    name: name.clone(),
                    total: table.total(),
                    cpu: table.total_where(|k: &BucketKey| k.cpu.is_some() && !k.gpu),
                    gpu: table.gpu_total(),
                }
            })
            .collect();
        MultiProcessReport {
            processes,
            dependencies,
            smi_reported_percent: smi.reported_percent,
            true_gpu_percent: smi.true_percent(),
        }
    }

    /// Formats the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{:<26} {:>12} {:>12} {:>12}", "process", "total", "cpu", "gpu");
        for p in &self.processes {
            let _ = writeln!(
                out,
                "{:<26} {:>12} {:>12} {:>12}",
                p.name,
                p.total.to_string(),
                p.cpu.to_string(),
                p.gpu.to_string()
            );
        }
        let _ = writeln!(
            out,
            "nvidia-smi reported GPU utilization: {:.0}%  |  true GPU-bound time: {:.3}%",
            self.smi_reported_percent, self.true_gpu_percent
        );
        out
    }
}

/// Per-phase summary row of a [`MultiPhaseReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Phase name ([`crate::overlap::NO_PHASE`] for untagged time).
    pub phase: String,
    /// The phase's full breakdown table.
    pub table: BreakdownTable,
    /// Total attributed time in the phase.
    pub total: DurationNs,
    /// CPU-bound portion (CPU busy, GPU idle).
    pub cpu: DurationNs,
    /// Time with the GPU busy.
    pub gpu: DurationNs,
}

/// The per-phase view of a trace: the paper's time-breakdown figures
/// scoped to training phases (§3.1/§3.3), which the pre-`Analysis`
/// pipeline could not produce (phases were dropped by the sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiPhaseReport {
    /// Per-phase summaries, in first-seen phase order of the stream.
    pub phases: Vec<PhaseSummary>,
}

impl MultiPhaseReport {
    /// Builds the view from a (possibly merged multi-process) trace via
    /// `Analysis::of(trace).group_by([Dim::Phase]).tables()`.
    pub fn from_trace(trace: &Trace) -> Self {
        let tables = Analysis::of(trace)
            .group_by([Dim::Phase])
            .tables()
            .expect("in-memory analysis cannot fail");
        Self::from_tables(
            tables
                .into_iter()
                .map(|(key, t)| (key.phase.expect("grouped by phase").to_string(), t)),
        )
    }

    /// Builds the view from already-grouped per-phase tables.
    pub fn from_tables(tables: impl IntoIterator<Item = (String, BreakdownTable)>) -> Self {
        let phases = tables
            .into_iter()
            .map(|(phase, table)| PhaseSummary {
                total: table.total(),
                cpu: table.total_where(|k: &BucketKey| k.cpu.is_some() && !k.gpu),
                gpu: table.gpu_total(),
                phase,
                table,
            })
            .collect();
        MultiPhaseReport { phases }
    }

    /// Total attributed time across all phases (equals the ungrouped
    /// table's total — phase grouping conserves time exactly).
    pub fn total(&self) -> DurationNs {
        self.phases.iter().map(|p| p.total).sum()
    }

    /// Formats the report as text: one summary line per phase plus each
    /// phase's top operations.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total = self.total();
        let _ =
            writeln!(out, "{:<20} {:>12} {:>7} {:>12} {:>12}", "phase", "total", "%", "cpu", "gpu");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<20} {:>12} {:>6.1}% {:>12} {:>12}",
                p.phase,
                p.total.to_string(),
                100.0 * p.total.ratio(total),
                p.cpu.to_string(),
                p.gpu.to_string()
            );
            for op in p.table.operations() {
                let op_total = p.table.operation_total(&op);
                let _ = writeln!(
                    out,
                    "    {:<16} {:>12} {:>6.1}%",
                    op,
                    op_total.to_string(),
                    100.0 * op_total.ratio(p.total)
                );
            }
        }
        out
    }
}

/// Percentage of a table's total spent in a CPU category (helper used all
/// over the experiment harness).
pub fn percent_of_total(table: &BreakdownTable, pred: impl Fn(&BucketKey) -> bool) -> f64 {
    100.0 * table.total_where(pred).ratio(table.total())
}

/// Percent of an operation's time spent executing GPU kernels.
pub fn gpu_percent_of_operation(table: &BreakdownTable, op: &str) -> f64 {
    let op_total = table.operation_total(op);
    let op_gpu = table.total_where(|k| &*k.operation == op && k.gpu);
    100.0 * op_gpu.ratio(op_total)
}

/// Percent of total time in simulation-category CPU work.
pub fn simulation_percent(table: &BreakdownTable) -> f64 {
    percent_of_total(table, |k| k.cpu == Some(CpuCategory::Simulator))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CpuCategory, Event, EventKind};
    use crate::trace::Trace;
    use rlscope_sim::smi::UtilizationSampler;
    use rlscope_sim::time::TimeNs;
    use std::sync::Arc;

    fn us(v: u64) -> TimeNs {
        TimeNs::from_micros(v)
    }

    fn table() -> BreakdownTable {
        let mut t = BreakdownTable::new();
        t.add(
            BucketKey {
                operation: Arc::from("sim"),
                cpu: Some(CpuCategory::Simulator),
                gpu: false,
            },
            DurationNs::from_micros(60),
        );
        t.add(
            BucketKey { operation: Arc::from("bp"), cpu: Some(CpuCategory::CudaApi), gpu: true },
            DurationNs::from_micros(30),
        );
        t.add(
            BucketKey { operation: Arc::from("bp"), cpu: None, gpu: true },
            DurationNs::from_micros(10),
        );
        t
    }

    #[test]
    fn breakdown_report_percentages_sum() {
        let rep = BreakdownReport::from_table(&table());
        let sum: f64 = rep.rows.iter().map(|r| r.percent).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!(rep.render().contains("TOTAL"));
        assert!(rep.render().contains("CPU+GPU"));
    }

    #[test]
    fn helpers_compute_shares() {
        let t = table();
        assert!((simulation_percent(&t) - 60.0).abs() < 1e-9);
        assert!((gpu_percent_of_operation(&t, "bp") - 100.0).abs() < 1e-9);
        assert!((gpu_percent_of_operation(&t, "sim") - 0.0).abs() < 1e-9);
    }

    /// Zero-denominator guards: percentage helpers over empty tables or
    /// absent operations must report 0.0, never NaN.
    #[test]
    fn percentage_helpers_guard_zero_denominators() {
        let empty = BreakdownTable::new();
        for v in [
            percent_of_total(&empty, |_| true),
            simulation_percent(&empty),
            gpu_percent_of_operation(&empty, "missing"),
            gpu_percent_of_operation(&table(), "no_such_operation"),
        ] {
            assert_eq!(v, 0.0);
            assert!(!v.is_nan());
        }
        // The report builder itself: rows over a zero-total table carry
        // 0% instead of NaN.
        let rep = BreakdownReport::from_table(&empty);
        assert!(rep.rows.is_empty());
        assert_eq!(rep.total, DurationNs::ZERO);
    }

    #[test]
    fn transition_report_per_iteration() {
        let trace = Trace {
            pid: ProcessId(0),
            events: vec![],
            counts: Default::default(),
            per_op_transitions: vec![
                ((Arc::from("backprop"), TransitionKind::Backend), 40),
                ((Arc::from("simulation"), TransitionKind::Simulator), 100),
            ],
            api_stats: vec![],
            iterations: 10,
            wall_end: us(1),
        };
        let rep = TransitionReport::from_trace(&trace);
        assert_eq!(rep.per_iteration("backprop", TransitionKind::Backend), 4.0);
        assert_eq!(rep.per_iteration("simulation", TransitionKind::Simulator), 10.0);
        assert!(rep.render().contains("backprop"));
    }

    #[test]
    fn multi_process_report_summarizes_each_pid() {
        let mk_event = |pid: u32, kind: EventKind, s: u64, e: u64| {
            Event::new(ProcessId(pid), kind, "x", us(s), us(e))
        };
        let trace = Trace {
            pid: ProcessId(0),
            events: vec![
                mk_event(0, EventKind::Cpu(CpuCategory::Python), 0, 50),
                mk_event(1, EventKind::Cpu(CpuCategory::Python), 0, 30),
                mk_event(1, EventKind::Gpu(crate::event::GpuCategory::Kernel), 10, 20),
            ],
            counts: Default::default(),
            per_op_transitions: vec![],
            api_stats: vec![],
            iterations: 0,
            wall_end: us(50),
        };
        let smi = UtilizationSampler::new(DurationNs::from_micros(10)).sample(
            &[(us(10), us(20))],
            us(0),
            us(50),
        );
        let rep = MultiProcessReport::new(
            &trace,
            &[(ProcessId(0), "loader".into()), (ProcessId(1), "worker_0".into())],
            vec![(ProcessId(0), ProcessId(1))],
            &smi,
        );
        assert_eq!(rep.processes.len(), 2);
        assert_eq!(rep.processes[0].total, DurationNs::from_micros(50));
        assert_eq!(rep.processes[1].gpu, DurationNs::from_micros(10));
        assert!((rep.true_gpu_percent - 20.0).abs() < 1e-9);
        assert!(rep.render().contains("worker_0"));
    }

    #[test]
    fn chunk_dir_report_matches_in_memory_report() {
        use crate::store::TraceWriter;

        let mk_event = |pid: u32, kind: EventKind, s: u64, e: u64| {
            Event::new(ProcessId(pid), kind, "x", us(s), us(e))
        };
        let trace = Trace {
            pid: ProcessId(0),
            events: vec![
                mk_event(0, EventKind::Cpu(CpuCategory::Python), 0, 50),
                mk_event(1, EventKind::Cpu(CpuCategory::Python), 0, 30),
                mk_event(1, EventKind::Gpu(crate::event::GpuCategory::Kernel), 10, 20),
            ],
            counts: Default::default(),
            per_op_transitions: vec![],
            api_stats: vec![],
            iterations: 0,
            wall_end: us(50),
        };
        let smi = UtilizationSampler::new(DurationNs::from_micros(10)).sample(
            &[(us(10), us(20))],
            us(0),
            us(50),
        );
        let names = [(ProcessId(0), "loader".to_string()), (ProcessId(1), "worker_0".to_string())];
        let deps = vec![(ProcessId(0), ProcessId(1))];
        let in_memory = MultiProcessReport::new(&trace, &names, deps.clone(), &smi);

        let dir = std::env::temp_dir().join(format!("rlscope_report_dir_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = TraceWriter::create(&dir, 64).unwrap();
        writer.write(trace.events.clone());
        writer.finish().unwrap();
        let streamed = MultiProcessReport::from_chunk_dir(
            &dir,
            &names,
            deps,
            &smi,
            Some(DurationNs::from_micros(100)),
        )
        .unwrap();
        assert_eq!(streamed, in_memory);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
