//! The unified `Analysis` query API: one composable pipeline for every
//! breakdown the profiler can produce.
//!
//! Historically each report reached the overlap engine through its own
//! ad-hoc door (`compute_overlap`, `Trace::breakdown*`,
//! `streamed_breakdowns_by_process`, `correct`, …). [`Analysis`] replaces
//! them with a single builder that composes
//!
//! * a **source** — [`Analysis::of`] (one trace), [`Analysis::merged`]
//!   (several traces), [`Analysis::of_events`] /
//!   [`Analysis::of_indexed`] (raw event slices), or
//!   [`Analysis::from_chunk_dir`] (on-disk chunk directories, streamed
//!   chunk-at-a-time — optionally in bounded memory via
//!   [`Analysis::bounded_streaming`]);
//! * **filters** — [`Analysis::phase`], [`Analysis::process`],
//!   [`Analysis::operation`], [`Analysis::time_window`];
//! * **grouping** — [`Analysis::group_by`] over [`Dim`] dimensions,
//!   making the training *phase* a first-class key next to process and
//!   operation;
//! * **overhead correction** — [`Analysis::corrected`] runs the paper's
//!   §3.4 subtraction inside the same pipeline;
//! * **sinks** — [`Analysis::table`] (one merged [`BreakdownTable`]),
//!   [`Analysis::tables`] (grouped), [`Analysis::report`],
//!   [`Analysis::profile`] (a [`CorrectedProfile`]), and
//!   [`Analysis::canonical_json`].
//!
//! All legacy entry points are thin wrappers over this pipeline, so every
//! path — batch, indexed, parallel per-process, streamed — shares one
//! engine and one set of semantics.
//!
//! # Phase semantics
//!
//! Phases tag segments by the innermost *active* phase annotation, with
//! [`NO_PHASE`] collecting time outside any phase. Phase boundaries only
//! split segments; they never move time between buckets, so grouping or
//! filtering by phase conserves totals exactly: merging the per-phase
//! tables reproduces the ungrouped table bucket for bucket.
//!
//! Phase scoping is **per process**: a segment's phase is the innermost
//! open phase among the phases owned by processes with at least one
//! active event in that segment. In a merged multi-process sweep,
//! process A's phase annotations therefore never tag a segment where
//! only process B is active — two pids carrying overlapping but
//! different phase spans each keep their own time under their own
//! phase.
//!
//! The profiler records a phase event when the phase **closes**. For
//! bounded-lag streaming ([`Analysis::bounded_streaming`]) this matters:
//! a long-lived phase arrives with a start far behind the finalized
//! frontier, so a phase-scoped bounded query typically detects the
//! disorder and transparently falls back to an exact second pass over
//! the chunk directory (never misattributing time). Plain per-process
//! queries are unaffected — without phase grouping/filtering, phase
//! events are dropped before the order check. Rewriting a raw dump with
//! [`crate::store::reorder_chunk_dir`] removes the close-order disorder
//! entirely, making bounded mode applicable with any lag.
//!
//! # Predicate pushdown: when is a whole chunk skipped?
//!
//! Chunk-directory sources consult the directory's
//! [`crate::store::Manifest`] before decoding anything: filters become a
//! [`crate::store::ChunkQuery`] and chunks whose footers cannot
//! contribute are never read. The decisions are conservative — a
//! selected chunk may still contribute nothing — and never lossy (the
//! result is table-identical to a full scan). [`Analysis::chunk_plan`]
//! reports the selection for a query without running it.
//!
//! | filter | pushed down when | a chunk is skipped when |
//! |--------|------------------|--------------------------|
//! | [`Analysis::time_window`] `[lo, hi)` | always | the chunk's `[min_start, max_end)` is disjoint from the window |
//! | [`Analysis::process`] | always | the footer's pid set lacks the process |
//! | [`Analysis::phase`] | the phase is named (not [`NO_PHASE`]); the only remaining carve-out is a process-grouped query that *also* has a time window | the chunk's `[min_start, max_end)` is disjoint from the phase's bounding span across the whole manifest — reduced, under a process filter, over only the footer spans whose per-phase pid set carries that process (a phase present in no eligible footer skips everything) |
//! | [`Analysis::operation`] | never — operations are table rows, not chunk predicates | — |
//!
//! `NO_PHASE` selects time *outside* every phase, which any chunk can
//! hold, so it never skips. Process-grouped phase queries keep group
//! enumeration identical to a full scan by additionally selecting each
//! process's first-appearance chunk
//! ([`crate::store::ChunkQuery::keep_pid_introductions`]) — a pure
//! over-selection, so a process whose chunks are all skippable still
//! gets its (empty) group row. v3 footers record the pid set of every
//! phase span ([`crate::store::PhaseSpan::pids`]); footers and manifests
//! written before that field existed decode with an empty (= unknown)
//! set, which every reader treats as "possibly any pid" — old manifests
//! stay readable and their skip decisions are identical-or-safer, never
//! wrong.
//!
//! Chunk decode itself is **chunk-parallel**: selected files are decoded
//! on worker threads and fed to the per-process incremental sweeps in
//! stream order through bounded channels
//! ([`crate::store::for_each_decoded_chunk`]), so decode overlaps
//! sweeping on multi-core machines with bounded in-flight memory.
//!
//! # Which sources run columnar
//!
//! Sources that start from encoded chunk bytes run the **columnar
//! path** end to end: [`Analysis::from_chunk_dir`] and
//! [`Analysis::bounded_streaming`] decode each selected chunk with
//! [`crate::store::decode_columns`] into [`crate::store::EventColumns`]
//! (five flat primitive columns plus a per-chunk name table — no
//! `Vec<Event>` is materialized) and feed the sweeps through
//! [`OverlapSweep::push_columns`]; the collector's live ingest
//! ([`LiveState::push_columns`]) is the same shape. Sources that start
//! from already-materialized rows — [`Analysis::of`],
//! [`Analysis::merged`], [`Analysis::of_events`],
//! [`Analysis::of_indexed`] — sweep the rows directly; converting them
//! to columns first would add a copy for no decode saving. Both paths
//! reduce to the same merge loop and are pinned table-identical by the
//! `columnar_*` property tests.
//!
//! # Live-query consistency
//!
//! [`Analysis::of_live`] answers queries over sessions that are **still
//! streaming** (the `rlscope-collector` daemon's live path, fed through
//! [`LiveState`]). What such a query observes is defined precisely:
//!
//! * **A consistent chunk prefix.** The collector applies each accepted
//!   chunk atomically — its events enter the live sweeps and the
//!   observed-event counter together, under the session lock — and
//!   snapshots ([`LiveState::snapshot`]) are taken under the same lock.
//!   A live query therefore sees *exactly* the first `events_observed()`
//!   events of the session stream, never a partially-applied chunk, and
//!   its result equals the batch analysis of that prefix table for table
//!   (canonical JSON included).
//! * **Monotonicity.** Later queries observe a superset prefix; totals
//!   for any fixed filter never decrease between queries. This holds
//!   across a collector crash and restart too: recovery replays the
//!   durable chunk prefix through the same decode path into a fresh
//!   [`LiveState`], so a post-restart query answers over exactly the
//!   acknowledged prefix the pre-crash daemon had persisted.
//! * **Open annotations are invisible.** The profiler records intervals
//!   when they *close*, so time inside a still-open operation or phase
//!   has not been streamed yet; it appears once the annotation closes
//!   (or, client-side, in a [`crate::profiler::Profiler::snapshot`],
//!   which synthesizes open annotations locally). In particular a
//!   session's whole-run phase typically shows up only at finish — live
//!   tables attribute that time to [`NO_PHASE`] until then.
//! * **Supported queries.** Phase/process/operation filters and every
//!   `group_by` combination run with batch-identical semantics.
//!   [`Analysis::time_window`] and [`Analysis::corrected`] are
//!   unsupported over live snapshots (no event-level granularity, no
//!   book-keeping counters); once the session finishes, its chunk
//!   directory supports the full query surface.
//!
//! # Cross-session composition and `Dim::Session`
//!
//! [`Analysis::of_sessions`] composes **many sources** — finished chunk
//! directories and live snapshots, freely mixed — into one pipeline,
//! and [`Dim::Session`] makes the session a first-class grouping key:
//!
//! * Each session resolves as its own sub-analysis under the same
//!   window, filters, and remaining dims, so per-session semantics are
//!   exactly the single-source semantics above: a live session answers
//!   over its consistent acked prefix, a finished one over its chunk
//!   directory with full manifest pushdown.
//! * Merged sinks fold the per-session tables with
//!   [`BreakdownTable::merge`]: grouping by `Dim::Session` and merging
//!   the groups reproduces the ungrouped cross-session rollup bucket
//!   for bucket — the same conservation law phases and processes obey.
//! * Group order is first-seen composition order, and the session name
//!   leads every [`GroupKey`].
//! * `Dim::Session` over a non-session source is a typed
//!   [`AnalysisError::Unsupported`] — there is no session to group by.
//!
//! **Live multi-session consistency.** A multi-session query observes
//! one consistent prefix *per session* (each snapshot is taken under
//! its own session lock); there is no cross-session barrier, so two
//! sessions' prefixes may be unequally fresh — but each is exactly some
//! acked prefix of its own stream, and re-querying is monotone per
//! session. This is the substrate of the collector daemon's `QUERY_ALL`
//! frame and the federation tier's fleet-wide rollups
//! (`rlscope-collector`'s `FleetClient`).
//!
//! # Storage tiers: which queries each tier can answer
//!
//! The collector ages finished sessions down a storage ladder
//! (raw → start-sorted → segment rollup → gone; see [`crate::rollup`]
//! and the `rlscope-collector` crate docs). Every tier answers through
//! this same pipeline; what changes is the supported query surface —
//! and an unsupported combination is always a typed
//! [`AnalysisError::Unsupported`], never a silently degraded answer:
//!
//! | query feature | raw / sorted dir ([`Analysis::from_chunk_dir`]) | rollup dir ([`Analysis::from_rollup_dir`]) | live snapshot ([`Analysis::of_live`]) |
//! |---------------|--------------------------------------------------|---------------------------------------------|----------------------------------------|
//! | phase / process / operation filters | yes | yes | yes |
//! | `group_by` (phase × process × operation) | yes | yes | yes |
//! | [`Analysis::time_window`] | yes, any `[lo, hi)` | only on segment boundaries (edges past the covered span are fine) | no |
//! | [`Analysis::bounded_streaming`] | yes (sorted dirs with any lag) | meaningless — nothing is streamed | ignored |
//! | [`Analysis::corrected`] / [`Analysis::profile`] | no (needs a trace-backed source) | no | no |
//! | cost | decodes selected chunks (manifest pushdown) | reads pre-aggregated tables only — **no raw event decode** | reads finalized tables |
//!
//! Where both a raw/sorted directory and a rollup exist, prefer the
//! rollup for coarse queries — a `(phase, op)` breakdown over a rollup
//! is gated ≥5× faster than the full raw scan in CI (`rollup_query`) —
//! and the raw tier for anything sub-segment.
//!
//! # Example
//!
//! ```
//! use rlscope_core::analysis::{Analysis, Dim};
//! use rlscope_core::event::{CpuCategory, Event, EventKind};
//! use rlscope_sim::ids::ProcessId;
//! use rlscope_sim::time::{DurationNs, TimeNs};
//!
//! let e = |kind, name: &str, start_us, end_us| {
//!     Event::new(
//!         ProcessId(0),
//!         kind,
//!         name,
//!         TimeNs::from_micros(start_us),
//!         TimeNs::from_micros(end_us),
//!     )
//! };
//! let events = vec![
//!     e(EventKind::Phase, "collect", 0, 100),
//!     e(EventKind::Phase, "train", 100, 200),
//!     e(EventKind::Operation, "simulation", 0, 100),
//!     e(EventKind::Operation, "backpropagation", 100, 200),
//!     e(EventKind::Cpu(CpuCategory::Python), "py", 0, 200),
//! ];
//!
//! let overall = Analysis::of_events(&events).table().unwrap();
//! let by_phase = Analysis::of_events(&events).group_by([Dim::Phase]).tables().unwrap();
//! assert_eq!(by_phase.len(), 2);
//! // Per-phase tables conserve the overall total exactly.
//! let phase_sum: DurationNs = by_phase.iter().map(|(_, t)| t.total()).sum();
//! assert_eq!(phase_sum, overall.total());
//! assert_eq!(overall.total(), DurationNs::from_micros(200));
//! ```

use crate::calibrate::Calibration;
use crate::correct::{apply_correction, CorrectedProfile, CorrectionInputs, OverheadBreakdown};
use crate::event::Event;
use crate::overlap::{
    sweep_tables, sweep_tables_by_phase, BreakdownTable, BucketKey, OverlapSweep, PhaseTables,
    SweepError, NO_PHASE,
};
use crate::report::BreakdownReport;
use crate::rollup::{merge_phase_tables, Rollup};
use crate::store::{
    for_each_decoded_chunk_columns, list_chunk_files, ChunkQuery, EventColumns, Manifest,
    TraceIoError,
};
use crate::trace::Trace;
use parking_lot::Mutex;
use rlscope_sim::ids::ProcessId;
use rlscope_sim::time::{DurationNs, TimeNs};
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A grouping dimension for [`Analysis::group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Training phase (`rls.set_phase(...)` annotations); time outside
    /// any phase lands in the [`NO_PHASE`] group.
    Phase,
    /// Traced process.
    Process,
    /// Innermost operation annotation (already the row key inside a
    /// [`BreakdownTable`]; as a group dimension it splits the output into
    /// one single-operation table per name).
    Operation,
    /// Profiling session, for cross-session sources
    /// ([`Analysis::of_sessions`]): one group per composed session, in
    /// the composition order. Requires a sessions source — other sources
    /// have no session identity to group by.
    Session,
}

/// Identity of one group in a grouped analysis result. A field is `Some`
/// exactly when the corresponding [`Dim`] was requested via
/// [`Analysis::group_by`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupKey {
    /// Session name; `None` when not grouped by session.
    pub session: Option<Arc<str>>,
    /// Phase name ([`NO_PHASE`] for untagged time); `None` when not
    /// grouped by phase.
    pub phase: Option<Arc<str>>,
    /// Process id; `None` when not grouped by process.
    pub process: Option<ProcessId>,
    /// Operation name; `None` when not grouped by operation.
    pub operation: Option<Arc<str>>,
}

impl GroupKey {
    /// Human-readable label, e.g. `session=run-3 phase=training pid=2
    /// op=backprop` (`all` for the ungrouped key).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if let Some(s) = &self.session {
            parts.push(format!("session={s}"));
        }
        if let Some(p) = &self.phase {
            parts.push(format!("phase={p}"));
        }
        if let Some(p) = self.process {
            parts.push(format!("pid={}", p.as_u32()));
        }
        if let Some(o) = &self.operation {
            parts.push(format!("op={o}"));
        }
        if parts.is_empty() {
            "all".to_string()
        } else {
            parts.join(" ")
        }
    }
}

impl fmt::Display for GroupKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error from running an [`Analysis`] query.
#[derive(Debug)]
pub enum AnalysisError {
    /// I/O or corruption error from a chunk-directory source.
    Io(TraceIoError),
    /// The requested combination is not supported, e.g. overhead
    /// correction on a source without book-keeping metadata.
    Unsupported(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Io(e) => write!(f, "analysis i/o error: {e}"),
            AnalysisError::Unsupported(msg) => write!(f, "unsupported analysis: {msg}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Io(e) => Some(e),
            AnalysisError::Unsupported(_) => None,
        }
    }
}

impl From<TraceIoError> for AnalysisError {
    fn from(e: TraceIoError) -> Self {
        AnalysisError::Io(e)
    }
}

#[derive(Debug)]
enum Source<'a> {
    Events(&'a [Event]),
    Indexed(&'a [Event], &'a [u32]),
    Trace(&'a Trace),
    Merged(&'a [Trace]),
    ChunkDir(PathBuf),
    RollupDir(PathBuf),
    Live(&'a LiveTables),
    Sessions(Vec<(Arc<str>, SessionSource<'a>)>),
}

/// One session's data inside a cross-session composition
/// ([`Analysis::of_sessions`]): finished sessions come from their chunk
/// directories, in-flight ones from a consistent live snapshot — both
/// answer with batch-identical semantics, so the two kinds compose
/// freely in one query.
#[derive(Debug)]
pub enum SessionSource<'a> {
    /// A finished (or recovered) session's on-disk chunk directory.
    ChunkDir(PathBuf),
    /// An aged-out session's segment-summary rollup directory
    /// ([`crate::rollup`]): coarse queries answer from pre-aggregated
    /// tables, sub-segment resolution is a typed
    /// [`AnalysisError::Unsupported`].
    RollupDir(PathBuf),
    /// A live session's snapshot over its consistent acked prefix
    /// ([`LiveState::snapshot`]).
    Live(&'a LiveTables),
}

/// Incrementally-maintained sweep state over a **live** (still
/// in-flight) event stream — the analysis substrate behind the
/// `rlscope-collector` daemon's mid-session queries.
///
/// Feed accepted events with [`LiveState::push`] as they arrive; at any
/// point, [`LiveState::snapshot`] materializes [`LiveTables`] — the
/// finalized tables over exactly the events observed so far — without
/// disturbing the live sweeps, and [`Analysis::of_live`] answers queries
/// over that snapshot with batch-identical semantics (see the
/// [module docs](crate::analysis) on live-query consistency).
///
/// Internally this mirrors the chunk-dir executor's sweep layout: one
/// phase-tagged exact [`OverlapSweep`] per process, plus a merged-stream
/// sweep for ungrouped queries. While only one process has been seen the
/// merged stream *is* that process's stream, so the merged sweep is not
/// materialized until a second process appears — at which point the
/// first process's sweep (fed the identical prefix) is cloned into
/// place. Single-process sessions — the common case — therefore pay one
/// sweep push per event, not two.
#[derive(Debug, Clone, Default)]
pub struct LiveState {
    /// Merged-stream sweep; `None` while at most one process is live
    /// (see the type docs for the promotion rule).
    merged: Option<OverlapSweep>,
    per_process: Vec<(ProcessId, OverlapSweep)>,
    slot_of: HashMap<ProcessId, usize>,
    /// Last event's `(pid, slot)` — profiler streams are long runs of
    /// one pid, so this memo skips the map lookup on the hot path.
    last_slot: Option<(ProcessId, usize)>,
    events: u64,
}

impl LiveState {
    /// Empty live state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events accepted so far (including zero-length and phase events).
    pub fn events_observed(&self) -> u64 {
        self.events
    }

    /// Accepts one event into the live sweeps.
    ///
    /// # Errors
    ///
    /// [`SweepError`] from the underlying sweeps (exact sweeps accept
    /// any order, so only pathological annotation counts can fail).
    pub fn push(&mut self, e: &Event) -> Result<(), SweepError> {
        let slot = match self.last_slot {
            Some((pid, slot)) if pid == e.pid => slot,
            _ => {
                let slot = match self.slot_of.get(&e.pid) {
                    Some(&slot) => slot,
                    None => {
                        if self.per_process.len() == 1 && self.merged.is_none() {
                            // Second process: the merged stream diverges
                            // from the first process's stream here. Its
                            // sweep was fed the identical prefix, so its
                            // clone IS the merged state.
                            self.merged = Some(self.per_process[0].1.clone());
                        }
                        let slot = self.per_process.len();
                        self.per_process.push((e.pid, OverlapSweep::new().with_phase_tagging()));
                        self.slot_of.insert(e.pid, slot);
                        slot
                    }
                };
                self.last_slot = Some((e.pid, slot));
                slot
            }
        };
        if let Some(merged) = &mut self.merged {
            merged.push(e)?;
        }
        self.per_process[slot].1.push(e)?;
        self.events += 1;
        Ok(())
    }

    /// Accepts a batch (e.g. one decoded chunk), stopping at the first
    /// error.
    ///
    /// # Errors
    ///
    /// See [`LiveState::push`].
    pub fn push_batch(&mut self, events: &[Event]) -> Result<(), SweepError> {
        // Hot path: a batch wholly from the already-current process (the
        // common single-process profiler stream) resolves its sweep slot
        // once and feeds the sweep directly — no per-event slot memo,
        // merged-sweep, or counter work.
        if let Some((pid, slot)) = self.last_slot {
            if self.merged.is_none() && events.iter().all(|e| e.pid == pid) {
                self.per_process[slot].1.push_batch(events)?;
                self.events += events.len() as u64;
                return Ok(());
            }
        }
        for e in events {
            self.push(e)?;
        }
        Ok(())
    }

    /// Accepts one decoded chunk in columnar form
    /// ([`crate::store::decode_columns`]) — identical sweep state to
    /// [`LiveState::push_batch`] over the same events, but the chunk
    /// flows through [`OverlapSweep::push_columns`]: flat column reads,
    /// names interned once per chunk table id.
    ///
    /// # Errors
    ///
    /// See [`LiveState::push`].
    pub fn push_columns(&mut self, cols: &EventColumns) -> Result<(), SweepError> {
        if cols.is_empty() {
            return Ok(());
        }
        // Hot path: a chunk wholly from the already-current process feeds
        // that sweep directly, exactly like `push_batch`'s fast path.
        if let Some((pid, slot)) = self.last_slot {
            if self.merged.is_none() && cols.pids.iter().all(|&p| p == pid.as_u32()) {
                self.per_process[slot].1.push_columns(cols)?;
                self.events += cols.len() as u64;
                return Ok(());
            }
        }
        // Distinct pids in first-appearance order; resolving the slots
        // up front runs the same merged-sweep promotion rule as `push` —
        // the clone happens before any of this chunk's events land in
        // process 0's sweep, so it still captures the shared prefix.
        let mut chunk_pids: Vec<ProcessId> = Vec::new();
        for &raw in &cols.pids {
            let pid = ProcessId(raw);
            if !chunk_pids.contains(&pid) {
                chunk_pids.push(pid);
            }
        }
        for &pid in &chunk_pids {
            if !self.slot_of.contains_key(&pid) {
                if self.per_process.len() == 1 && self.merged.is_none() {
                    self.merged = Some(self.per_process[0].1.clone());
                }
                let slot = self.per_process.len();
                self.per_process.push((pid, OverlapSweep::new().with_phase_tagging()));
                self.slot_of.insert(pid, slot);
            }
        }
        if let Some(merged) = &mut self.merged {
            merged.push_columns(cols)?;
        }
        for &pid in &chunk_pids {
            let slot = self.slot_of[&pid];
            self.per_process[slot].1.push_columns_filtered(cols, pid.as_u32())?;
        }
        let last = ProcessId(*cols.pids.last().expect("non-empty chunk"));
        self.last_slot = Some((last, self.slot_of[&last]));
        self.events += cols.len() as u64;
        Ok(())
    }

    /// Materializes the finalized tables over exactly the events pushed
    /// so far — a consistent prefix snapshot. The live sweeps are cloned
    /// and the clones finalized; pushing may continue afterwards.
    pub fn snapshot(&self) -> LiveTables {
        let merged = match (&self.merged, self.per_process.first()) {
            (Some(m), _) => m.clone().finalize_grouped(),
            (None, Some((_, s))) => s.clone().finalize_grouped(),
            (None, None) => Vec::new(),
        };
        let per_process =
            self.per_process.iter().map(|(pid, s)| (*pid, s.clone().finalize_grouped())).collect();
        LiveTables { merged, per_process, events: self.events }
    }
}

/// A finalized snapshot of a [`LiveState`]: per-phase tables for the
/// merged stream and for each process, over exactly the events observed
/// at snapshot time. Query it with [`Analysis::of_live`].
#[derive(Debug, Clone, Default)]
pub struct LiveTables {
    merged: PhaseTables,
    per_process: Vec<(ProcessId, PhaseTables)>,
    events: u64,
}

impl LiveTables {
    /// Events the snapshot covers — the consistency token a live query
    /// reports alongside its result.
    pub fn events_observed(&self) -> u64 {
        self.events
    }
}

/// The unified analysis query builder. See the [module docs](crate::analysis)
/// for the full pipeline and an example.
#[derive(Debug)]
pub struct Analysis<'a> {
    source: Source<'a>,
    /// Bounded-lag streaming window for chunk-dir sources.
    lag: Option<DurationNs>,
    phase_filter: Option<Arc<str>>,
    process_filter: Option<ProcessId>,
    operation_filter: Option<Arc<str>>,
    window: Option<(TimeNs, TimeNs)>,
    dims: Vec<Dim>,
    calibration: Option<&'a Calibration>,
    /// Keep empty phase groups (presence rows) in the output — the
    /// rollup builder's knob (see
    /// [`OverlapSweep::finalize_grouped_keep_empty`]). Honored by the
    /// chunk-dir streamed path only; never user-visible.
    keep_empty_phases: bool,
}

impl<'a> Analysis<'a> {
    fn new(source: Source<'a>) -> Self {
        Analysis {
            source,
            lag: None,
            phase_filter: None,
            process_filter: None,
            operation_filter: None,
            window: None,
            dims: Vec::new(),
            calibration: None,
            keep_empty_phases: false,
        }
    }

    /// Crate-internal: emit presence rows for phases with empty tables
    /// (chunk-dir sources only). See the `keep_empty_phases` field.
    pub(crate) fn keep_empty_phases(mut self) -> Self {
        self.keep_empty_phases = true;
        self
    }

    // ----- sources ------------------------------------------------------

    /// Analyzes one finalized trace (single- or multi-process after a
    /// [`Trace::merge`]).
    pub fn of(trace: &'a Trace) -> Self {
        Self::new(Source::Trace(trace))
    }

    /// Analyzes several traces as one merged stream (events concatenated
    /// in the given order, counters summed for correction purposes) —
    /// without materializing a merged [`Trace`].
    pub fn merged(traces: &'a [Trace]) -> Self {
        Self::new(Source::Merged(traces))
    }

    /// Analyzes a raw event slice.
    pub fn of_events(events: &'a [Event]) -> Self {
        Self::new(Source::Events(events))
    }

    /// Analyzes an index subset of one borrowed event slice — the
    /// zero-copy sharding primitive (no per-subset event clones).
    pub fn of_indexed(events: &'a [Event], indices: &'a [u32]) -> Self {
        Self::new(Source::Indexed(events, indices))
    }

    /// Analyzes an on-disk chunk directory by streaming it one decoded
    /// chunk at a time; the concatenated event stream is never
    /// materialized. `.time_window` / `.process` / `.phase` filters push
    /// down into the directory's [`Manifest`], skipping whole chunks
    /// before any decode, and the surviving chunks are decoded
    /// chunk-parallel while the sweeps consume them in stream order (see
    /// the module docs). Exact incremental sweeps are used unless
    /// [`Analysis::bounded_streaming`] selects a bounded-lag window.
    pub fn from_chunk_dir(dir: impl Into<PathBuf>) -> Self {
        Self::new(Source::ChunkDir(dir.into()))
    }

    /// Analyzes a segment-summary **rollup directory**
    /// ([`crate::rollup::rollup_chunk_dir`]) — the cold storage tier.
    /// Queries answer from the pre-aggregated per-segment tables without
    /// decoding any raw events: phase/process/operation filters and
    /// every [`Analysis::group_by`] combination behave exactly as over
    /// the raw directory, and [`Analysis::time_window`] is supported
    /// **iff** the window lands on segment boundaries (edges beyond the
    /// covered span are fine) — anything finer returns a typed
    /// [`AnalysisError::Unsupported`] rather than a silently coarse
    /// answer. [`Analysis::corrected`] is unsupported (no book-keeping
    /// counters survive the rollup). See the module docs' storage-tier
    /// table.
    pub fn from_rollup_dir(dir: impl Into<PathBuf>) -> Self {
        Self::new(Source::RollupDir(dir.into()))
    }

    /// Analyzes a [`LiveTables`] snapshot of an in-flight stream
    /// ([`LiveState::snapshot`]). Phase, process, and operation filters
    /// and every [`Analysis::group_by`] combination behave exactly as
    /// over the equivalent batch source; [`Analysis::time_window`] is
    /// unsupported (sweep state has no event-level granularity — window
    /// queries go to the session's chunk directory instead), as is
    /// [`Analysis::corrected`] (no book-keeping counters). See the
    /// [module docs](crate::analysis) on live-query consistency.
    pub fn of_live(tables: &'a LiveTables) -> Self {
        Self::new(Source::Live(tables))
    }

    /// Analyzes many sessions as **one pipeline** — the cross-session
    /// aggregation substrate behind `Dim::Session` grouping and the
    /// collector's fleet queries. Each entry pairs a session name with a
    /// [`SessionSource`] (a finished chunk directory or a live snapshot;
    /// the two kinds mix freely).
    ///
    /// Filters apply to every session identically. Without
    /// `group_by([Dim::Session])` the per-session results are merged by
    /// group key (via [`BreakdownTable::merge`], first-seen key order) —
    /// the fleet rollup. With it, each group is keyed by its session in
    /// composition order, and merging those groups reproduces the rollup
    /// exactly (conservation, as for phase/process grouping).
    ///
    /// [`Analysis::corrected`] is unsupported (no cross-session
    /// book-keeping counters), and [`Analysis::time_window`] is supported
    /// exactly when every composed source supports it (chunk dirs yes,
    /// live snapshots no).
    pub fn of_sessions(sessions: impl IntoIterator<Item = (Arc<str>, SessionSource<'a>)>) -> Self {
        Self::new(Source::Sessions(sessions.into_iter().collect()))
    }

    /// Uses bounded-memory streaming sweeps ([`OverlapSweep::bounded`])
    /// for a chunk-dir source: per-sweep state stays flat as the
    /// directory grows, provided event start times are sorted to within
    /// `lag` in stream order. Excess disorder is detected — never
    /// silently misattributed — and the query transparently re-runs with
    /// exact sweeps (one more pass over the on-disk chunks). Ignored for
    /// in-memory sources.
    ///
    /// Raw profiler dumps are end-ordered and usually exceed any useful
    /// lag; rewrite them once with [`crate::store::reorder_chunk_dir`]
    /// and bounded mode applies with any lag (including zero).
    pub fn bounded_streaming(mut self, lag: DurationNs) -> Self {
        self.lag = Some(lag);
        self
    }

    // ----- filters ------------------------------------------------------

    /// Keeps only time attributed to the named phase ([`NO_PHASE`]
    /// selects time outside any phase annotation).
    pub fn phase(mut self, name: &str) -> Self {
        self.phase_filter = Some(Arc::from(name));
        self
    }

    /// Keeps only events of one process.
    pub fn process(mut self, pid: ProcessId) -> Self {
        self.process_filter = Some(pid);
        self
    }

    /// Keeps only table rows of one operation ([`BucketKey::UNTRACKED`]
    /// selects unannotated time).
    pub fn operation(mut self, name: &str) -> Self {
        self.operation_filter = Some(Arc::from(name));
        self
    }

    /// Restricts attribution to `[start, end)`: events are clipped to the
    /// window, so exactly the time inside it is attributed.
    pub fn time_window(mut self, start: TimeNs, end: TimeNs) -> Self {
        self.window = Some((start, end));
        self
    }

    // ----- grouping and correction --------------------------------------

    /// Groups the output by the given dimensions (duplicates ignored).
    /// Grouped results come out of [`Analysis::tables`]; the
    /// [`Analysis::table`] sink merges the groups.
    ///
    /// Note the process dimension changes *how* time is counted, not just
    /// how it is keyed: each process is swept separately, so one instant
    /// with two busy processes counts twice (the multi-process view of
    /// paper §4.3), whereas the ungrouped sweep counts the union once.
    pub fn group_by(mut self, dims: impl IntoIterator<Item = Dim>) -> Self {
        for d in dims {
            if !self.dims.contains(&d) {
                self.dims.push(d);
            }
        }
        self
    }

    /// Applies calibrated overhead correction (paper §3.4) inside the
    /// pipeline. Requires a trace-backed source ([`Analysis::of`] or
    /// [`Analysis::merged`]) for the book-keeping counters.
    ///
    /// Correction always estimates the **whole-run** overhead and
    /// subtracts it from the full (unfiltered) view first; the query's
    /// result tables then take each bucket's subtraction **in proportion
    /// to their share of that bucket**. Grouped sinks therefore still
    /// sum exactly to the corrected merged table, and a filtered query
    /// (`.phase(..)`, `.process(..)`, `.time_window(..)`) is charged only
    /// its share of the overhead — never the whole run's. The counters do
    /// not record *when* each occurrence happened, so the proportional
    /// split assumes occurrences are uniform over a bucket's time; a
    /// filter that changes attribution itself (a process filter on a
    /// merged stream whose operations span processes) makes the mapping
    /// approximate for the shifted buckets.
    pub fn corrected(mut self, cal: &'a Calibration) -> Self {
        self.calibration = Some(cal);
        self
    }

    // ----- sinks --------------------------------------------------------

    /// One merged [`BreakdownTable`] honoring all filters, grouping
    /// semantics, and correction.
    ///
    /// # Errors
    ///
    /// I/O errors from chunk-dir sources; [`AnalysisError::Unsupported`]
    /// if correction was requested without a trace-backed source.
    pub fn table(&self) -> Result<BreakdownTable, AnalysisError> {
        if self.is_plain() {
            // Fast path: a plain unfiltered batch sweep runs without
            // building the reference index.
            return Ok(match &self.source {
                Source::Events(events) => sweep_tables(events.iter()),
                Source::Indexed(events, indices) => {
                    sweep_tables(indices.iter().map(|&i| &events[i as usize]))
                }
                Source::Trace(t) => sweep_tables(t.events.iter()),
                Source::Merged(ts) => sweep_tables(ts.iter().flat_map(|t| t.events.iter())),
                Source::ChunkDir(_)
                | Source::RollupDir(_)
                | Source::Live(_)
                | Source::Sessions(_) => {
                    unreachable!(
                        "chunk dirs, rollups, live snapshots, and sessions are never plain"
                    )
                }
            });
        }
        let groups = self.resolve_groups()?;
        let mut table = BreakdownTable::new();
        for (_, t) in &groups {
            table.merge(t);
        }
        if let Some(cal) = self.calibration {
            let inputs = self.correction_inputs()?;
            (table, _) = self.corrected_merged(table, &inputs, cal)?;
        }
        Ok(table)
    }

    /// Grouped tables, one per [`GroupKey`] combination, in deterministic
    /// order (process first-seen, then phase first-seen, then operation
    /// name). Without [`Analysis::group_by`] this is a single entry with
    /// the all-`None` key.
    ///
    /// # Errors
    ///
    /// Same as [`Analysis::table`].
    pub fn tables(&self) -> Result<Vec<(GroupKey, BreakdownTable)>, AnalysisError> {
        let mut groups = self.resolve_groups()?;
        if let Some(cal) = self.calibration {
            let inputs = self.correction_inputs()?;
            self.apply_corrected(&mut groups, &inputs, cal)?;
        }
        Ok(groups)
    }

    /// The merged table rendered as a [`BreakdownReport`].
    ///
    /// # Errors
    ///
    /// Same as [`Analysis::table`].
    pub fn report(&self) -> Result<BreakdownReport, AnalysisError> {
        Ok(BreakdownReport::from_table(&self.table()?))
    }

    /// A full [`CorrectedProfile`]: the (possibly corrected) merged table
    /// plus the instrumented/corrected totals and the per-source overhead
    /// stack. Without [`Analysis::corrected`] this is the uncorrected
    /// view (zero overhead, totals equal).
    ///
    /// # Errors
    ///
    /// [`AnalysisError::Unsupported`] unless the source is trace-backed
    /// (wall time and counters are needed); I/O errors otherwise as for
    /// [`Analysis::table`].
    pub fn profile(&self) -> Result<CorrectedProfile, AnalysisError> {
        let inputs = self.correction_inputs()?;
        let groups = self.resolve_groups()?;
        let mut table = BreakdownTable::new();
        for (_, t) in &groups {
            table.merge(t);
        }
        let overhead = match self.calibration {
            Some(cal) => {
                let (corrected, overhead) = self.corrected_merged(table, &inputs, cal)?;
                table = corrected;
                overhead
            }
            None => OverheadBreakdown::default(),
        };
        // The totals and overhead stack always describe the whole run
        // (that is what calibration measured); filters scope the table.
        let instrumented_total = inputs.wall;
        Ok(CorrectedProfile {
            table,
            corrected_total: instrumented_total.saturating_sub(overhead.total()),
            instrumented_total,
            overhead,
        })
    }

    /// Canonical JSON for the query result: the bare table array
    /// ([`BreakdownTable::canonical_json`]) when ungrouped, or an object
    /// keyed by [`GroupKey::label`] when grouped. Byte-stable for a given
    /// query, suitable for golden files.
    ///
    /// # Errors
    ///
    /// Same as [`Analysis::table`].
    pub fn canonical_json(&self) -> Result<String, AnalysisError> {
        if self.dims.is_empty() {
            return Ok(self.table()?.canonical_json());
        }
        Ok(groups_canonical_json(&self.tables()?, true))
    }

    /// For chunk-directory sources: `(decoded, total)` — how many chunks
    /// the manifest pushdown selects for this query versus the directory
    /// total (see the module docs' pushdown table). `Ok(None)` for
    /// in-memory sources. Running the query decodes exactly the selected
    /// chunks; the result is table-identical to a full scan either way.
    ///
    /// # Errors
    ///
    /// I/O or corruption errors from the directory or its manifest, and
    /// [`AnalysisError::Unsupported`] when [`Analysis::corrected`] is
    /// set — overhead correction needs a trace-backed source, so such a
    /// query cannot run (and therefore has no decode plan).
    pub fn chunk_plan(&self) -> Result<Option<(usize, usize)>, AnalysisError> {
        match &self.source {
            Source::ChunkDir(dir) => {
                if self.calibration.is_some() {
                    // Mirror the error the query itself produces, rather
                    // than reporting a plan for an impossible run.
                    self.correction_inputs()?;
                }
                let per_process = self.dims.contains(&Dim::Process);
                let (files, total) =
                    self.pushdown_selection(dir, per_process, true).map_err(AnalysisError::Io)?;
                Ok(Some((files.len(), total)))
            }
            _ => Ok(None),
        }
    }

    // ----- execution ----------------------------------------------------

    /// True when the query is a bare unfiltered batch sweep.
    fn is_plain(&self) -> bool {
        self.phase_filter.is_none()
            && self.process_filter.is_none()
            && self.operation_filter.is_none()
            && self.window.is_none()
            && self.dims.is_empty()
            && self.calibration.is_none()
            && !matches!(
                self.source,
                Source::ChunkDir(_) | Source::RollupDir(_) | Source::Live(_) | Source::Sessions(_)
            )
    }

    /// Runs the source + filters + grouping stages, producing the final
    /// keyed tables with all filters applied (correction is applied by
    /// the sinks).
    fn resolve_groups(&self) -> Result<Vec<(GroupKey, BreakdownTable)>, AnalysisError> {
        self.resolve_groups_with(true)
    }

    /// [`Analysis::resolve_groups`], optionally ignoring every filter —
    /// the `filters = false` form computes the full-view reference that
    /// [`Analysis::apply_corrected`] distributes overhead against.
    fn resolve_groups_with(
        &self,
        filters: bool,
    ) -> Result<Vec<(GroupKey, BreakdownTable)>, AnalysisError> {
        if let Source::Sessions(sessions) = &self.source {
            return self.resolve_sessions(sessions, filters);
        }
        if self.dims.contains(&Dim::Session) {
            return Err(AnalysisError::Unsupported(
                "group_by(Dim::Session) needs a cross-session source (Analysis::of_sessions); \
                 single-source queries have no session identity"
                    .to_string(),
            ));
        }
        let want_phase = self.dims.contains(&Dim::Phase);
        let want_proc = self.dims.contains(&Dim::Process);
        let want_op = self.dims.contains(&Dim::Operation);
        let track_phases = want_phase || self.phase_filter.is_some();
        let raw = match &self.source {
            Source::ChunkDir(dir) => {
                self.resolve_streamed(dir, want_proc, track_phases, filters)?
            }
            Source::RollupDir(dir) => self.resolve_rollup(dir, want_proc, filters)?,
            Source::Live(tables) => self.resolve_live(tables, want_proc, filters)?,
            _ => self.resolve_batch(want_proc, track_phases, filters),
        };
        Ok(self.assemble(raw, want_phase, want_op, filters))
    }

    /// Cross-session execution: each composed session resolves through
    /// its own sub-pipeline (the same filters and grouping minus the
    /// session dimension), then the per-session groups are either tagged
    /// with their session name (`group_by(Dim::Session)`, composition
    /// order) or merged by group key in first-seen order via
    /// [`BreakdownTable::merge`] — so the grouped view always sums
    /// exactly to the merged rollup.
    fn resolve_sessions(
        &self,
        sessions: &[(Arc<str>, SessionSource<'a>)],
        filters: bool,
    ) -> Result<Vec<(GroupKey, BreakdownTable)>, AnalysisError> {
        let want_session = self.dims.contains(&Dim::Session);
        let mut out: Vec<(GroupKey, BreakdownTable)> = Vec::new();
        let mut index: HashMap<GroupKey, usize> = HashMap::new();
        for (name, source) in sessions {
            let mut sub = match source {
                SessionSource::ChunkDir(dir) => Analysis::from_chunk_dir(dir.clone()),
                SessionSource::RollupDir(dir) => Analysis::from_rollup_dir(dir.clone()),
                SessionSource::Live(tables) => Analysis::of_live(tables),
            };
            sub.lag = self.lag;
            sub.phase_filter = self.phase_filter.clone();
            sub.process_filter = self.process_filter;
            sub.operation_filter = self.operation_filter.clone();
            sub.window = self.window;
            sub.dims = self.dims.iter().copied().filter(|d| *d != Dim::Session).collect();
            for (mut key, table) in sub.resolve_groups_with(filters)? {
                if want_session {
                    key.session = Some(name.clone());
                }
                match index.get(&key) {
                    Some(&i) => out[i].1.merge(&table),
                    None => {
                        index.insert(key.clone(), out.len());
                        out.push((key, table));
                    }
                }
            }
        }
        Ok(out)
    }

    /// True when any filter stage is active.
    fn has_filters(&self) -> bool {
        self.phase_filter.is_some()
            || self.process_filter.is_some()
            || self.operation_filter.is_some()
            || self.window.is_some()
    }

    /// Batch execution: builds the (filtered, possibly clipped) row set
    /// and sweeps it — per process in parallel when the process dimension
    /// is requested.
    fn resolve_batch(
        &self,
        per_process: bool,
        track_phases: bool,
        filters: bool,
    ) -> Vec<(Option<ProcessId>, PhaseTables)> {
        let mut rows: Rows<'_> = match &self.source {
            Source::Events(events) => Rows::Slice(events),
            Source::Indexed(events, indices) => Rows::SliceIndexed(events, Cow::Borrowed(indices)),
            Source::Trace(t) => Rows::Slice(&t.events),
            Source::Merged(ts) => Rows::Refs(ts.iter().flat_map(|t| t.events.iter()).collect()),
            Source::ChunkDir(_) => unreachable!("handled by resolve_streamed"),
            Source::RollupDir(_) => unreachable!("handled by resolve_rollup"),
            Source::Live(_) => unreachable!("handled by resolve_live"),
            Source::Sessions(_) => unreachable!("handled by resolve_sessions"),
        };
        if let Some(pid) = self.process_filter.filter(|_| filters) {
            rows = match rows {
                Rows::Slice(events) => Rows::SliceIndexed(
                    events,
                    Cow::Owned(
                        (0..events.len() as u32)
                            .filter(|&i| events[i as usize].pid == pid)
                            .collect(),
                    ),
                ),
                Rows::SliceIndexed(events, indices) => Rows::SliceIndexed(
                    events,
                    Cow::Owned(
                        indices
                            .iter()
                            .copied()
                            .filter(|&i| events[i as usize].pid == pid)
                            .collect(),
                    ),
                ),
                Rows::Refs(mut refs) => {
                    refs.retain(|e| e.pid == pid);
                    Rows::Refs(refs)
                }
                Rows::Clipped(_) => unreachable!("clipping happens after the process filter"),
            };
        }
        if let Some(w) = self.window.filter(|_| filters) {
            rows = Rows::Clipped(rows.iter().filter_map(|e| clip_event(e, w)).collect());
        }
        if per_process {
            per_process_sweeps(&rows, track_phases)
        } else if track_phases {
            vec![(None, sweep_tables_by_phase(rows.iter()))]
        } else {
            vec![(None, vec![(Arc::from(NO_PHASE), sweep_tables(rows.iter()))])]
        }
    }

    /// The manifest-pushdown predicate for the current filters. Phase
    /// pushdown is withheld for [`NO_PHASE`] (not expressible as a chunk
    /// predicate) and for process-grouped **windowed** queries (group
    /// enumeration follows each process's first *in-window* event, which
    /// footers cannot locate) — see the module docs' table. Plain
    /// process-grouped queries push the phase down and keep each pid's
    /// first-appearance chunk instead, so group rows and their first-seen
    /// order survive the skipping exactly.
    fn chunk_query(&self, per_process: bool, filters: bool) -> ChunkQuery {
        let mut query = ChunkQuery::default();
        if !filters {
            return query;
        }
        if let Some((lo, hi)) = self.window {
            query.window = Some((lo.as_nanos(), hi.as_nanos()));
        }
        if let Some(pid) = self.process_filter {
            query.pid = Some(pid.as_u32());
        }
        if let Some(phase) = &self.phase_filter {
            if &**phase != NO_PHASE && !(per_process && self.window.is_some()) {
                query.phase = Some(phase.clone());
                // Exact group enumeration: a process row exists for every
                // process in the (possibly pid-filtered) stream even when
                // the phase contributes it nothing, in first-seen order.
                query.keep_pid_introductions = per_process;
            }
        }
        query
    }

    /// Resolves which chunk files the query must decode: the full stream
    /// listing when no predicate applies, otherwise the manifest
    /// selection. Returns `(files, directory total)`.
    fn pushdown_selection(
        &self,
        dir: &std::path::Path,
        per_process: bool,
        filters: bool,
    ) -> Result<(Vec<PathBuf>, usize), TraceIoError> {
        let query = self.chunk_query(per_process, filters);
        if query.is_unconstrained() {
            let files = list_chunk_files(dir)?;
            let total = files.len();
            return Ok((files, total));
        }
        let selection = Manifest::open(dir)?.select(&query);
        Ok((selection.files, selection.total))
    }

    /// Streamed execution over a chunk directory: manifest pushdown, the
    /// chunk-parallel decode stage, and the transparent exact-sweep
    /// fallback when bounded mode detects excess disorder.
    fn resolve_streamed(
        &self,
        dir: &std::path::Path,
        per_process: bool,
        track_phases: bool,
        filters: bool,
    ) -> Result<Vec<(Option<ProcessId>, PhaseTables)>, AnalysisError> {
        let (files, _) =
            self.pushdown_selection(dir, per_process, filters).map_err(AnalysisError::Io)?;
        match self.try_streamed(&files, self.lag, per_process, track_phases, filters) {
            Ok(raw) => Ok(raw),
            // Disorder beyond the lag: the chunks are still on disk, so
            // re-read them with exact sweeps.
            Err(StreamedError::Order) if self.lag.is_some() => {
                match self.try_streamed(&files, None, per_process, track_phases, filters) {
                    Ok(raw) => Ok(raw),
                    Err(StreamedError::Io(e)) => Err(e.into()),
                    Err(StreamedError::Order) => unreachable!("exact sweeps accept any order"),
                }
            }
            Err(StreamedError::Order) => unreachable!("exact sweeps accept any order"),
            Err(StreamedError::Io(e)) => Err(e.into()),
        }
    }

    fn try_streamed(
        &self,
        files: &[PathBuf],
        lag: Option<DurationNs>,
        per_process: bool,
        track_phases: bool,
        filters: bool,
    ) -> Result<Vec<(Option<ProcessId>, PhaseTables)>, StreamedError> {
        let new_sweep = || {
            let sweep = match lag {
                Some(d) => OverlapSweep::bounded(d),
                None => OverlapSweep::new(),
            };
            if track_phases {
                sweep.with_phase_tagging()
            } else {
                sweep
            }
        };
        let mut slot_of: HashMap<ProcessId, usize> = HashMap::new();
        let mut sweeps: Vec<(Option<ProcessId>, OverlapSweep)> = Vec::new();
        if !per_process {
            sweeps.push((None, new_sweep()));
        }
        let map_err = |err: SweepError| match err {
            SweepError::OrderViolation { .. } => StreamedError::Order,
            other => StreamedError::Io(TraceIoError::Corrupt(other.to_string())),
        };
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        for_each_decoded_chunk_columns::<StreamedError>(files, threads, |mut cols| {
            if filters {
                if let Some(pid) = self.process_filter {
                    cols.retain_pid(pid.as_u32());
                }
                // Clip before slot creation: an event the window drops
                // entirely must not materialize an empty per-process
                // group the batch path would not produce.
                if let Some((lo, hi)) = self.window {
                    cols.clip_window(lo.as_nanos(), hi.as_nanos());
                }
            }
            if !per_process {
                return sweeps[0].1.push_columns(&cols).map_err(map_err);
            }
            // Distinct pids of this chunk in first-appearance order, so
            // sweep slots are created in the order the row-at-a-time path
            // would have created them.
            let mut chunk_pids: Vec<u32> = Vec::new();
            for &raw in &cols.pids {
                if chunk_pids.last() != Some(&raw) && !chunk_pids.contains(&raw) {
                    chunk_pids.push(raw);
                }
            }
            for &raw in &chunk_pids {
                let pid = ProcessId(raw);
                let slot = *slot_of.entry(pid).or_insert_with(|| {
                    sweeps.push((Some(pid), new_sweep()));
                    sweeps.len() - 1
                });
                sweeps[slot].1.push_columns_filtered(&cols, raw).map_err(map_err)?;
            }
            Ok(())
        })?;
        let keep_empty = self.keep_empty_phases;
        Ok(sweeps
            .into_iter()
            .map(|(pid, sweep)| {
                let tables = if keep_empty {
                    sweep.finalize_grouped_keep_empty()
                } else {
                    sweep.finalize_grouped()
                };
                (pid, tables)
            })
            .collect())
    }

    /// Live-snapshot execution: the sweeps already ran at ingest, so the
    /// query only selects among their finalized tables. An ungrouped
    /// query reads the merged-stream tables; process grouping (or an
    /// ungrouped process filter, whose batch semantics are "sweep only
    /// that process's events") reads the per-process tables. Phase and
    /// operation filters are applied downstream by `assemble`, exactly
    /// as for every other source.
    fn resolve_live(
        &self,
        tables: &LiveTables,
        per_process: bool,
        filters: bool,
    ) -> Result<Vec<(Option<ProcessId>, PhaseTables)>, AnalysisError> {
        if self.window.is_some() {
            return Err(AnalysisError::Unsupported(
                "time_window over a live snapshot: sweep state has no event-level \
                 granularity — window queries need the session's chunk directory"
                    .to_string(),
            ));
        }
        let pid_filter = self.process_filter.filter(|_| filters);
        if per_process {
            Ok(tables
                .per_process
                .iter()
                .filter(|(pid, _)| pid_filter.is_none_or(|want| *pid == want))
                .map(|(pid, t)| (Some(*pid), t.clone()))
                .collect())
        } else if let Some(pid) = pid_filter {
            // Batch semantics for an ungrouped `.process(pid)` query are
            // "sweep only that process's events" — which is exactly the
            // per-process sweep. An absent pid yields the empty table the
            // batch path would produce.
            let tables = tables
                .per_process
                .iter()
                .find(|(p, _)| *p == pid)
                .map(|(_, t)| t.clone())
                .unwrap_or_default();
            Ok(vec![(None, tables)])
        } else {
            Ok(vec![(None, tables.merged.clone())])
        }
    }

    /// Rollup-directory execution: the sweeps ran at compaction time, so
    /// the query selects segments by window and merges their stored
    /// tables — mirroring [`Analysis::resolve_live`]'s selection among
    /// finalized tables, plus the segment-granularity window rule (see
    /// [`Analysis::from_rollup_dir`]). No raw event is ever decoded.
    fn resolve_rollup(
        &self,
        dir: &std::path::Path,
        per_process: bool,
        filters: bool,
    ) -> Result<Vec<(Option<ProcessId>, PhaseTables)>, AnalysisError> {
        let rollup = Rollup::open(dir).map_err(AnalysisError::Io)?;
        let selected: Vec<usize> = match self.window.filter(|_| filters) {
            None => (0..rollup.segments().len()).collect(),
            Some((lo, hi)) => {
                rollup.select_window(lo.as_nanos(), hi.as_nanos()).ok_or_else(|| {
                    AnalysisError::Unsupported(format!(
                        "time_window [{}, {}) over a rollup splits a segment: rollups \
                         hold {} ns pre-aggregated windows, so window edges must land \
                         on segment boundaries (raw resolution needs the raw tier)",
                        lo.as_nanos(),
                        hi.as_nanos(),
                        rollup.segment_ns(),
                    ))
                })?
            }
        };
        let pid_filter = self.process_filter.filter(|_| filters);
        let mut merged: PhaseTables = Vec::new();
        let mut per_proc: Vec<(ProcessId, PhaseTables)> = Vec::new();
        for idx in selected {
            let seg = rollup.read_segment(idx).map_err(AnalysisError::Io)?;
            merge_phase_tables(&mut merged, &seg.merged);
            for (pid, tables) in &seg.per_process {
                match per_proc.iter_mut().find(|(p, _)| p == pid) {
                    Some((_, acc)) => merge_phase_tables(acc, tables),
                    None => per_proc.push((*pid, tables.clone())),
                }
            }
        }
        // Segments store presence rows (empty tables mark a phase whose
        // annotation intersects the window) to pin cross-segment group
        // order; a sweep never emits empty phase groups, so drop the
        // rows that stayed empty after the merge.
        merged.retain(|(_, t)| !t.is_empty());
        for (_, tables) in &mut per_proc {
            tables.retain(|(_, t)| !t.is_empty());
        }
        if per_process {
            Ok(per_proc
                .into_iter()
                .filter(|(pid, _)| pid_filter.is_none_or(|want| *pid == want))
                .map(|(pid, t)| (Some(pid), t))
                .collect())
        } else if let Some(pid) = pid_filter {
            // Batch semantics for an ungrouped `.process(pid)` query are
            // "sweep only that process's events" — the stored per-process
            // tables. An absent pid yields the empty table.
            let tables = per_proc.into_iter().find(|(p, _)| *p == pid).map(|(_, t)| t);
            Ok(vec![(None, tables.unwrap_or_default())])
        } else {
            Ok(vec![(None, merged)])
        }
    }

    /// Applies the phase filter, collapses undesired dimensions, applies
    /// the operation filter/split, and assembles the final group keys.
    fn assemble(
        &self,
        raw: Vec<(Option<ProcessId>, PhaseTables)>,
        want_phase: bool,
        want_op: bool,
        filters: bool,
    ) -> Vec<(GroupKey, BreakdownTable)> {
        let mut out = Vec::new();
        for (pid, mut phase_tables) in raw {
            if let Some(pf) = self.phase_filter.as_ref().filter(|_| filters) {
                phase_tables.retain(|(name, _)| name == pf);
            }
            let keyed: Vec<(Option<Arc<str>>, BreakdownTable)> = if want_phase {
                phase_tables.into_iter().map(|(name, t)| (Some(name), t)).collect()
            } else {
                // A process entry survives even when its table is empty
                // (a process can exist with nothing attributable); empty
                // *phase* groups are never emitted by the sweeps.
                let mut merged = BreakdownTable::new();
                for (_, t) in &phase_tables {
                    merged.merge(t);
                }
                vec![(None, merged)]
            };
            for (phase, mut table) in keyed {
                if let Some(of) = self.operation_filter.as_ref().filter(|_| filters) {
                    table = filter_table(&table, |k| k.operation == *of);
                }
                if want_op {
                    // One sorted walk over the table (op-major key order)
                    // instead of a full re-scan per operation.
                    for (op, sub) in table.split_by_operation() {
                        out.push((
                            GroupKey {
                                session: None,
                                phase: phase.clone(),
                                process: pid,
                                operation: Some(op),
                            },
                            sub,
                        ));
                    }
                } else {
                    out.push((
                        GroupKey { session: None, phase, process: pid, operation: None },
                        table,
                    ));
                }
            }
        }
        out
    }

    /// Applies overhead correction to already-resolved result tables (see
    /// [`Analysis::corrected`] for the semantics): the whole-run overhead
    /// is subtracted from the **unfiltered** full view first, then each
    /// result table takes its proportional share of every bucket's
    /// subtraction. When the result tables partition the full view
    /// exactly (no filters), a largest-remainder split keeps the groups
    /// summing to the corrected merged table to the nanosecond. Returns
    /// the whole-run overhead estimate.
    /// [`Analysis::apply_corrected`] over one already-merged table,
    /// returning the corrected table and the overhead estimate.
    fn corrected_merged(
        &self,
        table: BreakdownTable,
        inputs: &CorrectionInputs,
        cal: &Calibration,
    ) -> Result<(BreakdownTable, OverheadBreakdown), AnalysisError> {
        let mut single =
            [(GroupKey { session: None, phase: None, process: None, operation: None }, table)];
        let overhead = self.apply_corrected(&mut single, inputs, cal)?;
        let [(_, corrected)] = single;
        Ok((corrected, overhead))
    }

    fn apply_corrected(
        &self,
        groups: &mut [(GroupKey, BreakdownTable)],
        inputs: &CorrectionInputs,
        cal: &Calibration,
    ) -> Result<OverheadBreakdown, AnalysisError> {
        let mut full = BreakdownTable::new();
        if self.has_filters() {
            for (_, t) in &self.resolve_groups_with(false)? {
                full.merge(t);
            }
        } else {
            for (_, t) in groups.iter() {
                full.merge(t);
            }
        }
        let mut corrected = full.clone();
        let overhead = apply_correction(&mut corrected, inputs, cal);
        for (key, had) in full.iter() {
            let removed = had.saturating_sub(corrected.get(key)).as_nanos();
            if removed == 0 {
                continue;
            }
            let parts: Vec<u64> = groups.iter().map(|(_, t)| t.get(key).as_nanos()).collect();
            let shares: Vec<u64> = if parts.iter().sum::<u64>() == had.as_nanos() {
                split_proportionally(removed, &parts)
            } else {
                // A filtered subset of the full view: round-down shares
                // (conservation is not observable without the complement),
                // capped at what each table holds for the buckets whose
                // attribution a filter shifted.
                parts
                    .iter()
                    .map(|&p| {
                        let share = (u128::from(removed) * u128::from(p)
                            / u128::from(had.as_nanos()))
                            as u64;
                        share.min(p)
                    })
                    .collect()
            };
            for ((_, t), share) in groups.iter_mut().zip(shares) {
                t.subtract(key, DurationNs::from_nanos(share));
            }
        }
        Ok(overhead)
    }

    /// Book-keeping counters and wall time needed by overhead correction
    /// and [`Analysis::profile`].
    fn correction_inputs(&self) -> Result<CorrectionInputs, AnalysisError> {
        match &self.source {
            Source::Trace(t) => Ok(CorrectionInputs::from_trace(t)),
            Source::Merged(ts) => Ok(CorrectionInputs::from_traces(ts)),
            _ => Err(AnalysisError::Unsupported(
                "overhead correction and profiles need a trace-backed source \
                 (Analysis::of or Analysis::merged) for book-keeping counters"
                    .to_string(),
            )),
        }
    }
}

/// Renders already-resolved groups in the canonical JSON form of
/// [`Analysis::canonical_json`]: the bare merged-table array when
/// `grouped` is false, otherwise an object keyed by [`GroupKey::label`]
/// in group order. Byte-stable. Public so consumers that merge groups
/// *across* pipelines — the collector's federation tier foremost — can
/// render the exact bytes a single equivalent query would have produced.
pub fn groups_canonical_json(groups: &[(GroupKey, BreakdownTable)], grouped: bool) -> String {
    if !grouped {
        let mut table = BreakdownTable::new();
        for (_, t) in groups {
            table.merge(t);
        }
        return table.canonical_json();
    }
    let mut out = String::from("{\n");
    for (i, (key, table)) in groups.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        crate::overlap::json_escape_into(&key.label(), &mut out);
        out.push_str(": ");
        out.push_str(table.canonical_json().trim_end());
    }
    out.push_str("\n}\n");
    out
}

enum StreamedError {
    Io(TraceIoError),
    Order,
}

impl From<TraceIoError> for StreamedError {
    fn from(e: TraceIoError) -> Self {
        StreamedError::Io(e)
    }
}

/// Clips an event to a half-open window, dropping it when nothing is
/// left. Clipping all events to the window yields exactly the
/// within-window attribution, because the sweep is segment-based.
///
/// An **instant** event (`start == end`) is kept when its instant lies
/// in `[lo, hi)`. It attributes no time, but it carries *presence*:
/// the pid/phase/operation it introduces must enumerate in windowed
/// queries exactly as in the full stream (the rollup tier rebuilds
/// group order from per-window queries — see [`crate::rollup`]), and
/// aligned windows tile the line, so each instant lands in exactly one.
fn clip_event(e: &Event, (lo, hi): (TimeNs, TimeNs)) -> Option<Event> {
    let start = e.start.max(lo);
    let end = e.end.min(hi);
    (start < end || (e.start == e.end && lo <= e.start && e.start < hi)).then(|| Event {
        start,
        end,
        ..e.clone()
    })
}

/// A table restricted to buckets matching `pred`.
fn filter_table(table: &BreakdownTable, pred: impl Fn(&BucketKey) -> bool) -> BreakdownTable {
    let mut out = BreakdownTable::new();
    for (k, d) in table.iter() {
        if pred(k) {
            out.add(k.clone(), d);
        }
    }
    out
}

/// The batch resolver's row set. Single-slice sources (one trace, one
/// event slice, one index subset) are carried as the borrowed slice plus
/// — only when a filter narrows them — a `u32` index list, i.e. 4 bytes
/// per kept event. Only merged multi-trace sources materialize an
/// 8-byte-per-event reference list, and window clipping (which rewrites
/// events) owns the clipped events themselves.
enum Rows<'a> {
    /// Every event of one borrowed slice.
    Slice(&'a [Event]),
    /// An index subset of one borrowed slice.
    SliceIndexed(&'a [Event], Cow<'a, [u32]>),
    /// Window-clipped events (clipping rewrites endpoints).
    Clipped(Vec<Event>),
    /// Concatenated references over several traces.
    Refs(Vec<&'a Event>),
}

impl Rows<'_> {
    fn len(&self) -> usize {
        match self {
            Rows::Slice(events) => events.len(),
            Rows::SliceIndexed(_, indices) => indices.len(),
            Rows::Clipped(events) => events.len(),
            Rows::Refs(refs) => refs.len(),
        }
    }

    fn get(&self, i: usize) -> &Event {
        match self {
            Rows::Slice(events) => &events[i],
            Rows::SliceIndexed(events, indices) => &events[indices[i] as usize],
            Rows::Clipped(events) => &events[i],
            Rows::Refs(refs) => refs[i],
        }
    }

    fn iter(&self) -> impl Iterator<Item = &Event> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// Per-process sweeps over one borrowed row set: the merged stream is
/// partitioned into per-pid index lists in one pass (first-seen pid
/// order, no event clones), then each process sweeps on a worker thread,
/// capped at the machine's available parallelism.
fn per_process_sweeps(
    rows: &Rows<'_>,
    track_phases: bool,
) -> Vec<(Option<ProcessId>, PhaseTables)> {
    let mut slot_of: HashMap<ProcessId, usize> = HashMap::new();
    let mut tasks: Vec<(ProcessId, Vec<u32>)> = Vec::new();
    for i in 0..rows.len() {
        let pid = rows.get(i).pid;
        let slot = *slot_of.entry(pid).or_insert_with(|| {
            tasks.push((pid, Vec::new()));
            tasks.len() - 1
        });
        tasks[slot].1.push(i as u32);
    }
    let sweep_one = |indices: &[u32]| -> PhaseTables {
        let it = indices.iter().map(|&i| rows.get(i as usize));
        if track_phases {
            sweep_tables_by_phase(it)
        } else {
            vec![(Arc::from(NO_PHASE), sweep_tables(it))]
        }
    };

    let workers =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(tasks.len());
    if workers <= 1 {
        return tasks.into_iter().map(|(pid, indices)| (Some(pid), sweep_one(&indices))).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<PhaseTables>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((_, indices)) = tasks.get(i) else { break };
                *results[i].lock() = Some(sweep_one(indices));
            });
        }
    });
    tasks
        .into_iter()
        .zip(results)
        .map(|((pid, _), result)| (Some(pid), result.into_inner().expect("worker completed")))
        .collect()
}

/// Splits `amount` across `parts` proportionally, never exceeding any
/// part, with the rounding remainder assigned round-robin to parts that
/// still have capacity. Requires `amount <= parts.sum()`.
fn split_proportionally(amount: u64, parts: &[u64]) -> Vec<u64> {
    let total: u128 = parts.iter().map(|&p| u128::from(p)).sum();
    debug_assert!(u128::from(amount) <= total, "cannot remove more than the parts hold");
    if total == 0 {
        return vec![0; parts.len()];
    }
    let mut shares: Vec<u64> =
        parts.iter().map(|&p| (u128::from(amount) * u128::from(p) / total) as u64).collect();
    let mut left = amount - shares.iter().sum::<u64>();
    let mut i = 0;
    while left > 0 {
        if shares[i] < parts[i] {
            shares[i] += 1;
            left -= 1;
        }
        i = (i + 1) % parts.len();
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CpuCategory, EventKind, GpuCategory};
    use crate::overlap::compute_overlap;

    fn ev(pid: u32, kind: EventKind, name: &str, start_us: u64, end_us: u64) -> Event {
        Event::new(
            ProcessId(pid),
            kind,
            name,
            TimeNs::from_micros(start_us),
            TimeNs::from_micros(end_us),
        )
    }

    /// Two phases with a gap between them (untagged time), two processes,
    /// nested operations, and GPU time. Phases scope the merged stream:
    /// pid 1's simulator work falls under whatever phase is active.
    fn phased_events() -> Vec<Event> {
        vec![
            ev(0, EventKind::Phase, "collect", 0, 100),
            ev(0, EventKind::Phase, "train", 120, 200),
            ev(0, EventKind::Operation, "simulation", 10, 90),
            ev(0, EventKind::Operation, "backprop", 130, 190),
            ev(0, EventKind::Cpu(CpuCategory::Python), "py", 0, 200),
            ev(0, EventKind::Gpu(GpuCategory::Kernel), "k", 140, 180),
            ev(1, EventKind::Cpu(CpuCategory::Simulator), "sim", 20, 140),
        ]
    }

    #[test]
    fn plain_table_matches_compute_overlap() {
        let events = phased_events();
        assert_eq!(Analysis::of_events(&events).table().unwrap(), compute_overlap(&events));
    }

    #[test]
    fn phase_groups_sum_to_overall() {
        let events = phased_events();
        let overall = Analysis::of_events(&events).table().unwrap();
        let by_phase = Analysis::of_events(&events).group_by([Dim::Phase]).tables().unwrap();
        assert_eq!(by_phase.len(), 3, "expected no-phase/collect/train groups: {by_phase:?}");
        let mut merged = BreakdownTable::new();
        for (key, t) in &by_phase {
            assert!(key.phase.is_some() && key.process.is_none() && key.operation.is_none());
            merged.merge(t);
        }
        assert_eq!(merged, overall);
    }

    #[test]
    fn phase_filter_selects_one_phase() {
        let events = phased_events();
        let by_phase = Analysis::of_events(&events).group_by([Dim::Phase]).tables().unwrap();
        let train_group =
            by_phase.iter().find(|(k, _)| k.phase.as_deref() == Some("train")).unwrap();
        let filtered = Analysis::of_events(&events).phase("train").table().unwrap();
        assert_eq!(filtered, train_group.1);
        // The gap between the phases ([100,120)) lands in NO_PHASE.
        let untagged = Analysis::of_events(&events).phase(NO_PHASE).table().unwrap();
        assert_eq!(untagged.total(), DurationNs::from_micros(20));
    }

    #[test]
    fn process_group_matches_indexed_sweeps() {
        let events = phased_events();
        let groups = Analysis::of_events(&events).group_by([Dim::Process]).tables().unwrap();
        assert_eq!(groups.len(), 2);
        for (key, table) in &groups {
            let pid = key.process.unwrap();
            let filtered: Vec<Event> = events.iter().filter(|e| e.pid == pid).cloned().collect();
            assert_eq!(table, &compute_overlap(&filtered), "pid {pid:?}");
        }
    }

    #[test]
    fn phase_process_cross_product_conserves() {
        let events = phased_events();
        let groups =
            Analysis::of_events(&events).group_by([Dim::Phase, Dim::Process]).tables().unwrap();
        let per_proc_total: DurationNs = Analysis::of_events(&events)
            .group_by([Dim::Process])
            .tables()
            .unwrap()
            .iter()
            .map(|(_, t)| t.total())
            .sum();
        let cross_total: DurationNs = groups.iter().map(|(_, t)| t.total()).sum();
        assert_eq!(cross_total, per_proc_total);
        for (key, _) in &groups {
            assert!(key.phase.is_some() && key.process.is_some());
        }
    }

    #[test]
    fn operation_group_splits_tables() {
        let events = phased_events();
        let groups = Analysis::of_events(&events).group_by([Dim::Operation]).tables().unwrap();
        let overall = Analysis::of_events(&events).table().unwrap();
        let sum: DurationNs = groups.iter().map(|(_, t)| t.total()).sum();
        assert_eq!(sum, overall.total());
        for (key, table) in &groups {
            let op = key.operation.clone().unwrap();
            assert_eq!(table.total(), overall.operation_total(&op));
        }
    }

    #[test]
    fn operation_filter_keeps_one_operation() {
        let events = phased_events();
        let t = Analysis::of_events(&events).operation("backprop").table().unwrap();
        assert_eq!(
            t.total(),
            Analysis::of_events(&events).table().unwrap().operation_total("backprop")
        );
        assert!(t.iter().all(|(k, _)| &*k.operation == "backprop"));
    }

    #[test]
    fn time_window_clips_attribution() {
        let events = phased_events();
        let full = Analysis::of_events(&events).table().unwrap();
        let first_half = Analysis::of_events(&events)
            .time_window(TimeNs::ZERO, TimeNs::from_micros(100))
            .table()
            .unwrap();
        let second_half = Analysis::of_events(&events)
            .time_window(TimeNs::from_micros(100), TimeNs::from_micros(200))
            .table()
            .unwrap();
        assert_eq!(first_half.total() + second_half.total(), full.total());
        assert_eq!(first_half.gpu_total(), DurationNs::ZERO);
        assert_eq!(second_half.gpu_total(), DurationNs::from_micros(40));
    }

    #[test]
    fn merged_traces_match_trace_merge() {
        let mk = |pid: u32, end: u64| Trace {
            pid: ProcessId(pid),
            events: vec![ev(pid, EventKind::Cpu(CpuCategory::Python), "py", 0, end)],
            counts: Default::default(),
            per_op_transitions: vec![],
            api_stats: vec![],
            iterations: 1,
            wall_end: TimeNs::from_micros(end),
        };
        let traces = vec![mk(0, 50), mk(1, 80)];
        let merged_trace = Trace::merge(traces.clone());
        assert_eq!(
            Analysis::merged(&traces).table().unwrap(),
            Analysis::of(&merged_trace).table().unwrap()
        );
        let per_proc = Analysis::merged(&traces).group_by([Dim::Process]).tables().unwrap();
        assert_eq!(per_proc.len(), 2);
    }

    #[test]
    fn canonical_json_is_stable_and_keyed() {
        let events = phased_events();
        let a = Analysis::of_events(&events)
            .group_by([Dim::Phase, Dim::Process])
            .canonical_json()
            .unwrap();
        let b = Analysis::of_events(&events)
            .group_by([Dim::Phase, Dim::Process])
            .canonical_json()
            .unwrap();
        assert_eq!(a, b);
        assert!(a.contains("\"phase=collect pid=0\""), "{a}");
        let plain = Analysis::of_events(&events).canonical_json().unwrap();
        assert!(plain.starts_with('['));
    }

    #[test]
    fn correction_requires_trace_backed_source() {
        let events = phased_events();
        let cal = Calibration::default();
        let err = Analysis::of_events(&events).corrected(&cal).table().unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(_)), "{err}");
    }

    #[test]
    fn grouped_correction_sums_to_corrected_merged_table() {
        use crate::profiler::TransitionKind;
        use rlscope_sim::cuda::CudaApiKind;

        let trace = Trace {
            pid: ProcessId(0),
            events: vec![
                ev(0, EventKind::Phase, "collect", 0, 100),
                ev(0, EventKind::Phase, "train", 100, 200),
                ev(0, EventKind::Operation, "backprop", 0, 200),
                ev(0, EventKind::Cpu(CpuCategory::Python), "py", 0, 200),
            ],
            counts: crate::event::BookkeepingCounts { annotations: 2, ..Default::default() },
            per_op_transitions: vec![((Arc::from("backprop"), TransitionKind::Backend), 10)],
            api_stats: vec![(CudaApiKind::LaunchKernel, (0, DurationNs::ZERO))],
            iterations: 1,
            wall_end: TimeNs::from_micros(200),
        };
        let cal = Calibration {
            annotation_mean: DurationNs::from_micros(1),
            py_interception_mean: DurationNs::from_micros(2),
            ..Default::default()
        };
        let corrected = Analysis::of(&trace).corrected(&cal).table().unwrap();
        let groups = Analysis::of(&trace).corrected(&cal).group_by([Dim::Phase]).tables().unwrap();
        let sum: DurationNs = groups.iter().map(|(_, t)| t.total()).sum();
        assert_eq!(sum, corrected.total());
        // 200 - 10*2 - 2*1 = 178us survive correction.
        assert_eq!(corrected.total(), DurationNs::from_micros(178));
    }

    /// A filtered query must take only its proportional share of the
    /// whole-run overhead, never the full amount (which used to
    /// overcorrect the filtered slice).
    #[test]
    fn filtered_correction_takes_proportional_share() {
        use crate::profiler::TransitionKind;

        // 200us of backprop/Python split evenly across two phases; 10
        // backend transitions at 2us each = 20us of overhead on the
        // (backprop, Python) bucket.
        let trace = Trace {
            pid: ProcessId(0),
            events: vec![
                ev(0, EventKind::Phase, "collect", 0, 100),
                ev(0, EventKind::Phase, "train", 100, 200),
                ev(0, EventKind::Operation, "backprop", 0, 200),
                ev(0, EventKind::Cpu(CpuCategory::Python), "py", 0, 200),
            ],
            counts: Default::default(),
            per_op_transitions: vec![((Arc::from("backprop"), TransitionKind::Backend), 10)],
            api_stats: vec![],
            iterations: 1,
            wall_end: TimeNs::from_micros(200),
        };
        let cal =
            Calibration { py_interception_mean: DurationNs::from_micros(2), ..Default::default() };
        // Each phase holds half the bucket, so each is charged half the
        // 20us subtraction: 100 - 10 = 90us.
        let train = Analysis::of(&trace).phase("train").corrected(&cal).table().unwrap();
        assert_eq!(train.total(), DurationNs::from_micros(90));
        // And the filtered view equals its group in the grouped query.
        let grouped = Analysis::of(&trace).corrected(&cal).group_by([Dim::Phase]).tables().unwrap();
        let train_group =
            grouped.iter().find(|(k, _)| k.phase.as_deref() == Some("train")).unwrap();
        assert_eq!(train, train_group.1);
        // A half-run time window likewise pays half the overhead.
        let window = Analysis::of(&trace)
            .time_window(TimeNs::ZERO, TimeNs::from_micros(100))
            .corrected(&cal)
            .table()
            .unwrap();
        assert_eq!(window.total(), DurationNs::from_micros(90));
    }

    #[test]
    fn profile_without_calibration_is_uncorrected() {
        let trace = Trace {
            pid: ProcessId(0),
            events: vec![ev(0, EventKind::Cpu(CpuCategory::Python), "py", 0, 50)],
            counts: Default::default(),
            per_op_transitions: vec![],
            api_stats: vec![],
            iterations: 0,
            wall_end: TimeNs::from_micros(50),
        };
        let p = Analysis::of(&trace).profile().unwrap();
        assert_eq!(p.corrected_total, p.instrumented_total);
        assert_eq!(p.overhead.total(), DurationNs::ZERO);
    }

    #[test]
    fn split_proportionally_is_exact_and_capped() {
        let shares = split_proportionally(10, &[3, 3, 4]);
        assert_eq!(shares.iter().sum::<u64>(), 10);
        assert_eq!(shares, vec![3, 3, 4]);
        let shares = split_proportionally(7, &[5, 5]);
        assert_eq!(shares.iter().sum::<u64>(), 7);
        assert!(shares.iter().zip([5, 5]).all(|(&s, p)| s <= p));
        assert_eq!(split_proportionally(0, &[1, 2]), vec![0, 0]);
    }

    fn write_chunk_dir(tag: &str, events: &[Event], per_batch: usize) -> std::path::PathBuf {
        use crate::store::TraceWriter;
        let dir = std::env::temp_dir().join(format!("rlscope_ana_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = TraceWriter::create(&dir, 1).unwrap(); // rotate every batch
        for chunk in events.chunks(per_batch) {
            writer.write(chunk.to_vec());
        }
        writer.finish().unwrap();
        dir
    }

    /// 16 chunks with disjoint time ranges: a windowed query must decode
    /// strictly fewer chunks than the directory holds while producing
    /// exactly the full scan's windowed table.
    #[test]
    fn time_window_pushdown_skips_chunks_and_matches_batch() {
        let mut events = Vec::new();
        for c in 0..16u64 {
            for i in 0..8u64 {
                let t = c * 10_000 + i * 1_000;
                events.push(ev(
                    (i % 2) as u32,
                    if i == 0 { EventKind::Operation } else { EventKind::Cpu(CpuCategory::Python) },
                    if i == 0 { "op" } else { "py" },
                    t,
                    t + 800,
                ));
            }
        }
        let dir = write_chunk_dir("window", &events, 8);
        let lo = TimeNs::from_micros(20_000);
        let hi = TimeNs::from_micros(50_000);
        let query = Analysis::from_chunk_dir(&dir).time_window(lo, hi);
        let (decoded, total) = query.chunk_plan().unwrap().expect("chunk-dir source");
        assert_eq!(total, 16);
        assert!(decoded < total, "pushdown decoded {decoded}/{total}");
        assert!(decoded >= 3, "window spans 3 chunks, got {decoded}");
        let expected = Analysis::of_events(&events).time_window(lo, hi).table().unwrap();
        assert_eq!(query.table().unwrap(), expected);
        // Unfiltered plan decodes everything.
        assert_eq!(Analysis::from_chunk_dir(&dir).chunk_plan().unwrap(), Some((16, 16)));
        // In-memory sources have no chunk plan.
        assert_eq!(Analysis::of_events(&events).chunk_plan().unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn process_pushdown_skips_chunks_and_matches_batch() {
        // Each chunk holds one pid; filtering pid 2 decodes 1/3 of them.
        let mut events = Vec::new();
        for c in 0..9u64 {
            let pid = (c % 3) as u32;
            for i in 0..4u64 {
                let t = c * 1_000 + i * 100;
                events.push(ev(pid, EventKind::Cpu(CpuCategory::Python), "py", t, t + 80));
            }
        }
        let dir = write_chunk_dir("pid", &events, 4);
        let query = Analysis::from_chunk_dir(&dir).process(ProcessId(2));
        let (decoded, total) = query.chunk_plan().unwrap().unwrap();
        assert_eq!((decoded, total), (3, 9));
        let expected = Analysis::of_events(&events).process(ProcessId(2)).table().unwrap();
        assert_eq!(query.table().unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn phase_pushdown_skips_chunks_and_matches_batch() {
        // A phase recorded at close (profiler order): its event lands in
        // a later chunk than the time it covers. Chunks far outside the
        // phase's span are skipped; the table still matches the batch.
        let mut events: Vec<Event> = (0..64u64)
            .map(|i| ev(0, EventKind::Cpu(CpuCategory::Python), "py", i * 1_000, i * 1_000 + 900))
            .collect();
        // Covers [4ms, 10ms); recorded after the events it spans.
        events.insert(10, ev(0, EventKind::Phase, "warmup", 4_000, 10_000));
        let dir = write_chunk_dir("phase", &events, 8);
        let query = Analysis::from_chunk_dir(&dir).phase("warmup");
        let (decoded, total) = query.chunk_plan().unwrap().unwrap();
        assert!(decoded < total, "pushdown decoded {decoded}/{total}");
        let expected = Analysis::of_events(&events).phase("warmup").table().unwrap();
        assert!(!expected.is_empty());
        assert_eq!(query.table().unwrap(), expected);
        // NO_PHASE is not a chunk predicate: nothing is skipped, results
        // still agree.
        let untagged = Analysis::from_chunk_dir(&dir).phase(NO_PHASE);
        assert_eq!(untagged.chunk_plan().unwrap(), Some((total, total)));
        assert_eq!(
            untagged.table().unwrap(),
            Analysis::of_events(&events).phase(NO_PHASE).table().unwrap()
        );
        // Process-grouped phase queries push down too now: per-pid phase
        // presence in the footers plus introduction-chunk keeping make
        // the skipped scan enumeration-exact.
        let grouped = Analysis::from_chunk_dir(&dir).phase("warmup").group_by([Dim::Process]);
        let (gdec, gtotal) = grouped.chunk_plan().unwrap().unwrap();
        assert!(gdec < gtotal, "grouped pushdown decoded {gdec}/{gtotal}");
        assert_eq!(
            grouped.tables().unwrap(),
            Analysis::of_events(&events).phase("warmup").group_by([Dim::Process]).tables().unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The lifted `Dim::Process` carve-out: a phase-filtered grouped
    /// query skips chunks, yet a process whose only events sit far
    /// outside the phase span keeps its (empty) group row in first-seen
    /// order, because its introduction chunk is retained.
    #[test]
    fn grouped_phase_pushdown_preserves_group_enumeration() {
        let mut events = Vec::new();
        // pid 7 appears first — and never again after the first chunk.
        events.push(ev(7, EventKind::Cpu(CpuCategory::Simulator), "sim", 0, 500));
        events.push(ev(7, EventKind::Cpu(CpuCategory::Simulator), "sim", 600, 900));
        // pid 0 carries a long tail of work plus the phase annotation.
        for i in 0..32u64 {
            let t = 10_000 + i * 1_000;
            events.push(ev(0, EventKind::Cpu(CpuCategory::Python), "py", t, t + 800));
        }
        events.push(ev(0, EventKind::Phase, "train", 30_000, 36_000));
        let dir = write_chunk_dir("groupenum", &events, 2);
        let grouped = Analysis::from_chunk_dir(&dir).phase("train").group_by([Dim::Process]);
        let (decoded, total) = grouped.chunk_plan().unwrap().unwrap();
        assert!(decoded < total, "grouped pushdown decoded {decoded}/{total}");
        let batch =
            Analysis::of_events(&events).phase("train").group_by([Dim::Process]).tables().unwrap();
        let streamed = grouped.tables().unwrap();
        assert_eq!(streamed, batch);
        // pid 7's row survives (empty) and leads, pid 0 follows.
        assert_eq!(streamed.len(), 2);
        assert_eq!(streamed[0].0.process, Some(ProcessId(7)));
        assert!(streamed[0].1.is_empty());
        assert_eq!(streamed[1].0.process, Some(ProcessId(0)));
        assert!(!streamed[1].1.is_empty());
        // A process filter composes with the pid-refined phase span: the
        // pid-7 view decodes almost nothing and still matches batch.
        let filtered = Analysis::from_chunk_dir(&dir)
            .phase("train")
            .group_by([Dim::Process])
            .process(ProcessId(7));
        assert_eq!(
            filtered.tables().unwrap(),
            Analysis::of_events(&events)
                .phase("train")
                .group_by([Dim::Process])
                .process(ProcessId(7))
                .tables()
                .unwrap()
        );
        // Windowed grouped queries keep the conservative full-phase scan
        // (enumeration follows the first in-window event), still
        // matching batch.
        let windowed = Analysis::from_chunk_dir(&dir)
            .phase("train")
            .group_by([Dim::Process])
            .time_window(TimeNs::from_micros(10_000), TimeNs::from_micros(40_000));
        assert_eq!(
            windowed.tables().unwrap(),
            Analysis::of_events(&events)
                .phase("train")
                .group_by([Dim::Process])
                .time_window(TimeNs::from_micros(10_000), TimeNs::from_micros(40_000))
                .tables()
                .unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A filter naming a phase that exists nowhere decodes nothing and
    /// returns the empty result the batch path produces.
    #[test]
    fn absent_phase_pushdown_decodes_nothing() {
        let events: Vec<Event> =
            (0..8u64).map(|i| ev(0, EventKind::Cpu(CpuCategory::Python), "py", i, i + 1)).collect();
        let dir = write_chunk_dir("absent", &events, 2);
        let query = Analysis::from_chunk_dir(&dir).phase("never");
        let (decoded, _) = query.chunk_plan().unwrap().unwrap();
        assert_eq!(decoded, 0);
        assert_eq!(
            query.table().unwrap(),
            Analysis::of_events(&events).phase("never").table().unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Windowed per-process grouping: streamed and batch paths must
    /// enumerate identical groups — an event fully clipped away creates a
    /// group in neither.
    #[test]
    fn windowed_process_groups_match_batch_enumeration() {
        let events = vec![
            ev(0, EventKind::Cpu(CpuCategory::Python), "py", 0, 100),
            ev(1, EventKind::Cpu(CpuCategory::Python), "py", 500, 600), // outside window
        ];
        let dir = write_chunk_dir("wgroups", &events, 1);
        let window = (TimeNs::ZERO, TimeNs::from_micros(200));
        let batch = Analysis::of_events(&events)
            .time_window(window.0, window.1)
            .group_by([Dim::Process])
            .tables()
            .unwrap();
        let streamed = Analysis::from_chunk_dir(&dir)
            .time_window(window.0, window.1)
            .group_by([Dim::Process])
            .tables()
            .unwrap();
        assert_eq!(streamed, batch);
        assert_eq!(streamed.len(), 1, "pid 1 is fully clipped away: {streamed:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every supported live query must equal its batch counterpart over
    /// the same events — the consistency contract of the collector's
    /// mid-session queries.
    #[test]
    fn live_state_queries_match_batch_semantics() {
        let events = phased_events();
        let mut live = LiveState::new();
        live.push_batch(&events).unwrap();
        assert_eq!(live.events_observed(), events.len() as u64);
        let tables = live.snapshot();
        assert_eq!(tables.events_observed(), events.len() as u64);

        // Ungrouped, grouped, filtered — all match the batch pipeline,
        // canonical JSON included.
        let cases: Vec<(Analysis<'_>, Analysis<'_>)> = vec![
            (Analysis::of_live(&tables), Analysis::of_events(&events)),
            (
                Analysis::of_live(&tables).group_by([Dim::Phase]),
                Analysis::of_events(&events).group_by([Dim::Phase]),
            ),
            (
                Analysis::of_live(&tables).group_by([Dim::Process]),
                Analysis::of_events(&events).group_by([Dim::Process]),
            ),
            (
                Analysis::of_live(&tables).group_by([Dim::Phase, Dim::Process, Dim::Operation]),
                Analysis::of_events(&events).group_by([Dim::Phase, Dim::Process, Dim::Operation]),
            ),
            (
                Analysis::of_live(&tables).phase("train"),
                Analysis::of_events(&events).phase("train"),
            ),
            (
                Analysis::of_live(&tables).phase(NO_PHASE),
                Analysis::of_events(&events).phase(NO_PHASE),
            ),
            (
                Analysis::of_live(&tables).process(ProcessId(1)),
                Analysis::of_events(&events).process(ProcessId(1)),
            ),
            (
                Analysis::of_live(&tables).process(ProcessId(9)),
                Analysis::of_events(&events).process(ProcessId(9)),
            ),
            (
                Analysis::of_live(&tables).operation("backprop"),
                Analysis::of_events(&events).operation("backprop"),
            ),
            (
                Analysis::of_live(&tables).process(ProcessId(0)).group_by([Dim::Phase]),
                Analysis::of_events(&events).process(ProcessId(0)).group_by([Dim::Phase]),
            ),
        ];
        for (i, (live_q, batch_q)) in cases.iter().enumerate() {
            assert_eq!(live_q.tables().unwrap(), batch_q.tables().unwrap(), "case {i}");
            assert_eq!(
                live_q.canonical_json().unwrap(),
                batch_q.canonical_json().unwrap(),
                "case {i}"
            );
        }
    }

    /// A second session shape: shares the `train` phase and `backprop`
    /// operation with [`phased_events`] (so ungrouped cross-session
    /// rollups exercise key merging) plus a pid unseen there.
    fn second_session_events() -> Vec<Event> {
        vec![
            ev(0, EventKind::Phase, "train", 0, 150),
            ev(0, EventKind::Operation, "backprop", 10, 140),
            ev(0, EventKind::Cpu(CpuCategory::Backend), "be", 20, 120),
            ev(2, EventKind::Cpu(CpuCategory::Simulator), "sim", 30, 90),
        ]
    }

    #[test]
    fn session_groups_conserve_and_match_per_session_batches() {
        let a = phased_events();
        let b = second_session_events();
        let dir_a = write_chunk_dir("sess_a", &a, 4);
        let dir_b = write_chunk_dir("sess_b", &b, 4);
        let sources = || {
            vec![
                (Arc::from("a"), SessionSource::ChunkDir(dir_a.clone())),
                (Arc::from("b"), SessionSource::ChunkDir(dir_b.clone())),
            ]
        };
        let grouped = Analysis::of_sessions(sources()).group_by([Dim::Session]).tables().unwrap();
        assert_eq!(grouped.len(), 2);
        assert_eq!(grouped[0].0.session.as_deref(), Some("a"));
        assert_eq!(grouped[1].0.session.as_deref(), Some("b"));
        // Each session group is exactly that session's own batch sweep.
        assert_eq!(grouped[0].1, Analysis::of_events(&a).table().unwrap());
        assert_eq!(grouped[1].1, Analysis::of_events(&b).table().unwrap());
        // Conservation: merging the session groups reproduces the
        // ungrouped rollup bucket for bucket.
        let rollup = Analysis::of_sessions(sources()).table().unwrap();
        let mut merged = BreakdownTable::new();
        for (_, t) in &grouped {
            merged.merge(t);
        }
        assert_eq!(merged, rollup);
        // Cross-dimension grouping and filters thread through to every
        // composed session.
        let cross =
            Analysis::of_sessions(sources()).group_by([Dim::Session, Dim::Phase]).tables().unwrap();
        assert!(cross.iter().all(|(k, _)| k.session.is_some() && k.phase.is_some()));
        let cross_total: DurationNs = cross.iter().map(|(_, t)| t.total()).sum();
        assert_eq!(cross_total, rollup.total());
        let train = Analysis::of_sessions(sources()).phase("train").table().unwrap();
        let mut expected = Analysis::of_events(&a).phase("train").table().unwrap();
        expected.merge(&Analysis::of_events(&b).phase("train").table().unwrap());
        assert_eq!(train, expected);
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    /// The tentpole acceptance contract: `group_by([Dim::Session])` over
    /// live sessions is canonical-JSON-identical to the batch sweep of
    /// each session's acked prefix, and live/finished sources mix freely.
    #[test]
    fn live_session_groups_match_batch_of_acked_prefix() {
        let a = phased_events();
        let b = second_session_events();
        let mut live_a = LiveState::new();
        live_a.push_batch(&a).unwrap();
        let mut live_b = LiveState::new();
        live_b.push_batch(&b).unwrap();
        let snap_a = live_a.snapshot();
        let snap_b = live_b.snapshot();
        let dir_a = write_chunk_dir("sess_live_a", &a, 4);
        let dir_b = write_chunk_dir("sess_live_b", &b, 4);
        let dim_sets: [&[Dim]; 4] =
            [&[Dim::Session], &[Dim::Session, Dim::Phase], &[Dim::Session, Dim::Process], &[]];
        for dims in dim_sets {
            let live = Analysis::of_sessions(vec![
                (Arc::from("a"), SessionSource::Live(&snap_a)),
                (Arc::from("b"), SessionSource::Live(&snap_b)),
            ])
            .group_by(dims.iter().copied())
            .canonical_json()
            .unwrap();
            let batch = Analysis::of_sessions(vec![
                (Arc::from("a"), SessionSource::ChunkDir(dir_a.clone())),
                (Arc::from("b"), SessionSource::ChunkDir(dir_b.clone())),
            ])
            .group_by(dims.iter().copied())
            .canonical_json()
            .unwrap();
            assert_eq!(live, batch, "dims {dims:?}");
        }
        let mixed = Analysis::of_sessions(vec![
            (Arc::from("a"), SessionSource::ChunkDir(dir_a.clone())),
            (Arc::from("b"), SessionSource::Live(&snap_b)),
        ])
        .group_by([Dim::Session])
        .tables()
        .unwrap();
        assert_eq!(mixed.len(), 2);
        assert_eq!(mixed[1].1, Analysis::of_events(&b).table().unwrap());
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn session_dim_without_sessions_source_errors() {
        let events = phased_events();
        let err = Analysis::of_events(&events).group_by([Dim::Session]).tables().unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(_)), "{err}");
    }

    /// Two sessions whose time ranges abut at exactly T: window clipping
    /// is half-open `[lo, hi)` in both the batch resolver (`clip_event`
    /// over the u32-indexed row set) and the streamed resolver
    /// (clip-before-slot), so the windows `[0, T)` and `[T, 2T)` must
    /// partition the cross-session rollup exactly — an event ending at
    /// T lands only in the first window, one starting at T only in the
    /// second, and one spanning T splits with no double count and no
    /// gap.
    #[test]
    fn abutting_session_windows_partition_attribution_exactly() {
        let t = TimeNs::from_micros(100);
        let end = TimeNs::from_micros(200);
        // Session a ends at T: one event abuts the boundary, one spans it.
        let a = vec![
            ev(0, EventKind::Cpu(CpuCategory::Python), "py", 0, 60),
            ev(0, EventKind::Cpu(CpuCategory::Backend), "be", 60, 90),
            ev(0, EventKind::Cpu(CpuCategory::Simulator), "sim", 90, 110),
        ];
        // Session b starts at exactly T.
        let b = vec![
            ev(1, EventKind::Cpu(CpuCategory::Python), "py", 100, 150),
            ev(1, EventKind::Cpu(CpuCategory::CudaApi), "cuda", 150, 200),
        ];
        let dir_a = write_chunk_dir("abut_a", &a, 2);
        let dir_b = write_chunk_dir("abut_b", &b, 2);
        let sources = || {
            vec![
                (Arc::from("a"), SessionSource::ChunkDir(dir_a.clone())),
                (Arc::from("b"), SessionSource::ChunkDir(dir_b.clone())),
            ]
        };
        let whole = Analysis::of_sessions(sources()).table().unwrap();
        let before = Analysis::of_sessions(sources()).time_window(TimeNs::ZERO, t).table().unwrap();
        let after = Analysis::of_sessions(sources()).time_window(t, end).table().unwrap();
        // Exact partition at the shared boundary, bucket for bucket.
        let mut merged = before.clone();
        merged.merge(&after);
        assert_eq!(merged, whole);
        assert_eq!(before.total() + after.total(), whole.total());
        // The boundary-spanning event contributes exactly 10µs per side.
        let sim_side = |table: &BreakdownTable| {
            table
                .iter()
                .filter(|(k, _)| k.cpu == Some(CpuCategory::Simulator))
                .map(|(_, d)| d)
                .sum::<DurationNs>()
        };
        assert_eq!(sim_side(&before), DurationNs::from_micros(10));
        assert_eq!(sim_side(&after), DurationNs::from_micros(10));
        // Grouped by session, each windowed group is that session's own
        // windowed batch sweep (session b is fully clipped before T).
        let grouped = Analysis::of_sessions(sources())
            .time_window(TimeNs::ZERO, t)
            .group_by([Dim::Session])
            .tables()
            .unwrap();
        assert_eq!(grouped.len(), 2);
        assert_eq!(
            grouped[0].1,
            Analysis::of_events(&a).time_window(TimeNs::ZERO, t).table().unwrap()
        );
        assert!(grouped[1].1.is_empty(), "session b holds nothing before T: {:?}", grouped[1].1);
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }

    /// Snapshots are consistent prefixes: pushing more events afterwards
    /// neither disturbs an existing snapshot nor is visible to it, and a
    /// later snapshot covers the longer prefix.
    #[test]
    fn live_snapshots_are_nondestructive_prefixes() {
        let events = phased_events();
        let mut live = LiveState::new();
        let (first, rest) = events.split_at(4);
        live.push_batch(first).unwrap();
        let early = live.snapshot();
        live.push_batch(rest).unwrap();
        let late = live.snapshot();
        assert_eq!(
            Analysis::of_live(&early).table().unwrap(),
            Analysis::of_events(first).table().unwrap()
        );
        assert_eq!(
            Analysis::of_live(&late).table().unwrap(),
            Analysis::of_events(&events).table().unwrap()
        );
        assert!(
            Analysis::of_live(&late).table().unwrap().total()
                >= Analysis::of_live(&early).table().unwrap().total()
        );
    }

    /// The merged sweep materializes lazily: single-process streams never
    /// build it, and the promotion on the second process reproduces the
    /// from-the-start merged sweep exactly (phased_events interleaves
    /// pids, so the promotion happens mid-stream).
    #[test]
    fn live_state_promotes_merged_sweep_exactly() {
        let single: Vec<Event> =
            phased_events().into_iter().filter(|e| e.pid == ProcessId(0)).collect();
        let mut live = LiveState::new();
        live.push_batch(&single).unwrap();
        assert!(live.merged.is_none(), "single-pid streams skip the merged sweep");
        let t = live.snapshot();
        assert_eq!(
            Analysis::of_live(&t).table().unwrap(),
            Analysis::of_events(&single).table().unwrap()
        );

        let mut live = LiveState::new();
        live.push_batch(&phased_events()).unwrap();
        assert!(live.merged.is_some(), "second pid must materialize the merged sweep");
    }

    #[test]
    fn live_unsupported_queries_error() {
        let tables = LiveState::new().snapshot();
        let err = Analysis::of_live(&tables)
            .time_window(TimeNs::ZERO, TimeNs::from_micros(1))
            .table()
            .unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(_)), "{err}");
        let cal = Calibration::default();
        let err = Analysis::of_live(&tables).corrected(&cal).table().unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(_)), "{err}");
        // Empty live state answers (emptily) rather than erroring.
        assert!(Analysis::of_live(&tables).table().unwrap().is_empty());
    }

    #[test]
    fn group_key_labels() {
        let key = GroupKey {
            session: Some(Arc::from("run-1")),
            phase: Some(Arc::from("train")),
            process: Some(ProcessId(3)),
            operation: Some(Arc::from("bp")),
        };
        assert_eq!(key.label(), "session=run-1 phase=train pid=3 op=bp");
        let none = GroupKey { session: None, phase: None, process: None, operation: None };
        assert_eq!(none.label(), "all");
    }
}
