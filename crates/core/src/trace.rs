//! The finalized trace of one profiled process, and multi-process merging.

use crate::analysis::{Analysis, AnalysisError, Dim};
use crate::event::{BookkeepingCounts, Event};
use crate::overlap::BreakdownTable;
use crate::profiler::TransitionKind;
use crate::store::TraceIoError;
use rlscope_sim::cuda::CudaApiKind;
use rlscope_sim::ids::ProcessId;
use rlscope_sim::time::{DurationNs, TimeNs};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

/// Everything recorded for one process in one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The traced process.
    pub pid: ProcessId,
    /// All recorded intervals.
    pub events: Vec<Event>,
    /// Book-keeping occurrence counters.
    pub counts: BookkeepingCounts,
    /// Per-(operation, kind) transition counts.
    pub per_op_transitions: Vec<((Arc<str>, TransitionKind), u64)>,
    /// Per-CUDA-API `(call count, total CPU duration)`.
    pub api_stats: Vec<(CudaApiKind, (u64, DurationNs))>,
    /// Training-loop iterations marked.
    pub iterations: u64,
    /// Clock value when the trace was finalized.
    pub wall_end: TimeNs,
}

impl Trace {
    /// Total wall-clock time covered by the trace (finalization instant —
    /// the profiled program ran from 0 to here).
    pub fn wall_time(&self) -> DurationNs {
        self.wall_end - TimeNs::ZERO
    }

    /// Runs the overlap sweep over this trace's events — a wrapper over
    /// `Analysis::of(self).table()` ([`Analysis`]).
    pub fn breakdown(&self) -> BreakdownTable {
        Analysis::of(self).table().expect("in-memory analysis cannot fail")
    }

    /// Transition count for one operation and kind.
    pub fn transitions_for(&self, op: &str, kind: TransitionKind) -> u64 {
        self.per_op_transitions
            .iter()
            .filter(|((o, k), _)| &**o == op && *k == kind)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Transitions per training iteration (Figure 4c/4d's y-axis).
    ///
    /// Returns 0.0 if no iterations were marked.
    pub fn transitions_per_iteration(&self, op: &str, kind: TransitionKind) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.transitions_for(op, kind) as f64 / self.iterations as f64
        }
    }

    /// Mean CPU duration of one CUDA API across the run (difference-of-
    /// average calibration input).
    pub fn api_mean(&self, api: CudaApiKind) -> Option<DurationNs> {
        self.api_stats.iter().find(|(a, _)| *a == api).and_then(|(_, (n, total))| {
            if *n == 0 {
                None
            } else {
                Some(*total / *n)
            }
        })
    }

    /// Operation names seen in annotations, deduplicated, in first-seen
    /// order of the event stream.
    pub fn operation_names(&self) -> Vec<Arc<str>> {
        let mut names: Vec<Arc<str>> = Vec::new();
        for e in &self.events {
            if e.kind == crate::event::EventKind::Operation && !names.iter().any(|n| n == &e.name) {
                names.push(e.name.clone());
            }
        }
        names
    }

    /// Merges traces from multiple processes into one (the multi-process
    /// view of paper §4.3). Events keep their per-process ids; counters
    /// and iteration counts are summed; the wall end is the max.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn merge(traces: impl IntoIterator<Item = Trace>) -> Trace {
        let mut iter = traces.into_iter();
        let mut merged = iter.next().expect("merge of zero traces");
        for t in iter {
            merged.events.extend(t.events);
            merged.counts.annotations += t.counts.annotations;
            merged.counts.backend_transitions += t.counts.backend_transitions;
            merged.counts.simulator_transitions += t.counts.simulator_transitions;
            merged.counts.cuda_api_calls += t.counts.cuda_api_calls;
            merged.iterations += t.iterations;
            merged.wall_end = merged.wall_end.max(t.wall_end);
            merge_transition_counts(&mut merged.per_op_transitions, t.per_op_transitions);
            merge_api_stats(&mut merged.api_stats, t.api_stats);
        }
        merged
    }

    /// Events belonging to one process (after a merge).
    pub fn events_for(&self, pid: ProcessId) -> Vec<&Event> {
        self.events.iter().filter(|e| e.pid == pid).collect()
    }

    /// Breakdown restricted to one process, sweeping index references
    /// into the borrowed event slice (no per-process event clones) — a
    /// wrapper over `Analysis::of(self).process(pid).table()`.
    pub fn breakdown_for(&self, pid: ProcessId) -> BreakdownTable {
        Analysis::of(self).process(pid).table().expect("in-memory analysis cannot fail")
    }

    /// Per-process breakdown tables, computed in parallel over one
    /// borrowed event slice — a wrapper over
    /// `Analysis::of(self).group_by([Dim::Process]).tables()`.
    ///
    /// The merged stream is partitioned into per-pid **index lists** in
    /// one pass — events are never cloned, so peak memory over the trace
    /// itself stays one reference plus one `u32` index per event. Each
    /// process's sweep then runs on a worker thread, capped at the
    /// machine's available parallelism. Results are returned in
    /// first-seen pid order of the event stream.
    ///
    /// This is the whole-experiment analysis path: reports over merged
    /// multi-process traces ([`crate::report::MultiProcessReport`])
    /// consume these partial tables and aggregate them with
    /// [`BreakdownTable::merge`].
    pub fn breakdowns_by_process(&self) -> Vec<(ProcessId, BreakdownTable)> {
        Analysis::of(self)
            .group_by([Dim::Process])
            .tables()
            .expect("in-memory analysis cannot fail")
            .into_iter()
            .map(|(key, table)| (key.process.expect("grouped by process"), table))
            .collect()
    }

    /// Whole-experiment aggregate: per-process partial tables (computed
    /// in parallel) merged into one (the multi-process view of paper
    /// §4.3, where each process's resource time counts separately) — a
    /// wrapper over `Analysis::of(self).group_by([Dim::Process]).table()`.
    pub fn breakdown_per_process(&self) -> BreakdownTable {
        Analysis::of(self).group_by([Dim::Process]).table().expect("in-memory analysis cannot fail")
    }
}

/// Find-or-push accumulation of `(operation, kind) → count` rows into an
/// existing counter list — the one merge implementation shared by
/// [`Trace::merge`] and the correction-input merge
/// (`CorrectionInputs::from_traces`), so the two can never diverge.
pub(crate) fn merge_transition_counts(
    dst: &mut Vec<((Arc<str>, TransitionKind), u64)>,
    src: impl IntoIterator<Item = ((Arc<str>, TransitionKind), u64)>,
) {
    for ((op, kind), n) in src {
        match dst.iter_mut().find(|((o, k), _)| *o == op && *k == kind) {
            Some((_, existing)) => *existing += n,
            None => dst.push(((op, kind), n)),
        }
    }
}

/// Find-or-push accumulation of per-CUDA-API `(count, total)` rows;
/// shared like [`merge_transition_counts`].
pub(crate) fn merge_api_stats(
    dst: &mut Vec<(CudaApiKind, (u64, DurationNs))>,
    src: impl IntoIterator<Item = (CudaApiKind, (u64, DurationNs))>,
) {
    for (api, (n, total)) in src {
        match dst.iter_mut().find(|(a, _)| *a == api) {
            Some((_, (en, etotal))) => {
                *en += n;
                *etotal += total;
            }
            None => dst.push((api, (n, total))),
        }
    }
}

/// Streaming equivalent of [`Trace::breakdowns_by_process`] over a chunk
/// directory — a wrapper over
/// `Analysis::from_chunk_dir(dir).group_by([Dim::Process]).tables()`
/// (plus [`Analysis::bounded_streaming`] when `lag` is set). Chunks are
/// decoded chunk-parallel on worker threads
/// ([`crate::store::for_each_decoded_chunk`]) and fed in stream order
/// into per-process incremental [`crate::overlap::OverlapSweep`]s, so
/// decode overlaps sweeping and the concatenated event stream is never
/// materialized. Results are in first-seen pid order of the stream —
/// identical tables, in identical order, to reading the directory whole
/// and sharding in memory.
///
/// With `lag = Some(d)`, per-process sweeps run in bounded-memory mode:
/// each process's working set stays flat as the directory grows, provided
/// that process's start times are sorted to within `d` in stream order.
/// A stream more disordered than that is detected (never silently
/// misattributed) and transparently re-analyzed with exact sweeps — the
/// chunks are still on disk, so the fallback is one more pass, not a
/// failure. With `lag = None`, exact sweeps are used directly.
///
/// # Errors
///
/// Returns the first I/O or corruption error encountered.
pub fn streamed_breakdowns_by_process(
    dir: &Path,
    lag: Option<DurationNs>,
) -> Result<Vec<(ProcessId, BreakdownTable)>, TraceIoError> {
    let mut analysis = Analysis::from_chunk_dir(dir).group_by([Dim::Process]);
    if let Some(lag) = lag {
        analysis = analysis.bounded_streaming(lag);
    }
    let tables = analysis.tables().map_err(|e| match e {
        AnalysisError::Io(io) => io,
        AnalysisError::Unsupported(msg) => unreachable!("plain grouped query: {msg}"),
    })?;
    Ok(tables
        .into_iter()
        .map(|(key, table)| (key.process.expect("grouped by process"), table))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CpuCategory, EventKind};

    fn trace_with(pid: u32, n_backend: u64, end_us: u64) -> Trace {
        Trace {
            pid: ProcessId(pid),
            events: vec![Event::new(
                ProcessId(pid),
                EventKind::Cpu(CpuCategory::Python),
                "python",
                TimeNs::ZERO,
                TimeNs::from_micros(end_us),
            )],
            counts: BookkeepingCounts { backend_transitions: n_backend, ..Default::default() },
            per_op_transitions: vec![((Arc::from("backprop"), TransitionKind::Backend), n_backend)],
            api_stats: vec![(CudaApiKind::LaunchKernel, (2, DurationNs::from_micros(13)))],
            iterations: 2,
            wall_end: TimeNs::from_micros(end_us),
        }
    }

    #[test]
    fn wall_time_and_breakdown() {
        let t = trace_with(0, 1, 50);
        assert_eq!(t.wall_time(), DurationNs::from_micros(50));
        assert_eq!(t.breakdown().total(), DurationNs::from_micros(50));
    }

    #[test]
    fn api_mean_divides_total_by_count() {
        let t = trace_with(0, 1, 10);
        assert_eq!(t.api_mean(CudaApiKind::LaunchKernel), Some(DurationNs::from_nanos(6_500)));
        assert_eq!(t.api_mean(CudaApiKind::MemcpyAsync), None);
    }

    #[test]
    fn merge_sums_counters_and_keeps_pids() {
        let merged = Trace::merge(vec![trace_with(0, 3, 100), trace_with(1, 4, 80)]);
        assert_eq!(merged.counts.backend_transitions, 7);
        assert_eq!(merged.iterations, 4);
        assert_eq!(merged.wall_end, TimeNs::from_micros(100));
        assert_eq!(merged.events_for(ProcessId(1)).len(), 1);
        assert_eq!(merged.transitions_for("backprop", TransitionKind::Backend), 7);
        // API stats merged: 4 calls totalling 26us → mean 6.5us.
        assert_eq!(merged.api_mean(CudaApiKind::LaunchKernel), Some(DurationNs::from_nanos(6_500)));
        // Per-process breakdown only sees that process.
        assert_eq!(merged.breakdown_for(ProcessId(1)).total(), DurationNs::from_micros(80));
    }

    #[test]
    fn transitions_per_iteration_divides() {
        let t = trace_with(0, 6, 10);
        assert_eq!(t.transitions_per_iteration("backprop", TransitionKind::Backend), 3.0);
        assert_eq!(t.transitions_per_iteration("inference", TransitionKind::Backend), 0.0);
    }

    #[test]
    fn transitions_per_iteration_zero_iterations_is_zero_not_nan() {
        let mut t = trace_with(0, 6, 10);
        t.iterations = 0;
        let v = t.transitions_per_iteration("backprop", TransitionKind::Backend);
        assert_eq!(v, 0.0);
        assert!(!v.is_nan());
    }

    #[test]
    #[should_panic(expected = "zero traces")]
    fn merge_empty_panics() {
        Trace::merge(Vec::new());
    }

    #[test]
    fn parallel_per_process_matches_serial_filtering() {
        let merged = Trace::merge(vec![
            trace_with(0, 1, 100),
            trace_with(1, 2, 80),
            trace_with(2, 3, 60),
            trace_with(3, 4, 40),
        ]);
        let parallel = merged.breakdowns_by_process();
        assert_eq!(parallel.len(), 4);
        // First-seen pid order of the merged event stream.
        assert_eq!(
            parallel.iter().map(|(p, _)| *p).collect::<Vec<_>>(),
            (0..4).map(ProcessId).collect::<Vec<_>>()
        );
        for (pid, table) in &parallel {
            assert_eq!(table, &merged.breakdown_for(*pid), "pid {pid:?}");
        }
        // The aggregate equals the sum of the partials.
        let aggregate = merged.breakdown_per_process();
        let expected: DurationNs = parallel.iter().map(|(_, t)| t.total()).sum();
        assert_eq!(aggregate.total(), expected);
        assert_eq!(aggregate.total(), DurationNs::from_micros(100 + 80 + 60 + 40));
    }

    #[test]
    fn parallel_per_process_empty_trace() {
        let mut t = trace_with(0, 0, 10);
        t.events.clear();
        assert!(t.breakdowns_by_process().is_empty());
        assert!(t.breakdown_per_process().is_empty());
    }

    #[test]
    fn streamed_chunk_dir_matches_in_memory_sharding() {
        use crate::store::TraceWriter;

        let mut merged =
            Trace::merge(vec![trace_with(0, 1, 100), trace_with(1, 2, 80), trace_with(2, 3, 60)]);
        // End-ordered disorder on pid 0: a later record starting earlier,
        // as the profiler's record-at-close order produces.
        let py = |s: u64, e: u64| {
            Event::new(
                ProcessId(0),
                EventKind::Cpu(CpuCategory::Python),
                "late",
                TimeNs::from_micros(s),
                TimeNs::from_micros(e),
            )
        };
        merged.events.push(py(150, 220));
        merged.events.push(py(110, 130));
        let dir = std::env::temp_dir().join(format!("rlscope_streamed_bd_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let writer = TraceWriter::create(&dir, 64).unwrap();
        for chunk in merged.events.chunks(2) {
            writer.write(chunk.to_vec());
        }
        writer.finish().unwrap();

        let expected = merged.breakdowns_by_process();
        // Exact mode accepts any stream order.
        let exact = streamed_breakdowns_by_process(&dir, None).unwrap();
        assert_eq!(exact, expected);
        // Bounded mode: these per-pid streams are start-sorted, so the
        // eager path applies; a too-tight lag must still end up correct
        // via the exact-sweep fallback.
        let bounded =
            streamed_breakdowns_by_process(&dir, Some(DurationNs::from_micros(200))).unwrap();
        assert_eq!(bounded, expected);
        let tight = streamed_breakdowns_by_process(&dir, Some(DurationNs::ZERO)).unwrap();
        assert_eq!(tight, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streamed_chunk_dir_propagates_errors() {
        let dir = std::env::temp_dir().join(format!("rlscope_streamed_err_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("chunk_00000.rls"), b"garbage").unwrap();
        assert!(streamed_breakdowns_by_process(&dir, None).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
