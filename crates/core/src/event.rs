//! The cross-stack event model.
//!
//! Everything RL-Scope records is an interval on a process timeline: pure
//! Python execution, native-library (simulator / ML backend) intervals,
//! CUDA API calls, GPU kernel and memcpy activity, and the user's
//! algorithmic operation annotations. The offline overlap sweep
//! ([`crate::overlap`]) consumes these directly.

use rlscope_sim::ids::ProcessId;
use rlscope_sim::time::{DurationNs, TimeNs};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// CPU-side stack levels (the "patterns" of the paper's breakdown plots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CpuCategory {
    /// High-level language execution.
    Python,
    /// Simulator native library.
    Simulator,
    /// ML backend native library.
    Backend,
    /// CPU time inside CUDA API calls.
    CudaApi,
}

impl CpuCategory {
    /// Priority when multiple CPU categories are simultaneously active:
    /// the *finest* (most deeply nested) level wins — CUDA API time is
    /// carved out of Backend time, which is carved out of Python time.
    pub fn priority(self) -> u8 {
        match self {
            CpuCategory::Python => 0,
            CpuCategory::Simulator => 1,
            CpuCategory::Backend => 1,
            CpuCategory::CudaApi => 2,
        }
    }
}

impl fmt::Display for CpuCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CpuCategory::Python => "Python",
            CpuCategory::Simulator => "Simulator",
            CpuCategory::Backend => "Backend",
            CpuCategory::CudaApi => "CUDA",
        };
        f.write_str(s)
    }
}

/// GPU-side activity kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GpuCategory {
    /// Kernel execution.
    Kernel,
    /// Memory copy.
    Memcpy,
}

impl fmt::Display for GpuCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuCategory::Kernel => write!(f, "GPU kernel"),
            GpuCategory::Memcpy => write!(f, "GPU memcpy"),
        }
    }
}

/// What an event interval represents.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// CPU execution at a given stack level.
    Cpu(CpuCategory),
    /// GPU activity.
    Gpu(GpuCategory),
    /// A user operation annotation (`rls.operation(...)`).
    Operation,
    /// A training phase annotation (`rls.set_phase(...)`).
    Phase,
}

/// One recorded interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// The process this event belongs to.
    pub pid: ProcessId,
    /// What the interval represents.
    pub kind: EventKind,
    /// Detail name: operation name, CUDA API, kernel name, or a static
    /// category label.
    pub name: Arc<str>,
    /// Interval start.
    pub start: TimeNs,
    /// Interval end.
    pub end: TimeNs,
}

impl Event {
    /// Creates an event.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `end < start`.
    pub fn new(
        pid: ProcessId,
        kind: EventKind,
        name: impl Into<Arc<str>>,
        start: TimeNs,
        end: TimeNs,
    ) -> Self {
        debug_assert!(end >= start, "event ends before it starts");
        Event { pid, kind, name: name.into(), start, end }
    }

    /// Interval length.
    pub fn duration(&self) -> DurationNs {
        self.end - self.start
    }

    /// True if this interval intersects `[start, end)`.
    pub fn overlaps(&self, start: TimeNs, end: TimeNs) -> bool {
        self.start < end && self.end > start
    }
}

/// Book-keeping occurrence counters accumulated during a profiled run —
/// the "number of times the book-keeping code was called" denominators of
/// the paper's delta calibration (Appendix C.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BookkeepingCounts {
    /// Operation annotations recorded (each costs two timestamps).
    pub annotations: u64,
    /// Python→Backend transitions intercepted.
    pub backend_transitions: u64,
    /// Python→Simulator transitions intercepted.
    pub simulator_transitions: u64,
    /// CUDA API calls intercepted.
    pub cuda_api_calls: u64,
}

impl BookkeepingCounts {
    /// Total Python↔C transitions (both libraries).
    pub fn total_transitions(&self) -> u64 {
        self.backend_transitions + self.simulator_transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(start: u64, end: u64) -> Event {
        Event::new(
            ProcessId(0),
            EventKind::Cpu(CpuCategory::Python),
            "python",
            TimeNs::from_nanos(start),
            TimeNs::from_nanos(end),
        )
    }

    #[test]
    fn duration_and_overlap() {
        let e = ev(10, 30);
        assert_eq!(e.duration(), DurationNs::from_nanos(20));
        assert!(e.overlaps(TimeNs::from_nanos(29), TimeNs::from_nanos(40)));
        assert!(!e.overlaps(TimeNs::from_nanos(30), TimeNs::from_nanos(40)));
        assert!(!e.overlaps(TimeNs::from_nanos(0), TimeNs::from_nanos(10)));
    }

    #[test]
    fn cpu_priority_nests_cuda_inside_backend_inside_python() {
        assert!(CpuCategory::CudaApi.priority() > CpuCategory::Backend.priority());
        assert!(CpuCategory::Backend.priority() > CpuCategory::Python.priority());
        assert_eq!(CpuCategory::Backend.priority(), CpuCategory::Simulator.priority());
    }

    #[test]
    fn counters_sum_transitions() {
        let c = BookkeepingCounts {
            backend_transitions: 3,
            simulator_transitions: 4,
            ..Default::default()
        };
        assert_eq!(c.total_transitions(), 7);
    }
}
