//! Profiling calibration: delta calibration and difference-of-average
//! calibration (paper §3.4, Appendices C.1–C.2).
//!
//! RL-Scope runs the training workload several times with individual
//! book-keeping code paths toggled, and derives the *average cost of one
//! book-keeping occurrence* of each type:
//!
//! * **Delta calibration** — for type-uniform overheads (annotations,
//!   Python↔C interception, CUDA API interception):
//!   `mean = (T_enabled − T_disabled) / occurrences`.
//! * **Difference-of-average calibration** — for the closed-source CUPTI
//!   inflation, which differs per CUDA API and cannot be toggled per API:
//!   `infl(api) = mean_duration(api | CUPTI on) − mean_duration(api | off)`.
//!
//! Calibration needs to run the workload; this module only encodes the
//! math plus the [`calibrate`] driver, which takes a closure that executes
//! one run under a given [`Toggles`] configuration and reports
//! [`RunStats`]. The workload crate supplies the closure.

use crate::event::BookkeepingCounts;
use crate::profiler::Toggles;
use crate::trace::Trace;
use rlscope_sim::cuda::CudaApiKind;
use rlscope_sim::time::DurationNs;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of one calibration run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total training time of the run.
    pub total: DurationNs,
    /// Book-keeping occurrence counts.
    pub counts: BookkeepingCounts,
    /// Per-CUDA-API `(count, total duration)`.
    pub api_stats: Vec<(CudaApiKind, (u64, DurationNs))>,
}

impl RunStats {
    /// Extracts run statistics from a finalized trace.
    pub fn from_trace(trace: &Trace) -> Self {
        RunStats {
            total: trace.wall_time(),
            counts: trace.counts,
            api_stats: trace.api_stats.clone(),
        }
    }

    /// Mean CPU duration of one CUDA API in this run.
    pub fn api_mean(&self, api: CudaApiKind) -> Option<DurationNs> {
        self.api_stats
            .iter()
            .find(|(a, _)| *a == api)
            .and_then(|(_, (n, total))| (*n > 0).then(|| *total / *n))
    }
}

/// The calibrated mean cost of each book-keeping type.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Calibration {
    /// Mean cost per operation annotation (both edges).
    pub annotation_mean: DurationNs,
    /// Mean cost per Python↔C transition (both sides).
    pub py_interception_mean: DurationNs,
    /// Mean cost per intercepted CUDA API call.
    pub cuda_interception_mean: DurationNs,
    /// CUPTI-internal inflation per CUDA API kind.
    pub cupti_means: Vec<(CudaApiKind, DurationNs)>,
}

impl Calibration {
    /// CUPTI inflation for one API (zero if never measured).
    pub fn cupti_mean(&self, api: CudaApiKind) -> DurationNs {
        self.cupti_means
            .iter()
            .find(|(a, _)| *a == api)
            .map(|(_, d)| *d)
            .unwrap_or(DurationNs::ZERO)
    }

    /// Count-weighted average CUPTI inflation across the API mix of
    /// `api_stats` (used when per-operation API mixes are unknown).
    pub fn cupti_weighted_mean(
        &self,
        api_stats: &[(CudaApiKind, (u64, DurationNs))],
    ) -> DurationNs {
        let total_calls: u64 = api_stats.iter().map(|(_, (n, _))| n).sum();
        if total_calls == 0 {
            return DurationNs::ZERO;
        }
        let weighted: u64 =
            api_stats.iter().map(|(api, (n, _))| self.cupti_mean(*api).as_nanos() * n).sum();
        DurationNs::from_nanos(weighted / total_calls)
    }
}

/// Delta calibration: `(T_on − T_off) / count`, zero when `count == 0` or
/// the instrumented run was not slower.
pub fn delta_mean(t_on: DurationNs, t_off: DurationNs, count: u64) -> DurationNs {
    if count == 0 || t_on <= t_off {
        DurationNs::ZERO
    } else {
        (t_on - t_off) / count
    }
}

/// Difference of per-API average durations between a CUPTI-on and a
/// CUPTI-off run (both with API interception enabled so durations are
/// observable).
pub fn diff_of_average(
    with_cupti: &RunStats,
    without_cupti: &RunStats,
) -> Vec<(CudaApiKind, DurationNs)> {
    CudaApiKind::ALL
        .iter()
        .filter_map(|&api| {
            let on = with_cupti.api_mean(api)?;
            let off = without_cupti.api_mean(api)?;
            Some((api, on.saturating_sub(off)))
        })
        .collect()
}

/// Runs the full calibration protocol: five runs of the workload under
/// different toggle configurations (paper: "this calibration only needs to
/// be done once per workload and can be reused").
///
/// The closure must execute an identical, deterministic workload each time
/// (same seed), differing only in the toggles applied.
pub fn calibrate(run: &mut dyn FnMut(Toggles) -> RunStats) -> Calibration {
    let base = run(Toggles::none());
    let ann = run(Toggles { annotations: true, ..Toggles::none() });
    let py = run(Toggles { py_interception: true, ..Toggles::none() });
    let api = run(Toggles { cuda_interception: true, ..Toggles::none() });
    let cupti = run(Toggles { cuda_interception: true, cupti: true, ..Toggles::none() });

    Calibration {
        annotation_mean: delta_mean(ann.total, base.total, ann.counts.annotations),
        py_interception_mean: delta_mean(py.total, base.total, py.counts.total_transitions()),
        cuda_interception_mean: delta_mean(api.total, base.total, api.counts.cuda_api_calls),
        cupti_means: diff_of_average(&cupti, &api),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_mean_divides() {
        assert_eq!(
            delta_mean(DurationNs::from_micros(130), DurationNs::from_micros(100), 10),
            DurationNs::from_micros(3)
        );
    }

    #[test]
    fn delta_mean_zero_cases() {
        assert_eq!(
            delta_mean(DurationNs::from_micros(10), DurationNs::from_micros(10), 5),
            DurationNs::ZERO
        );
        assert_eq!(
            delta_mean(DurationNs::from_micros(5), DurationNs::from_micros(10), 5),
            DurationNs::ZERO
        );
        assert_eq!(
            delta_mean(DurationNs::from_micros(20), DurationNs::from_micros(10), 0),
            DurationNs::ZERO
        );
    }

    fn stats(api_means_us: &[(CudaApiKind, u64, u64)]) -> RunStats {
        RunStats {
            total: DurationNs::from_micros(1_000),
            counts: BookkeepingCounts::default(),
            api_stats: api_means_us
                .iter()
                .map(|&(api, n, mean_us)| (api, (n, DurationNs::from_micros(mean_us * n))))
                .collect(),
        }
    }

    /// Reproduces the arithmetic of the paper's Figure 10: launches
    /// average 6.5 µs without CUPTI and 9.5 µs with; memcpys 4.5 µs and
    /// 5.5 µs → inflation 3 µs and 1 µs.
    #[test]
    fn figure_10_difference_of_average() {
        let without = stats(&[
            (CudaApiKind::LaunchKernel, 2, 13 / 2), // handled below precisely
            (CudaApiKind::MemcpyAsync, 2, 9 / 2),
        ]);
        // Construct precisely: 2 launches totalling 13us (mean 6.5), 2
        // memcpys totalling 9us (mean 4.5).
        let without = RunStats {
            api_stats: vec![
                (CudaApiKind::LaunchKernel, (2, DurationNs::from_micros(13))),
                (CudaApiKind::MemcpyAsync, (2, DurationNs::from_micros(9))),
            ],
            ..without
        };
        let with = RunStats {
            api_stats: vec![
                (CudaApiKind::LaunchKernel, (2, DurationNs::from_micros(19))),
                (CudaApiKind::MemcpyAsync, (2, DurationNs::from_micros(11))),
            ],
            ..stats(&[])
        };
        let diff = diff_of_average(&with, &without);
        let get = |api| diff.iter().find(|(a, _)| *a == api).unwrap().1;
        assert_eq!(get(CudaApiKind::LaunchKernel), DurationNs::from_micros(3));
        assert_eq!(get(CudaApiKind::MemcpyAsync), DurationNs::from_micros(1));
    }

    #[test]
    fn calibrate_recovers_injected_costs_exactly() {
        // Synthetic deterministic "workload": base takes 100us; each
        // enabled toggle adds its per-occurrence cost.
        let ann_cost = 2_000u64; // ns per annotation
        let py_cost = 700u64; // ns per transition
        let api_cost = 900u64; // ns per API call
        let cupti_launch = 3_000u64;
        let mut run = |t: Toggles| {
            let annotations = 50u64;
            let transitions = 200u64;
            let api_calls = 400u64;
            let mut total = 100_000_000u64;
            if t.annotations {
                total += ann_cost * annotations;
            }
            if t.py_interception {
                total += py_cost * transitions;
            }
            if t.cuda_interception {
                total += api_cost * api_calls;
            }
            let launch_mean = 6_500
                + if t.cuda_interception { api_cost } else { 0 }
                + if t.cupti { cupti_launch } else { 0 };
            if t.cupti {
                total += cupti_launch * api_calls;
            }
            RunStats {
                total: DurationNs::from_nanos(total),
                counts: BookkeepingCounts {
                    annotations,
                    backend_transitions: transitions / 2,
                    simulator_transitions: transitions / 2,
                    cuda_api_calls: api_calls,
                },
                api_stats: vec![(
                    CudaApiKind::LaunchKernel,
                    (api_calls, DurationNs::from_nanos(launch_mean * api_calls)),
                )],
            }
        };
        let cal = calibrate(&mut run);
        assert_eq!(cal.annotation_mean, DurationNs::from_nanos(ann_cost));
        assert_eq!(cal.py_interception_mean, DurationNs::from_nanos(py_cost));
        assert_eq!(cal.cuda_interception_mean, DurationNs::from_nanos(api_cost));
        assert_eq!(cal.cupti_mean(CudaApiKind::LaunchKernel), DurationNs::from_nanos(cupti_launch));
        assert_eq!(cal.cupti_mean(CudaApiKind::MemcpyAsync), DurationNs::ZERO);
    }

    #[test]
    fn weighted_cupti_mean() {
        let cal = Calibration {
            cupti_means: vec![
                (CudaApiKind::LaunchKernel, DurationNs::from_nanos(3_000)),
                (CudaApiKind::MemcpyAsync, DurationNs::from_nanos(1_000)),
            ],
            ..Default::default()
        };
        let stats = vec![
            (CudaApiKind::LaunchKernel, (3, DurationNs::ZERO)),
            (CudaApiKind::MemcpyAsync, (1, DurationNs::ZERO)),
        ];
        // (3*3000 + 1*1000) / 4 = 2500.
        assert_eq!(cal.cupti_weighted_mean(&stats), DurationNs::from_nanos(2_500));
        assert_eq!(cal.cupti_weighted_mean(&[]), DurationNs::ZERO);
    }
}
